//! Criterion bench: the dense factorization kernels (Cholesky, LDLᵀ, and
//! the permuted UDUᵀ behind Algorithm 1) plus SPD inversion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdx_linalg::{cholesky, ldlt, spd_inverse, udut, Matrix, Permutation};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn spd(k: usize) -> Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let data: Vec<f64> = (0..k * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let a = Matrix::from_vec(k, k, data);
    let mut s = a.matmul(&a.transpose()).unwrap();
    s.add_diag_mut(k as f64 * 0.05 + 0.5);
    s
}

fn bench_factorization(c: &mut Criterion) {
    let mut group = c.benchmark_group("factorization");
    group.sample_size(20);
    for k in [20usize, 80, 160] {
        let s = spd(k);
        let perm = Permutation::identity(k);
        group.bench_with_input(BenchmarkId::new("cholesky", k), &s, |b, s| {
            b.iter(|| cholesky(s).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("ldlt", k), &s, |b, s| {
            b.iter(|| ldlt(s).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("udut", k), &s, |b, s| {
            b.iter(|| udut(s, &perm).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("spd_inverse", k), &s, |b, s| {
            b.iter(|| spd_inverse(s).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_factorization);
criterion_main!(benches);
