//! Criterion bench: TANE's stripped-partition kernels — construction,
//! product, and g3 error — the per-lattice-node costs that dominate the
//! baseline's runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdx_baselines::StrippedPartition;
use fdx_synth::generator::{self, SynthConfig};

fn bench_partitions(c: &mut Criterion) {
    let mut group = c.benchmark_group("tane_partitions");
    group.sample_size(20);
    for rows in [1_000usize, 20_000] {
        let data = generator::generate(&SynthConfig {
            tuples: rows,
            attributes: 8,
            domain_range: (64, 216),
            noise_rate: 0.01,
            seed: 4,
        });
        let ds = &data.noisy;
        group.bench_with_input(BenchmarkId::new("from_column", rows), ds, |b, ds| {
            b.iter(|| StrippedPartition::from_column(ds, 0));
        });
        let p0 = StrippedPartition::from_column(ds, 0);
        let p1 = StrippedPartition::from_column(ds, 1);
        group.bench_with_input(BenchmarkId::new("product", rows), &(), |b, _| {
            b.iter(|| p0.product(&p1));
        });
        let p01 = p0.product(&p1);
        group.bench_with_input(BenchmarkId::new("fd_error", rows), &(), |b, _| {
            b.iter(|| p0.fd_error(&p01));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitions);
criterion_main!(benches);
