//! Criterion bench: Algorithm 2 (the pair transform), the kernel behind
//! FDX's runtime on wide/tall inputs, plus the circular-shift vs
//! uniform-random sampling ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdx_core::{pair_transform, PairSampling, TransformConfig};
use fdx_synth::generator::{self, SynthConfig};

fn bench_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("pair_transform");
    group.sample_size(20);
    for (rows, cols) in [
        (1_000usize, 10usize),
        (1_000, 40),
        (10_000, 10),
        (10_000, 40),
    ] {
        let data = generator::generate(&SynthConfig {
            tuples: rows,
            attributes: cols,
            domain_range: (64, 216),
            noise_rate: 0.01,
            seed: 1,
        });
        group.bench_with_input(
            BenchmarkId::new("circular_shift", format!("{rows}x{cols}")),
            &data.noisy,
            |b, ds| {
                let cfg = TransformConfig::default();
                b.iter(|| pair_transform(ds, &cfg));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("uniform_random", format!("{rows}x{cols}")),
            &data.noisy,
            |b, ds| {
                let cfg = TransformConfig {
                    sampling: PairSampling::UniformRandom {
                        pairs_per_attr: rows,
                    },
                    ..TransformConfig::default()
                };
                b.iter(|| pair_transform(ds, &cfg));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_transform);
criterion_main!(benches);
