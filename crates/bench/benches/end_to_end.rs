//! Criterion bench: end-to-end FDX discovery, plus the design ablations
//! DESIGN.md calls out — pair transform vs raw-data GL, and validation
//! on/off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdx_baselines::GlRaw;
use fdx_core::{Fdx, FdxConfig};
use fdx_synth::generator::{self, SynthConfig};

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for (rows, cols) in [(1_000usize, 12usize), (5_000, 24)] {
        let data = generator::generate(&SynthConfig {
            tuples: rows,
            attributes: cols,
            domain_range: (64, 216),
            noise_rate: 0.01,
            seed: 5,
        });
        let ds = &data.noisy;
        let label = format!("{rows}x{cols}");
        group.bench_with_input(BenchmarkId::new("fdx", &label), ds, |b, ds| {
            let fdx = Fdx::new(FdxConfig::default());
            b.iter(|| fdx.discover(ds).unwrap());
        });
        group.bench_with_input(
            BenchmarkId::new("fdx_no_validation", &label),
            ds,
            |b, ds| {
                let mut cfg = FdxConfig::default();
                cfg.validate = false;
                let fdx = Fdx::new(cfg);
                b.iter(|| fdx.discover(ds).unwrap());
            },
        );
        group.bench_with_input(BenchmarkId::new("gl_raw", &label), ds, |b, ds| {
            let gl = GlRaw::default();
            b.iter(|| gl.discover(ds));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
