//! Criterion bench: graphical lasso and the λ=0 stabilized inversion over
//! correlation matrices of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdx_core::pair_transform;
use fdx_glasso::{graphical_lasso, GlassoConfig};
use fdx_linalg::Matrix;
use fdx_synth::generator::{self, SynthConfig};

fn correlation_of_size(k: usize) -> Matrix {
    let data = generator::generate(&SynthConfig {
        tuples: 500,
        attributes: k,
        domain_range: (64, 216),
        noise_rate: 0.01,
        seed: 2,
    });
    let stats = pair_transform(&data.noisy, &Default::default());
    let mut s = stats.correlation();
    s.scale_mut(0.9);
    s.add_diag_mut(0.1);
    s
}

fn bench_glasso(c: &mut Criterion) {
    let mut group = c.benchmark_group("glasso");
    group.sample_size(20);
    for k in [10usize, 40, 80] {
        let s = correlation_of_size(k);
        group.bench_with_input(BenchmarkId::new("lambda0_inversion", k), &s, |b, s| {
            let cfg = GlassoConfig::default();
            b.iter(|| graphical_lasso(s, &cfg).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("lambda0.05_bcd", k), &s, |b, s| {
            let cfg = GlassoConfig {
                lambda: 0.05,
                ..GlassoConfig::default()
            };
            b.iter(|| graphical_lasso(s, &cfg).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_glasso);
criterion_main!(benches);
