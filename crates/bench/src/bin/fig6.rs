//! Regenerates **Figure 6**: FDX's column-wise scalability — mean total
//! runtime vs mean model (structure-learning) runtime as the attribute
//! count grows.
//!
//! Set `FDX_BENCH_METRICS=<path>` to also write one JSON line per run in
//! the same `run_summary` shape `fdx discover --metrics` emits.

use std::io::Write as _;

use fdx_bench::{env_usize, instances};
use fdx_core::{Fdx, FdxConfig};
use fdx_eval::median;
use fdx_synth::generator::{self, SynthConfig};

fn main() {
    let max_cols = env_usize("FDX_BENCH_MAX_COLS", 190);
    let step = env_usize("FDX_BENCH_COL_STEP", 20);
    let reps = instances();
    let mut metrics_out = std::env::var("FDX_BENCH_METRICS").ok().map(|path| {
        std::fs::File::create(&path).unwrap_or_else(|e| panic!("FDX_BENCH_METRICS={path}: {e}"))
    });
    println!("Figure 6: column-wise scalability of FDX ({reps} instances per size)\n");
    println!("{:>8}  {:>12}  {:>12}", "columns", "total (s)", "model (s)");
    let mut cols = 4usize;
    while cols <= max_cols {
        let mut totals = Vec::new();
        let mut models = Vec::new();
        for inst in 0..reps {
            let cfg = SynthConfig {
                tuples: 1_000,
                attributes: cols,
                domain_range: (64, 216),
                noise_rate: 0.01,
                seed: 300 + inst as u64,
            };
            let data = generator::generate(&cfg);
            if let Ok(r) = Fdx::new(FdxConfig::default()).discover(&data.noisy) {
                totals.push(r.timings.total_secs());
                models.push(r.timings.model_secs());
                if let Some(f) = metrics_out.as_mut() {
                    writeln!(f, "{}", r.summary_json()).expect("metrics write failed");
                }
            }
        }
        println!(
            "{:>8}  {:>12.4}  {:>12.4}",
            cols,
            median(&totals),
            median(&models)
        );
        cols += step;
    }
}
