//! Regenerates **Table 1**: the benchmark data sets with known
//! dependencies (attribute, FD, and FD-edge counts).

use fdx_bayesnet::networks;
use fdx_eval::TextTable;

fn main() {
    let mut t = TextTable::new(&["Data set", "Attributes", "# FDs", "# Edges in FDs"]);
    for (name, attrs, fds, edges) in networks::table1(0) {
        t.row(vec![
            name.to_string(),
            attrs.to_string(),
            fds.to_string(),
            edges.to_string(),
        ]);
    }
    println!("Table 1: benchmark data sets with known dependencies\n");
    print!("{}", t.render());
}
