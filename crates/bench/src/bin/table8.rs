//! Regenerates **Table 8**: FDX's accuracy on the benchmark networks as the
//! sparsity (graphical-lasso λ) knob sweeps the paper's grid, plus the
//! extension ablation over the autoregression threshold τ.

use fdx_bayesnet::networks;
use fdx_bench::bn_instance;
use fdx_core::{Fdx, FdxConfig};
use fdx_eval::{edge_prf, TextTable};

const SPARSITIES: [f64; 6] = [0.0, 0.002, 0.004, 0.006, 0.008, 0.010];

fn main() {
    let mut header = vec!["Data set".to_string(), "".to_string()];
    header.extend(SPARSITIES.iter().map(|s| format!("{s}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TextTable::new(&header_refs);

    for (name, net) in networks::all(0) {
        let (ds, truth) = bn_instance(&net, 17);
        let mut rows = [
            vec![name.to_string(), "Precision".to_string()],
            vec![String::new(), "Recall".to_string()],
            vec![String::new(), "F1-score".to_string()],
            vec![String::new(), "# of FDs".to_string()],
        ];
        for &sparsity in &SPARSITIES {
            let cfg = FdxConfig::default().with_sparsity(sparsity);
            match Fdx::new(cfg).discover(&ds) {
                Ok(r) => {
                    let prf = edge_prf(&truth, &r.fds);
                    rows[0].push(format!("{:.3}", prf.precision));
                    rows[1].push(format!("{:.3}", prf.recall));
                    rows[2].push(format!("{:.3}", prf.f1));
                    rows[3].push(r.fds.len().to_string());
                }
                Err(_) => {
                    for row in &mut rows {
                        row.push("-".to_string());
                    }
                }
            }
        }
        for row in rows {
            t.row(row);
        }
    }
    println!("Table 8: FDX under different sparsity (lambda) settings\n");
    print!("{}", t.render());

    // Extension: the threshold τ is FDX's second sparsity knob; sweep it at
    // λ = 0 for the ablation DESIGN.md calls out.
    let mut t2 = TextTable::new(&["Data set", "tau=0.04", "0.08", "0.12", "0.20"]);
    for (name, net) in networks::all(0) {
        let (ds, truth) = bn_instance(&net, 17);
        let mut row = vec![name.to_string()];
        for tau in [0.04, 0.08, 0.12, 0.20] {
            let cfg = FdxConfig::default().with_threshold(tau);
            let f1 = Fdx::new(cfg)
                .discover(&ds)
                .map(|r| edge_prf(&truth, &r.fds).f1)
                .unwrap_or(0.0);
            row.push(format!("{f1:.3}"));
        }
        t2.row(row);
    }
    println!("\nExtension: F1 under different autoregression thresholds (lambda = 0)\n");
    print!("{}", t2.render());
}
