//! Regenerates **Figure 5**: FDX's autoregression matrices for the
//! Australian Credit Approval and Mammographic datasets (the §5.5
//! feature-engineering readout).

use fdx_core::{render_autoregression_heatmap, Fdx, FdxConfig};
use fdx_synth::realworld;

fn main() {
    for rw in [realworld::australian(0), realworld::mammographic(0)] {
        let result = Fdx::new(FdxConfig::default())
            .discover(&rw.data)
            .expect("stand-in is well-formed");
        println!("Figure 5: FDX autoregression matrix for {}\n", rw.name);
        println!(
            "{}",
            render_autoregression_heatmap(&result.autoregression, rw.data.schema())
        );
        println!("Discovered FDs:");
        print!("{}", result.fds.render(rw.data.schema()));
        println!();
    }
}
