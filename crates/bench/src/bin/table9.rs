//! Regenerates **Table 9**: FDX's accuracy under the six column-ordering
//! heuristics (minimum-degree "heuristic", natural, AMD, COLAMD, METIS- and
//! NESDIS-style nested dissection).

use fdx_bayesnet::networks;
use fdx_bench::bn_instance;
use fdx_core::{Fdx, FdxConfig};
use fdx_eval::{edge_prf, TextTable};
use fdx_order::OrderingMethod;

fn main() {
    let mut header = vec!["Data set".to_string(), "".to_string()];
    header.extend(OrderingMethod::ALL.iter().map(|m| m.label().to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TextTable::new(&header_refs);

    for (name, net) in networks::all(0) {
        let (ds, truth) = bn_instance(&net, 17);
        let mut rows = [
            vec![name.to_string(), "P".to_string()],
            vec![String::new(), "R".to_string()],
            vec![String::new(), "F1".to_string()],
        ];
        for method in OrderingMethod::ALL {
            let cfg = FdxConfig::default().with_ordering(method);
            match Fdx::new(cfg).discover(&ds) {
                Ok(r) => {
                    let prf = edge_prf(&truth, &r.fds);
                    rows[0].push(format!("{:.3}", prf.precision));
                    rows[1].push(format!("{:.3}", prf.recall));
                    rows[2].push(format!("{:.3}", prf.f1));
                }
                Err(_) => {
                    for row in &mut rows {
                        row.push("-".to_string());
                    }
                }
            }
        }
        for row in rows {
            t.row(row);
        }
    }
    println!("Table 9: FDX under different column-ordering methods\n");
    print!("{}", t.render());
}
