//! Regenerates **Figure 4**: the FDs RFI discovers on Hospital, with their
//! reliable-fraction-of-information scores in parentheses.

use fdx_baselines::{Rfi, RfiConfig};
use fdx_synth::realworld;

fn main() {
    let rw = realworld::hospital(0);
    let rfi = Rfi::new(RfiConfig {
        alpha: 1.0,
        max_seconds: fdx_bench::budget() * 4.0,
        ..Default::default()
    });
    let fds = rfi.discover(&rw.data);
    println!("Figure 4: FDs discovered by RFI for Hospital\n");
    for fd in fds.iter() {
        let score = rfi.score(&rw.data, fd.lhs(), fd.rhs());
        println!("{} ({score:.6})", fd.display(rw.data.schema()));
    }
}
