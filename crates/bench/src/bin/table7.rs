//! Regenerates **Table 7**: imputation accuracy for attributes that
//! participate in an FDX-discovered FD (w) vs attributes that do not (w/o),
//! under random and systematic noise, for both imputers.

use fdx_core::{Fdx, FdxConfig};
use fdx_data::NULL_CODE;
use fdx_eval::{median, TextTable};
use fdx_ml::{imputation_accuracy, GbdtImputer, Imputer, KnnImputer};
use fdx_synth::realworld;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Rows held out per target attribute.
const HOLDOUT_FRACTION: f64 = 0.1;

fn main() {
    let imputers: Vec<Box<dyn Imputer>> = vec![
        Box::new(KnnImputer::default()),
        Box::new(GbdtImputer::new(fdx_ml::GbdtConfig {
            rounds: 20,
            max_train_rows: 1_500,
            ..Default::default()
        })),
    ];
    let mut header = vec!["Data set".to_string()];
    for imp in &imputers {
        for noise in ["random", "systematic"] {
            header.push(format!("{} {noise} w/o", imp.name()));
            header.push(format!("{} {noise} w", imp.name()));
        }
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TextTable::new(&header_refs);

    for rw in realworld::all(0) {
        // Imputation accuracy needs nowhere near full scale: cap rows so the
        // boosted-stump trainer stays tractable on NYPD (34k rows x 60-class
        // targets).
        let rw = if rw.data.nrows() > 4_000 {
            let rows: Vec<usize> = (0..rw.data.nrows())
                .step_by(rw.data.nrows() / 4_000)
                .collect();
            realworld::RealWorld {
                name: rw.name,
                data: rw.data.gather(&rows),
                planted: rw.planted.clone(),
            }
        } else {
            rw
        };
        // Which attributes participate in an FDX-discovered FD?
        let fdx = Fdx::new(FdxConfig::default())
            .discover(&rw.data)
            .map(|r| r.fds)
            .unwrap_or_default();
        let mut with_fd = vec![false; rw.data.ncols()];
        for (x, y) in fdx.edge_set() {
            with_fd[x] = true;
            with_fd[y] = true;
        }
        let mut row = vec![rw.name.to_string()];
        for imp in &imputers {
            for systematic in [false, true] {
                let mut acc_with = Vec::new();
                let mut acc_without = Vec::new();
                for target in 0..rw.data.ncols() {
                    let card = rw.data.column(target).distinct_count();
                    // Skip unimputable targets: constants and high-cardinality
                    // (near-key / free-text) attributes, which no conditional
                    // model predicts and which would dominate the runtime of
                    // the one-vs-rest trainer.
                    if !(2..=20).contains(&card) {
                        continue;
                    }
                    // Corrupt a copy of the data everywhere except the
                    // held-out cells we grade on.
                    let mut noisy = rw.data.clone();
                    let mut rng = ChaCha8Rng::seed_from_u64(900 + target as u64);
                    if systematic {
                        let cond = (target + 1) % rw.data.ncols();
                        fdx_synth::systematic_flip(&mut noisy, target, cond, 0.15, &mut rng);
                    } else {
                        fdx_synth::flip_cells(&mut noisy, &[target], 0.1, &mut rng);
                    }
                    // Hold out rows with an observed target.
                    let holdout: Vec<usize> = (0..rw.data.nrows())
                        .filter(|&r| rw.data.code(r, target) != NULL_CODE)
                        .step_by((1.0 / HOLDOUT_FRACTION) as usize)
                        .take(120)
                        .collect();
                    if holdout.len() < 10 {
                        continue;
                    }
                    let truth: Vec<u32> =
                        holdout.iter().map(|&r| rw.data.code(r, target)).collect();
                    let pred = imp.impute(&noisy, target, &holdout);
                    // Predictions come back in the noisy dataset's
                    // dictionary, which extends the clean one, so codes are
                    // comparable.
                    let acc = imputation_accuracy(&truth, &pred);
                    if with_fd[target] {
                        acc_with.push(acc);
                    } else {
                        acc_without.push(acc);
                    }
                }
                row.push(format!("{:.2}", median(&acc_without)));
                row.push(format!("{:.2}", median(&acc_with)));
            }
        }
        t.row(row);
    }
    println!("Table 7: median imputation accuracy, attributes without (w/o) vs");
    println!("with (w) an FDX-discovered dependency\n");
    print!("{}", t.render());
}
