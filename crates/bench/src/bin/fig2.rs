//! Regenerates **Figure 2**: median F1 of every method across the eight
//! synthetic settings (Table 2's `t`/`r`/`d`/`n` grid), rendered as
//! text bars.

use fdx_bench::{instances, lineup_for};
use fdx_eval::{edge_prf, median};
use fdx_synth::generator;

fn main() {
    let n_instances = instances();
    println!("Figure 2: median F1 over {n_instances} instances per setting (paper: 5)\n");
    for setting in generator::figure2_settings() {
        println!("--- {}", setting.label());
        let methods = lineup_for(setting.noise_rate);
        let mut scores: Vec<(String, Option<f64>)> = Vec::new();
        for m in &methods {
            let mut f1s = Vec::new();
            let mut skipped = false;
            for inst in 0..n_instances {
                let cfg = setting.to_config(100 + inst as u64);
                let data = generator::generate(&cfg);
                let out = m.run(&data.noisy);
                if out.skipped {
                    skipped = true;
                    break;
                }
                f1s.push(edge_prf(&data.true_fds, &out.fds).f1);
            }
            scores.push((m.name(), if skipped { None } else { Some(median(&f1s)) }));
        }
        for (name, f1) in scores {
            match f1 {
                Some(v) => {
                    let bar = "#".repeat((v * 40.0).round() as usize);
                    println!("  {name:<9} {v:.3} |{bar}");
                }
                None => println!("  {name:<9} -"),
            }
        }
        println!();
    }
}
