//! Regenerates **Table 4**: precision / recall / F1 of every method on the
//! five known-structure benchmark networks.

use fdx_bayesnet::networks;
use fdx_bench::{bn_instance, lineup_default, BN_EPSILON};
use fdx_eval::{edge_prf, TextTable};

fn main() {
    let methods = lineup_default(BN_EPSILON);
    let mut header: Vec<String> = vec!["Data set".into(), "".into()];
    header.extend(methods.iter().map(|m| m.name()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TextTable::new(&header_refs);

    for (name, net) in networks::all(0) {
        let (ds, truth) = bn_instance(&net, 17);
        let mut p_row = vec![name.to_string(), "P".to_string()];
        let mut r_row = vec![String::new(), "R".to_string()];
        let mut f_row = vec![String::new(), "F1".to_string()];
        for m in &methods {
            let out = m.run(&ds);
            if out.skipped {
                for row in [&mut p_row, &mut r_row, &mut f_row] {
                    row.push("-".to_string());
                }
                continue;
            }
            let prf = edge_prf(&truth, &out.fds);
            p_row.push(format!("{:.3}", prf.precision));
            r_row.push(format!("{:.3}", prf.recall));
            f_row.push(format!("{:.3}", prf.f1));
        }
        t.row(p_row);
        t.row(r_row);
        t.row(f_row);
    }
    println!("Table 4: evaluation on benchmark data sets with known FDs");
    println!("('-' = method skipped / exceeded its budget)\n");
    print!("{}", t.render());
}
