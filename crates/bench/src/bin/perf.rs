//! Performance harness: times the heavy pipeline phases — pair transform,
//! covariance assembly, and the graphical lasso — over a
//! `(rows, attributes, threads)` grid, plus the full `Fdx::discover`
//! pipeline with its per-phase breakdown (transform / covariance / glasso /
//! ordering / factorization / generation / validation), and checks the
//! `fdx-par` determinism contract while doing so (every thread count must
//! produce bit-identical results, including the discovered FD set).
//!
//! Two before/after comparisons ride along, each with its own exactness
//! gate (DESIGN.md §15):
//!
//! * **packed kernel** — the popcount transform vs the materialized float
//!   sample matrix; their second moments must match bit for bit;
//! * **validation** — `refine_with_options` with the partition cache off
//!   (threads = 1) vs on at every thread count; the refined FD set must be
//!   byte-identical in every cell.
//!
//! The glasso baseline is the unscreened single-threaded solver
//! (`screen: false, threads: 1`), which executes exactly the pre-screening
//! code path, so the reported speedups are against the old sequential
//! implementation, not against a strawman.
//!
//! Knobs (environment variables, like every other bench binary):
//!
//! * `FDX_BENCH_PERF_ROWS`    — dataset rows (default 3000),
//! * `FDX_BENCH_PERF_COLS`    — comma-separated attribute counts
//!   (default `16,32,64`),
//! * `FDX_BENCH_PERF_THREADS` — comma-separated thread counts
//!   (default `1,2,4`),
//! * `FDX_BENCH_PERF_REPS`    — repetitions per cell, best-of (default 3),
//! * `FDX_BENCH_PERF_OUT`     — JSON report path (default `BENCH_PR10.json`),
//! * `FDX_BENCH_INGEST_ROWS`  — rows for the out-of-core ingest grid
//!   (default 50000),
//! * `FDX_BENCH_INGEST_CHUNKS` — comma-separated `chunk_rows` widths for
//!   the ingest grid (default `256,1024,4096,16384`),
//! * `FDX_BENCH_SESSION_ROWS` — rows for the session grid (default 2000),
//! * `FDX_BENCH_SESSION_LAMBDAS` — comma-separated λ sweep for the
//!   cold-vs-warm session grid (default `0.002,0.004,0.006,0.008`).
//!
//! The ingest grid writes a synthetic CSV to a temp file and times the
//! chunked out-of-core reader (`ingest_csv_file`) at each chunk width
//! against the resident `read_csv_str` baseline, reporting MB/s and the
//! reader's peak accounted bytes, plus one run under a deliberately tight
//! memory budget to show the sampled-rows degradation rung and its
//! bounded footprint.
//!
//! The session grid drives a real `fdx-serve` instance over loopback and
//! sweeps λ three ways: **cold** (a fresh server and snapshot directory
//! per λ — no cache, no warm start), **warm** (one session sweeping the λ
//! grid, so each solve warm-starts from the nearest cached iterate), and
//! **replay** (the same λ again — a pure result-cache hit). The warm
//! sweep must discover the same FD set as the cold runs, the replay must
//! be byte-identical to the reply that populated the cache, and the
//! server's own counters must confirm warm starts actually engaged.

use fdx_bench::env_usize;
use fdx_core::{
    pair_transform, pair_transform_matrix, refine_with_options, Fdx, FdxConfig, FdxResult,
    RefineOptions, TransformConfig,
};
use fdx_data::{ingest_csv_file, read_csv_str, Column, Dataset, IngestConfig, Schema, Value};
use fdx_glasso::{graphical_lasso, GlassoConfig, GlassoResult};
use fdx_linalg::Matrix;
use fdx_obs::json;

/// Deterministic local generator (SplitMix64) so the synthetic inputs are
/// identical on every platform without touching the global RNG stack.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Ok(v) => {
            let parsed: Vec<usize> = v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
            if parsed.is_empty() {
                default.to_vec()
            } else {
                parsed
            }
        }
        Err(_) => default.to_vec(),
    }
}

/// A synthetic categorical dataset: clusters of correlated columns (a
/// "determinant" column plus noisy copies) so the transform sees realistic
/// agreement structure rather than pure noise.
fn synth_dataset(rng: &mut SplitMix64, n: usize, k: usize) -> Dataset {
    let card = 32usize;
    let dict: Vec<Value> = (0..card as i64).map(Value::Int).collect();
    let mut columns = Vec::with_capacity(k);
    let mut names = Vec::with_capacity(k);
    let mut anchor: Vec<u32> = Vec::new();
    for a in 0..k {
        let codes: Vec<u32> = if a % 4 == 0 {
            anchor = (0..n).map(|_| rng.below(card) as u32).collect();
            anchor.clone()
        } else {
            // Noisy functional copy of the cluster anchor: ~10% flips.
            anchor
                .iter()
                .map(|&c| {
                    if rng.unit() < 0.1 {
                        rng.below(card) as u32
                    } else {
                        (c * 7 + a as u32) % card as u32
                    }
                })
                .collect()
        };
        columns.push(Column::from_codes(codes, dict.clone()));
        names.push(format!("a{a}"));
    }
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    Dataset::new(Schema::from_names(&name_refs), columns)
}

/// A block-diagonal SPD matrix (unit diagonal, diagonally dominant) whose
/// `|S_ij| > λ` graph splits into `k / block` components — the screening
/// fast path the tentpole targets.
fn block_spd(rng: &mut SplitMix64, k: usize, block: usize) -> Matrix {
    let mut s = Matrix::zeros(k, k);
    let mut start = 0;
    while start < k {
        let p = block.min(k - start);
        let cap = if p > 1 { 0.9 / (p - 1) as f64 } else { 0.0 };
        for i in 0..p {
            s[(start + i, start + i)] = 1.0;
            for j in (i + 1)..p {
                let mag = (0.15 + 0.3 * rng.unit()).min(cap);
                let sign = if rng.next_u64() % 2 == 0 { 1.0 } else { -1.0 };
                s[(start + i, start + j)] = sign * mag;
                s[(start + j, start + i)] = sign * mag;
            }
        }
        start += p;
    }
    s
}

fn time_best_of<T>(reps: usize, mut run: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let span = fdx_obs::Span::enter("bench.perf.cell");
        let value = run();
        best = best.min(span.elapsed_secs());
        out = Some(value);
    }
    let value = match out {
        Some(v) => v,
        None => unreachable!(), // fdx-allow: L001 reps.max(1) >= 1
    };
    (best, value)
}

fn assert_matrix_bits_equal(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.rows(), b.rows(), "{what}: shape mismatch");
    assert_eq!(a.cols(), b.cols(), "{what}: shape mismatch");
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            assert_eq!(
                a[(i, j)].to_bits(),
                b[(i, j)].to_bits(),
                "{what}: entry ({i},{j}) differs: {} vs {}",
                a[(i, j)],
                b[(i, j)]
            );
        }
    }
}

fn solve(s: &Matrix, cfg: &GlassoConfig) -> GlassoResult {
    match graphical_lasso(s, cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf: glasso failed on the synthetic SPD input: {e:?}");
            std::process::exit(1);
        }
    }
}

fn discover(ds: &Dataset, cfg: &FdxConfig) -> FdxResult {
    match Fdx::new(cfg.clone()).discover(ds) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf: discover failed on the synthetic dataset: {e:?}");
            std::process::exit(1);
        }
    }
}

/// Best-of-`reps` full pipeline run: keeps the result whose own timing
/// breakdown reports the smallest total (the per-phase fields travel with
/// the winning rep, so the breakdown is internally consistent).
fn discover_best_of(reps: usize, ds: &Dataset, cfg: &FdxConfig) -> FdxResult {
    let mut best: Option<FdxResult> = None;
    for _ in 0..reps.max(1) {
        let r = discover(ds, cfg);
        let better = best
            .as_ref()
            .map_or(true, |b| r.timings.total_secs() < b.timings.total_secs());
        if better {
            best = Some(r);
        }
    }
    match best {
        Some(r) => r,
        None => unreachable!(), // fdx-allow: L001 reps.max(1) >= 1
    }
}

struct GlassoCell {
    threads: usize,
    secs: f64,
    speedup: f64,
}

/// The synthetic corpus for the ingest grid, rendered as CSV text: the
/// same cluster structure as [`synth_dataset`] so dictionaries stay
/// realistic (32 distinct values per column, correlated clusters).
fn synth_csv(rng: &mut SplitMix64, n: usize, k: usize) -> String {
    let card = 32usize;
    let mut cols: Vec<Vec<u32>> = Vec::with_capacity(k);
    let mut anchor: Vec<u32> = Vec::new();
    for a in 0..k {
        let codes: Vec<u32> = if a % 4 == 0 {
            anchor = (0..n).map(|_| rng.below(card) as u32).collect();
            anchor.clone()
        } else {
            anchor
                .iter()
                .map(|&c| {
                    if rng.unit() < 0.1 {
                        rng.below(card) as u32
                    } else {
                        (c * 7 + a as u32) % card as u32
                    }
                })
                .collect()
        };
        cols.push(codes);
    }
    let mut csv = String::with_capacity(n * k * 4);
    for a in 0..k {
        if a > 0 {
            csv.push(',');
        }
        csv.push_str(&format!("a{a}"));
    }
    csv.push('\n');
    for i in 0..n {
        for (a, codes) in cols.iter().enumerate() {
            if a > 0 {
                csv.push(',');
            }
            csv.push_str(&format!("v{}", codes[i]));
        }
        csv.push('\n');
    }
    csv
}

/// Times the out-of-core reader across chunk widths against the resident
/// baseline and returns the `"ingest"` report section.
fn ingest_grid(reps: usize) -> String {
    let rows = env_usize("FDX_BENCH_INGEST_ROWS", 50_000);
    let chunks = env_list("FDX_BENCH_INGEST_CHUNKS", &[256, 1024, 4096, 16384]);
    let k = 16usize;
    let mut rng = SplitMix64(0xFD_0008);
    let csv = synth_csv(&mut rng, rows, k);
    let bytes = csv.len() as u64;
    let path = std::env::temp_dir().join(format!("fdx-perf-ingest-{}.csv", std::process::id()));
    if let Err(e) = std::fs::write(&path, &csv) {
        eprintln!("perf: cannot write ingest corpus {}: {e}", path.display());
        std::process::exit(1);
    }
    let mbps = |secs: f64| bytes as f64 / (1u64 << 20) as f64 / secs.max(1e-12);

    println!("ingest: rows={rows} cols={k} bytes={bytes} chunks={chunks:?}");
    let (resident_secs, resident) = time_best_of(reps, || match read_csv_str(&csv) {
        Ok(ds) => ds,
        Err(e) => {
            eprintln!("perf: resident read failed: {e}");
            std::process::exit(1);
        }
    });
    println!(
        "  resident    {:.4}s  ({:.1} MB/s)",
        resident_secs,
        mbps(resident_secs)
    );

    let mut cells = Vec::new();
    for &chunk_rows in &chunks {
        let cfg = IngestConfig {
            chunk_rows: Some(chunk_rows),
            ..IngestConfig::default()
        };
        let (secs, got) = time_best_of(reps, || match ingest_csv_file(&path, &cfg) {
            Ok(got) => got,
            Err(e) => {
                eprintln!("perf: chunked ingest failed at chunk_rows={chunk_rows}: {e}");
                std::process::exit(1);
            }
        });
        assert_eq!(
            got.dataset, resident,
            "chunked ingest diverged from resident at chunk_rows={chunk_rows}"
        );
        println!(
            "  chunked     chunk_rows={chunk_rows}: {:.4}s  ({:.1} MB/s, peak {} bytes)",
            secs,
            mbps(secs),
            got.health.peak_bytes
        );
        cells.push(
            json::Obj::new()
                .u64_("chunk_rows", chunk_rows as u64)
                .f64_("secs", secs)
                .f64_("mb_per_sec", mbps(secs))
                .u64_("peak_bytes", got.health.peak_bytes)
                .finish(),
        );
    }

    // One deliberately starved run: the budget forces the sampled-rows
    // rung; the run must still complete and report its degradation.
    let unbudgeted_peak = match ingest_csv_file(
        &path,
        &IngestConfig {
            chunk_rows: Some(4096),
            ..IngestConfig::default()
        },
    ) {
        Ok(got) => got.health.peak_bytes,
        Err(e) => {
            eprintln!("perf: ingest failed: {e}");
            std::process::exit(1);
        }
    };
    let budget = (unbudgeted_peak / 4).max(1);
    let budget_cfg = IngestConfig {
        chunk_rows: Some(4096),
        memory_budget: Some(budget),
        ..IngestConfig::default()
    };
    let (budget_secs, budgeted) =
        time_best_of(reps, || match ingest_csv_file(&path, &budget_cfg) {
            Ok(got) => got,
            Err(e) => {
                eprintln!("perf: budgeted ingest failed: {e}");
                std::process::exit(1);
            }
        });
    println!(
        "  budgeted    budget={budget}: {:.4}s  (sampled={}, keep_every={}, kept {} of {} rows)",
        budget_secs,
        budgeted.health.sampled,
        budgeted.health.keep_every,
        budgeted.health.rows_kept,
        rows
    );
    println!();
    let _ = std::fs::remove_file(&path);

    json::Obj::new()
        .u64_("rows", rows as u64)
        .u64_("cols", k as u64)
        .u64_("bytes", bytes)
        .f64_("resident_secs", resident_secs)
        .f64_("resident_mb_per_sec", mbps(resident_secs))
        .raw("cells", &json::array(cells))
        .raw(
            "budgeted",
            &json::Obj::new()
                .u64_("budget_bytes", budget)
                .f64_("secs", budget_secs)
                .bool_("sampled", budgeted.health.sampled)
                .u64_("keep_every", budgeted.health.keep_every)
                .u64_("rows_kept", budgeted.health.rows_kept)
                .u64_("peak_bytes", budgeted.health.peak_bytes)
                .finish(),
        )
        .finish()
}

fn env_f64_list(name: &str, default: &[f64]) -> Vec<f64> {
    match std::env::var(name) {
        Ok(v) => {
            let parsed: Vec<f64> = v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
            if parsed.is_empty() {
                default.to_vec()
            } else {
                parsed
            }
        }
        Err(_) => default.to_vec(),
    }
}

/// One discover round trip against a live server; exits on any transport
/// or server-side failure (a bench cell must not silently degrade).
fn serve_discover(addr: &str, frame: &fdx_serve::RequestFrame) -> fdx_serve::Response {
    let line = match fdx_serve::client::exchange(addr, &frame.to_line()) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("perf: session exchange failed: {e}");
            std::process::exit(1);
        }
    };
    let r = match fdx_serve::Response::parse(&line) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf: session reply unparseable: {e:?}");
            std::process::exit(1);
        }
    };
    if !r.is_ok() {
        eprintln!("perf: session discover failed: {}", r.line);
        std::process::exit(1);
    }
    r
}

/// Times the cold / warm / replay λ sweep against a live server and
/// returns the `"session"` report section.
fn session_grid(reps: usize) -> String {
    use fdx_serve::{RequestFrame, ServeConfig, Server};

    let rows = env_usize("FDX_BENCH_SESSION_ROWS", 2_000);
    let lambdas = env_f64_list("FDX_BENCH_SESSION_LAMBDAS", &[0.002, 0.004, 0.006, 0.008]);
    let k = 12usize;
    let mut rng = SplitMix64(0xFD_0010);
    let csv = synth_csv(&mut rng, rows, k);
    fdx_obs::set_enabled(true);

    let start = |dir: &std::path::Path| -> fdx_serve::ServerHandle {
        match Server::start(ServeConfig {
            session_dir: Some(dir.to_path_buf()),
            ..ServeConfig::default()
        }) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("perf: session server failed to bind: {e}");
                std::process::exit(1);
            }
        }
    };
    let upload = |addr: &str| -> String {
        let line = match fdx_serve::client::exchange(addr, &fdx_serve::upload_line("up", &csv, &[]))
        {
            Ok(l) => l,
            Err(e) => {
                eprintln!("perf: session upload failed: {e}");
                std::process::exit(1);
            }
        };
        match fdx_serve::Response::parse(&line).ok().and_then(|r| {
            r.raw
                .get("dataset")
                .and_then(|v| v.as_str())
                .map(String::from)
        }) {
            Some(h) => h,
            None => {
                eprintln!("perf: upload reply carried no dataset handle: {line}");
                std::process::exit(1);
            }
        }
    };
    let frame = |id: &str, handle: &str, lambda: f64| RequestFrame {
        id: id.to_string(),
        csv: String::new(),
        dataset: Some(handle.to_string()),
        sparsity: Some(lambda),
        seed: Some(7),
        threads: Some(1),
        ..RequestFrame::default()
    };
    let tmp = std::env::temp_dir();
    let tag = std::process::id();

    println!("session: rows={rows} cols={k} lambdas={lambdas:?}");

    // Cold column: every rep gets a virgin server and snapshot directory,
    // so the solve starts from scratch — the pre-session baseline. Only
    // the discover round trip is timed (server spin-up and upload happen
    // outside the span), so cold vs warm compares solves, not setup.
    let mut cold: Vec<(f64, Vec<String>)> = Vec::new();
    for (i, &lambda) in lambdas.iter().enumerate() {
        let mut best = f64::INFINITY;
        let mut fds = Vec::new();
        for rep in 0..reps.max(1) {
            let dir = tmp.join(format!("fdx-perf-session-cold-{tag}-{i}-{rep}"));
            let _ = std::fs::remove_dir_all(&dir);
            let server = start(&dir);
            let addr = server.addr().to_string();
            let handle = upload(&addr);
            let span = fdx_obs::Span::enter("bench.perf.cell");
            let r = serve_discover(&addr, &frame("cold", &handle, lambda));
            best = best.min(span.elapsed_secs());
            fds = r.fds.clone().unwrap_or_default();
            server.shutdown();
            server.wait();
            let _ = std::fs::remove_dir_all(&dir);
        }
        println!(
            "  cold        lambda={lambda}: {best:.4}s  ({} FDs)",
            fds.len()
        );
        cold.push((best, fds));
    }

    // Warm column: one session sweeps the grid in order; solve i+1 warm
    // starts from the persisted iterate of solve i. Single-shot per λ —
    // a repeat would be a cache hit, not a warm solve.
    let dir = tmp.join(format!("fdx-perf-session-warm-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    let server = start(&dir);
    let addr = server.addr().to_string();
    let handle = upload(&addr);
    let mut warm: Vec<(f64, String)> = Vec::new();
    for (i, &lambda) in lambdas.iter().enumerate() {
        let span = fdx_obs::Span::enter("bench.perf.cell");
        let r = serve_discover(&addr, &frame(&format!("warm-{i}"), &handle, lambda));
        let secs = span.elapsed_secs();
        assert_eq!(
            r.fds.clone().unwrap_or_default(),
            cold[i].1,
            "warm-started sweep found a different FD set at lambda={lambda}"
        );
        let core = match fdx_serve::reply_result_core(&r.line) {
            Some(c) => c.to_string(),
            None => {
                eprintln!("perf: warm reply has no result core: {}", r.line);
                std::process::exit(1);
            }
        };
        println!(
            "  warm        lambda={lambda}: {secs:.4}s  ({:.2}x vs cold)",
            cold[i].0 / secs.max(1e-12)
        );
        warm.push((secs, core));
    }

    // Replay column: the sweep again — every cell is now a cache hit and
    // must replay the warm run's reply core byte-for-byte.
    let mut replay: Vec<f64> = Vec::new();
    for (i, &lambda) in lambdas.iter().enumerate() {
        let (secs, line) = time_best_of(reps, || {
            serve_discover(&addr, &frame(&format!("replay-{i}"), &handle, lambda)).line
        });
        let core = fdx_serve::reply_result_core(&line).unwrap_or("");
        assert_eq!(
            core, warm[i].1,
            "cache replay diverged from the computed reply at lambda={lambda}"
        );
        println!(
            "  replay      lambda={lambda}: {secs:.4}s  ({:.2}x vs cold)",
            cold[i].0 / secs.max(1e-12)
        );
        replay.push(secs);
    }

    // The grid is only honest if warm starts actually engaged: all but
    // the first sweep cell had a nearby-λ iterate to resume from.
    let stats = match fdx_serve::stats_request(
        &addr,
        "bench-stats",
        Some(0),
        &fdx_serve::RetryPolicy::none(),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("perf: session stats probe failed: {e}");
            std::process::exit(1);
        }
    };
    let warm_starts = stats
        .raw
        .get("counters")
        .and_then(|c| c.get("fdx.session.warm_starts"))
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    assert!(
        warm_starts as usize >= lambdas.len().saturating_sub(1),
        "expected at least {} warm starts, counters saw {warm_starts}",
        lambdas.len().saturating_sub(1)
    );
    server.shutdown();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
    println!();

    let cells = json::array(lambdas.iter().enumerate().map(|(i, &lambda)| {
        json::Obj::new()
            .f64_("lambda", lambda)
            .f64_("cold_secs", cold[i].0)
            .f64_("warm_secs", warm[i].0)
            .f64_("warm_speedup", cold[i].0 / warm[i].0.max(1e-12))
            .f64_("replay_secs", replay[i])
            .f64_("replay_speedup", cold[i].0 / replay[i].max(1e-12))
            .u64_("fds", cold[i].1.len() as u64)
            .finish()
    }));
    json::Obj::new()
        .u64_("rows", rows as u64)
        .u64_("cols", k as u64)
        .u64_("warm_starts", warm_starts)
        .raw("cells", &cells)
        .finish()
}

fn main() {
    let rows = env_usize("FDX_BENCH_PERF_ROWS", 3_000);
    let cols = env_list("FDX_BENCH_PERF_COLS", &[16, 32, 64]);
    let threads = env_list("FDX_BENCH_PERF_THREADS", &[1, 2, 4]);
    let reps = env_usize("FDX_BENCH_PERF_REPS", 3);
    let out_path =
        std::env::var("FDX_BENCH_PERF_OUT").unwrap_or_else(|_| "BENCH_PR10.json".to_string());
    let lambda = 0.05;
    let block = 8usize;

    println!("perf: rows={rows} cols={cols:?} threads={threads:?} reps={reps} (best-of)");
    println!();

    let mut settings = Vec::new();
    for &k in &cols {
        let mut rng = SplitMix64(0xFD_0004 ^ (k as u64) << 32);
        let ds = synth_dataset(&mut rng, rows, k);

        // --- transform ---------------------------------------------------
        let mut transform_cells = Vec::new();
        let mut reference: Option<Matrix> = None;
        for &t in &threads {
            let cfg = TransformConfig {
                threads: Some(t),
                ..TransformConfig::default()
            };
            let (secs, stats) = time_best_of(reps, || pair_transform(&ds, &cfg));
            let cov = stats.covariance();
            match &reference {
                Some(r) => assert_matrix_bits_equal(r, &cov, "transform covariance"),
                None => reference = Some(cov),
            }
            transform_cells.push((t, secs));
        }
        let stats = pair_transform(&ds, &TransformConfig::default());
        let (cov_secs, _cov) = time_best_of(reps, || stats.covariance());

        // --- packed kernel vs float reference ----------------------------
        // The "before" column: materialize the float 0/1 sample matrix and
        // accumulate the second moment with float dot products — the
        // arithmetic the packed popcount path replaces. The entries are
        // exact 0.0/1.0, so both paths compute the same integers and the
        // moments must match bit for bit (asserted here; the bench-smoke CI
        // job runs this binary, so the gate is exercised on every push).
        let float_cfg = TransformConfig::default();
        let (float_secs, float_sm) = time_best_of(reps, || {
            let z = pair_transform_matrix(&ds, &float_cfg);
            let (n, kk) = (z.rows(), z.cols());
            let mut sm = Matrix::zeros(kk, kk);
            for a in 0..kk {
                for b in a..kk {
                    let mut dot = 0.0f64;
                    for r in 0..n {
                        dot += z[(r, a)] * z[(r, b)];
                    }
                    let v = dot / n.max(1) as f64;
                    sm[(a, b)] = v;
                    sm[(b, a)] = v;
                }
            }
            sm
        });
        assert_matrix_bits_equal(
            &stats.second_moment(),
            &float_sm,
            "packed second moment vs float reference",
        );
        let packed_secs = transform_cells
            .first()
            .map_or(f64::INFINITY, |&(_, secs)| secs);

        // --- validation: partition cache off vs on -----------------------
        // Candidates come from the pipeline with validation disabled (the
        // raw Algorithm 3 output), so the refinement cells see the same
        // workload `discover` does. The refined FD set must be byte-
        // identical across every (threads, cache) combination.
        let raw_cfg = FdxConfig {
            validate: false,
            ..FdxConfig::default()
        };
        let candidates = discover(&ds, &raw_cfg).fds;
        let min_lift = FdxConfig::default().min_lift;
        let (uncached_secs, uncached_fds) = time_best_of(reps, || {
            refine_with_options(
                &ds,
                &candidates,
                min_lift,
                RefineOptions {
                    threads: Some(1),
                    partition_cache: false,
                },
            )
        });
        let mut validation_cells: Vec<(usize, f64, f64)> = Vec::new();
        for &t in &threads {
            let (secs, refined) = time_best_of(reps, || {
                refine_with_options(
                    &ds,
                    &candidates,
                    min_lift,
                    RefineOptions {
                        threads: Some(t),
                        partition_cache: true,
                    },
                )
            });
            assert_eq!(
                refined.fds(),
                uncached_fds.fds(),
                "refined FD set differs from the uncached baseline at threads={t}"
            );
            validation_cells.push((t, secs, uncached_secs / secs.max(1e-12)));
        }

        // --- glasso ------------------------------------------------------
        let s = block_spd(&mut rng, k, block);
        let seq_cfg = GlassoConfig {
            lambda,
            screen: false,
            threads: Some(1),
            ..GlassoConfig::default()
        };
        let (seq_secs, seq) = time_best_of(reps, || solve(&s, &seq_cfg));
        let mut glasso_cells: Vec<GlassoCell> = Vec::new();
        let mut screened_ref: Option<GlassoResult> = None;
        for &t in &threads {
            let cfg = GlassoConfig {
                lambda,
                threads: Some(t),
                ..GlassoConfig::default()
            };
            let (secs, r) = time_best_of(reps, || solve(&s, &cfg));
            match &screened_ref {
                Some(first) => {
                    assert_matrix_bits_equal(&first.theta, &r.theta, "glasso theta");
                    assert_eq!(first.iterations, r.iterations, "glasso sweep count");
                }
                None => screened_ref = Some(r),
            }
            glasso_cells.push(GlassoCell {
                threads: t,
                secs,
                speedup: seq_secs / secs.max(1e-12),
            });
        }
        let screened = match screened_ref {
            Some(r) => r,
            None => unreachable!(), // fdx-allow: L001 thread grid is non-empty
        };

        // --- full pipeline (per-phase breakdown) -------------------------
        let mut pipeline_cells: Vec<(usize, FdxResult)> = Vec::new();
        for &t in &threads {
            let cfg = FdxConfig {
                threads: Some(t),
                ..FdxConfig::default()
            };
            let r = discover_best_of(reps, &ds, &cfg);
            if let Some((_, first)) = pipeline_cells.first() {
                assert_eq!(
                    first.fds, r.fds,
                    "discover FD set differs across thread counts"
                );
                assert_matrix_bits_equal(&first.autoregression, &r.autoregression, "discover B");
            }
            pipeline_cells.push((t, r));
        }

        println!(
            "k={k}: {} component(s), largest {}",
            screened.components, screened.largest_component
        );
        for (t, secs) in &transform_cells {
            println!("  transform   threads={t}: {:.4}s", secs);
        }
        println!(
            "  transform   float reference: {:.4}s  (packed {:.2}x, bit-identical)",
            float_secs,
            float_secs / packed_secs.max(1e-12)
        );
        println!("  covariance  {:.4}s", cov_secs);
        println!(
            "  glasso      sequential unscreened: {:.4}s ({} sweeps, converged={})",
            seq_secs, seq.iterations, seq.converged
        );
        for c in &glasso_cells {
            println!(
                "  glasso      threads={}: {:.4}s  ({:.2}x vs sequential)",
                c.threads, c.secs, c.speedup
            );
        }
        println!(
            "  validation  uncached threads=1: {:.4}s  ({} candidates -> {} FDs)",
            uncached_secs,
            candidates.iter().count(),
            uncached_fds.iter().count()
        );
        for &(t, secs, speedup) in &validation_cells {
            println!(
                "  validation  cached threads={t}: {:.4}s  ({:.2}x vs uncached, FD set identical)",
                secs, speedup
            );
        }
        for (t, r) in &pipeline_cells {
            let phases: Vec<String> = r
                .timings
                .phases()
                .iter()
                .map(|(name, secs)| format!("{name} {secs:.4}s"))
                .collect();
            println!(
                "  pipeline    threads={t}: {:.4}s total, {} FDs  [{}]",
                r.timings.total_secs(),
                r.fds.iter().count(),
                phases.join(", ")
            );
        }
        println!();

        let transform_json = json::array(transform_cells.iter().map(|&(t, secs)| {
            json::Obj::new()
                .u64_("threads", t as u64)
                .f64_("secs", secs)
                .finish()
        }));
        let glasso_json = json::array(glasso_cells.iter().map(|c| {
            json::Obj::new()
                .u64_("threads", c.threads as u64)
                .f64_("secs", c.secs)
                .f64_("speedup", c.speedup)
                .finish()
        }));
        let pipeline_json = json::array(pipeline_cells.iter().map(|(t, r)| {
            let mut obj = json::Obj::new().u64_("threads", *t as u64);
            for (name, secs) in r.timings.phases() {
                obj = obj.f64_(name, secs);
            }
            obj.f64_("model", r.timings.model_secs())
                .f64_("total", r.timings.total_secs())
                .u64_("fds", r.fds.iter().count() as u64)
                .finish()
        }));
        let validation_json = json::Obj::new()
            .u64_("candidates", candidates.iter().count() as u64)
            .u64_("fds", uncached_fds.iter().count() as u64)
            .f64_("uncached_secs", uncached_secs)
            .raw(
                "cached",
                &json::array(validation_cells.iter().map(|&(t, secs, speedup)| {
                    json::Obj::new()
                        .u64_("threads", t as u64)
                        .f64_("secs", secs)
                        .f64_("speedup", speedup)
                        .finish()
                })),
            )
            .finish();
        settings.push(
            json::Obj::new()
                .u64_("k", k as u64)
                .u64_("rows", rows as u64)
                .raw("transform", &transform_json)
                .f64_("transform_float_reference_secs", float_secs)
                .f64_(
                    "transform_packed_speedup",
                    float_secs / packed_secs.max(1e-12),
                )
                .raw("validation", &validation_json)
                .f64_("covariance_secs", cov_secs)
                .f64_("glasso_sequential_secs", seq_secs)
                .u64_("glasso_components", screened.components as u64)
                .u64_(
                    "glasso_largest_component",
                    screened.largest_component as u64,
                )
                .raw("glasso", &glasso_json)
                .raw("pipeline", &pipeline_json)
                .finish(),
        );
    }

    let ingest_json = ingest_grid(reps);
    let session_json = session_grid(reps);

    let report = json::Obj::new()
        .str_("bench", "perf_pr10")
        .str_(
            "harness",
            "all crates and the bench binary compiled with -O; earlier \
             BENCH_PR*.json files were produced with unoptimized library \
             builds, so cross-file comparisons overstate in-kernel gains",
        )
        .u64_("rows", rows as u64)
        .u64_("reps", reps as u64)
        .f64_("lambda", lambda)
        .u64_("block", block as u64)
        .raw("settings", &json::array(settings))
        .raw("ingest", &ingest_json)
        .raw("session", &session_json)
        .finish();
    match std::fs::write(&out_path, format!("{report}\n")) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("perf: cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
