//! Regenerates **Table 5**: runtime (seconds) of every method on the
//! benchmark networks.

use fdx_bayesnet::networks;
use fdx_bench::{bn_instance, lineup_default, BN_EPSILON};
use fdx_eval::TextTable;

fn main() {
    let methods = lineup_default(BN_EPSILON);
    let mut header: Vec<String> = vec!["Data set".into()];
    header.extend(methods.iter().map(|m| m.name()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TextTable::new(&header_refs);

    for (name, net) in networks::all(0) {
        let (ds, _) = bn_instance(&net, 17);
        let mut row = vec![name.to_string()];
        for m in &methods {
            let out = m.run(&ds);
            row.push(if out.skipped {
                "-".to_string()
            } else {
                format!("{:.3}", out.seconds)
            });
        }
        t.row(row);
    }
    println!("Table 5: runtime (seconds) on benchmark data sets\n");
    print!("{}", t.render());
}
