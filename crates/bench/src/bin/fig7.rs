//! Regenerates **Figure 7**: FDX's median F1 as the noise rate sweeps
//! {0.01, 0.05, 0.1, 0.3, 0.5}, one series per synthetic setting.

use fdx_bench::instances;
use fdx_core::{Fdx, FdxConfig};
use fdx_eval::{edge_prf, median};
use fdx_synth::generator::{self, SizeClass, SynthSetting};

const NOISE_RATES: [f64; 5] = [0.01, 0.05, 0.1, 0.3, 0.5];

fn main() {
    let reps = instances();
    println!("Figure 7: effect of noise on FDX ({reps} instances per point)\n");
    let mut header = format!("{:<32}", "setting");
    for n in NOISE_RATES {
        header.push_str(&format!("{n:>8}"));
    }
    println!("{header}");
    use SizeClass::{Large, Small};
    for (t, r, d) in [
        (Large, Large, Large),
        (Large, Large, Small),
        (Large, Small, Large),
        (Large, Small, Small),
        (Small, Large, Large),
        (Small, Large, Small),
        (Small, Small, Large),
        (Small, Small, Small),
    ] {
        let mut line = format!("t{}_r{}_d{:<24}", t.label(), r.label(), d.label());
        for noise in NOISE_RATES {
            let setting = SynthSetting {
                tuples: t,
                attributes: r,
                domain: d,
                noise_rate: noise,
            };
            let mut f1s = Vec::new();
            for inst in 0..reps {
                let cfg = setting.to_config(500 + inst as u64);
                let data = generator::generate(&cfg);
                let fdx = Fdx::new(FdxConfig::default().for_noise_rate(noise));
                if let Ok(res) = fdx.discover(&data.noisy) {
                    f1s.push(edge_prf(&data.true_fds, &res.fds).f1);
                }
            }
            line.push_str(&format!("{:>8.3}", median(&f1s)));
        }
        println!("{line}");
    }
}
