//! Regenerates **Figure 3**: FDX's autoregression matrix on the Hospital
//! dataset (as a text heatmap) and the FDs it discovers.

use fdx_core::{render_autoregression_heatmap, Fdx, FdxConfig};
use fdx_synth::realworld;

fn main() {
    let rw = realworld::hospital(0);
    let result = Fdx::new(FdxConfig::default())
        .discover(&rw.data)
        .expect("hospital stand-in is well-formed");
    println!("Figure 3: FDX autoregression matrix for Hospital\n");
    println!(
        "{}",
        render_autoregression_heatmap(&result.autoregression, rw.data.schema())
    );
    println!("Discovered FDs:");
    print!("{}", result.fds.render(rw.data.schema()));
    println!("\nPlanted reference dependencies:");
    print!("{}", rw.planted.render(rw.data.schema()));
}
