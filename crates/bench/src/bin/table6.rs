//! Regenerates **Table 6**: runtime and number of discovered FDs of every
//! method on the real-world (stand-in) datasets with missing values.

use fdx_bench::lineup_default;
use fdx_eval::TextTable;
use fdx_synth::realworld;

fn main() {
    // Real-world noise is unknown a priori; the paper leaves error knobs at
    // their defaults here. A small nominal rate covers the missing values.
    let methods = lineup_default(0.02);
    let mut header: Vec<String> = vec!["Data set".into(), "".into()];
    header.extend(methods.iter().map(|m| m.name()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TextTable::new(&header_refs);

    for rw in realworld::all(0) {
        let mut time_row = vec![rw.name.to_string(), "time (sec)".to_string()];
        let mut fds_row = vec![String::new(), "# of FDs".to_string()];
        for m in &methods {
            let out = m.run(&rw.data);
            if out.skipped {
                time_row.push("-".to_string());
                fds_row.push("-".to_string());
            } else {
                time_row.push(format!("{:.2}", out.seconds));
                fds_row.push(out.fds.len().to_string());
            }
        }
        t.row(time_row);
        t.row(fds_row);
    }
    println!("Table 6: runtime and number of FDs on real-world stand-ins\n");
    print!("{}", t.render());
}
