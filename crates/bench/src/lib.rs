//! Shared plumbing for the per-table/figure experiment binaries.
//!
//! Every binary regenerates one table or figure of the paper
//! (`cargo run --release -p fdx-bench --bin <table4|fig2|…>`). Common knobs
//! are environment variables so the binaries stay argument-free:
//!
//! * `FDX_BENCH_INSTANCES` — instances per synthetic setting (default 3;
//!   the paper uses 5),
//! * `FDX_BENCH_ROWS` — sample size for the known-structure networks
//!   (default 2000),
//! * `FDX_BENCH_BUDGET` — per-method wall-clock budget in seconds
//!   (default 60).

use fdx_baselines::{PyroConfig, RfiConfig, TaneConfig};
use fdx_bayesnet::BayesNet;
use fdx_data::{Dataset, FdSet};
use fdx_eval::Method;

/// ε-violation rate used when sampling the benchmark networks: stands in
/// for the inherent randomness of the bnlearn default CPTs (the paper adds
/// no extra noise to these datasets).
pub const BN_EPSILON: f64 = 0.05;

/// Reads a `usize` knob from the environment.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads an `f64` knob from the environment.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Instances per synthetic setting.
pub fn instances() -> usize {
    env_usize("FDX_BENCH_INSTANCES", 3)
}

/// Rows sampled from each benchmark network.
pub fn bn_rows() -> usize {
    env_usize("FDX_BENCH_ROWS", 2_000)
}

/// Per-method time budget in seconds.
pub fn budget() -> f64 {
    env_f64("FDX_BENCH_BUDGET", 60.0)
}

/// The Table 4 method lineup with the shared time budget applied and every
/// error knob (including FDX's validation lift) tuned to the *cell flip*
/// noise rate — the protocol of the synthetic experiments (Figure 2).
pub fn lineup_for(noise: f64) -> Vec<Method> {
    budgeted_lineup()
        .into_iter()
        .map(|m| m.tuned_for_noise(noise))
        .collect()
}

/// The lineup for datasets without injected flip noise (benchmark networks,
/// real-world data): the lattice searches get their error budget set to the
/// expected violation rate (the paper's PYRO/TANE tuning), while FDX runs
/// with its defaults, exactly as in the paper's Tables 4–6.
pub fn lineup_default(search_error: f64) -> Vec<Method> {
    budgeted_lineup()
        .into_iter()
        .map(|m| match m {
            Method::Pyro(mut cfg) => {
                cfg.max_error = search_error.max(0.005);
                Method::Pyro(cfg)
            }
            Method::Tane(mut cfg) => {
                cfg.max_error = search_error.max(0.005);
                Method::Tane(cfg)
            }
            other => other,
        })
        .collect()
}

fn budgeted_lineup() -> Vec<Method> {
    let b = budget();
    Method::lineup()
        .into_iter()
        .map(|m| match m {
            Method::Pyro(cfg) => Method::Pyro(PyroConfig {
                max_seconds: b,
                ..cfg
            }),
            Method::Tane(cfg) => Method::Tane(TaneConfig {
                max_seconds: b,
                ..cfg
            }),
            Method::Rfi(cfg) => Method::Rfi(RfiConfig {
                max_seconds: b,
                ..cfg
            }),
            other => other,
        })
        .collect()
}

/// Samples a benchmark network with the standard ε and row knobs, returning
/// the instance and its ground truth.
pub fn bn_instance(net: &BayesNet, seed: u64) -> (Dataset, FdSet) {
    let noisy = net.clone().with_fd_epsilon(BN_EPSILON);
    let truth = noisy.true_fds();
    (noisy.sample(bn_rows(), seed), truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_knobs_have_defaults() {
        assert_eq!(env_usize("FDX_SURELY_UNSET_KNOB", 7), 7);
        assert_eq!(env_f64("FDX_SURELY_UNSET_KNOB", 1.5), 1.5);
    }

    #[test]
    fn lineup_has_eight_methods() {
        assert_eq!(lineup_for(0.05).len(), 8);
    }

    #[test]
    fn bn_instance_shapes() {
        let net = fdx_bayesnet::networks::cancer(0);
        let (ds, truth) = bn_instance(&net, 1);
        assert_eq!(ds.ncols(), 5);
        assert_eq!(truth.len(), 3);
    }
}
