//! Integration tests: full server lifecycle over real loopback sockets.
//!
//! Each test boots its own server on an ephemeral port and exercises one
//! robustness mechanism end-to-end: panic isolation, deadline propagation,
//! load shedding with client retry, graceful drain (clean and timed-out),
//! the shutdown frame, chaos opt-in, and the final metrics flush.
//!
//! The obs registry is process-global, so tests that assert on counters
//! serialize through [`serial`], which also resets the registry.

use fdx_serve::client::{exchange, send_line_with_retry, RetryPolicy};
use fdx_serve::{codes, shutdown_line, ChaosSpec, RequestFrame, Response, ServeConfig, Server};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::thread;
use std::time::Duration;

/// Serialize tests sharing the global obs registry; resets it on entry.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    fdx_obs::set_enabled(true);
    fdx_obs::Registry::global().reset();
    fdx_obs::journal::Journal::global().reset();
    guard
}

fn counter(snap: &fdx_obs::Snapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// 80 rows with clean FDs zip -> city -> state.
fn fd_csv() -> String {
    let mut csv = String::from("zip,city,state\n");
    for i in 0..80 {
        let z = i % 16;
        csv.push_str(&format!("z{z},c{},s{}\n", z / 2, z / 8));
    }
    csv
}

fn discover_frame(id: &str) -> RequestFrame {
    RequestFrame {
        id: id.to_string(),
        csv: fd_csv(),
        seed: Some(7),
        ..RequestFrame::default()
    }
}

fn send(addr: &str, frame: &RequestFrame) -> Response {
    let line = exchange(addr, &frame.to_line()).expect("exchange");
    Response::parse(&line).expect("parse reply")
}

fn chaos(point: &'static str) -> ChaosSpec {
    ChaosSpec {
        point,
        times: None,
        value: None,
    }
}

fn chaos_value(point: &'static str, value: f64) -> ChaosSpec {
    ChaosSpec {
        point,
        times: None,
        value: Some(value),
    }
}

#[test]
fn panicking_request_is_isolated_and_the_server_keeps_serving() {
    let _g = serial();
    let handle = Server::start(ServeConfig {
        threads: Some(1),
        chaos: true,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    let mut boom = discover_frame("boom");
    boom.chaos.push(chaos("serve.force_panic"));
    let resp = send(&addr, &boom);
    assert_eq!(resp.status, "error");
    assert!(resp.code_is(codes::PANIC), "{resp:?}");
    assert_eq!(resp.id, "boom");

    // The same (sole) worker thread answers the next request cleanly:
    // the worker survived the unwind and no fault leaked across requests.
    let resp = send(&addr, &discover_frame("after"));
    assert!(resp.is_ok(), "{resp:?}");
    assert_eq!(resp.degraded, Some(false));
    assert!(resp
        .fds
        .as_ref()
        .is_some_and(|fds| fds.iter().any(|fd| fd.contains("city"))));

    handle.shutdown();
    let report = handle.wait();
    assert_eq!(report.panics, 1);
    assert_eq!(report.completed, 2);
    assert_eq!(report.requests, 2);
    let snap = fdx_obs::Registry::global().snapshot();
    assert_eq!(counter(&snap, "fdx.serve.panics"), 1);
    assert_eq!(counter(&snap, "fdx.serve.completed"), 2);
}

#[test]
fn deadline_propagates_into_the_pipeline_budget_and_the_queue() {
    let _g = serial();
    let handle = Server::start(ServeConfig {
        threads: Some(1),
        chaos: true,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    // In-pipeline expiry: a huge clock skew makes the budget check trip
    // via the core BudgetExceeded path, surfaced as deadline_exceeded.
    let mut slow = discover_frame("slow");
    slow.deadline_ms = Some(60_000);
    slow.chaos.push(chaos_value("clock.skew", 1e6));
    let resp = send(&addr, &slow);
    assert!(resp.code_is(codes::DEADLINE_EXCEEDED), "{resp:?}");

    // In-queue expiry: a stalled worker makes the next request outlive its
    // deadline before it is ever scheduled.
    let mut stall = discover_frame("stall");
    stall.chaos.push(chaos_value("serve.stall", 0.4));
    let a = addr.clone();
    let stalled = thread::spawn(move || send(&a, &stall));
    thread::sleep(Duration::from_millis(100));
    let mut late = discover_frame("late");
    late.deadline_ms = Some(50);
    let resp = send(&addr, &late);
    assert!(resp.code_is(codes::DEADLINE_EXCEEDED), "{resp:?}");
    assert!(stalled.join().unwrap().is_ok());

    handle.shutdown();
    let report = handle.wait();
    assert_eq!(report.deadline_exceeded, 2);
    let snap = fdx_obs::Registry::global().snapshot();
    assert_eq!(counter(&snap, "fdx.serve.deadline_exceeded"), 2);
}

#[test]
fn full_queue_sheds_typed_overloaded_and_retry_succeeds_after_drain() {
    let _g = serial();
    let handle = Server::start(ServeConfig {
        threads: Some(1),
        queue_cap: 2,
        chaos: true,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    // Occupy the single worker long enough for the whole burst to land.
    let mut stall = discover_frame("stall");
    stall.chaos.push(chaos_value("serve.stall", 1.5));
    let a = addr.clone();
    let stalled = thread::spawn(move || send(&a, &stall));
    thread::sleep(Duration::from_millis(200));

    // 8 simultaneous requests against a cap-2 queue: exactly 2 queue up,
    // 6 are shed with a typed `overloaded` frame.
    let burst: Vec<_> = (0..8)
        .map(|i| {
            let a = addr.clone();
            thread::spawn(move || send(&a, &discover_frame(&format!("burst-{i}"))))
        })
        .collect();
    thread::sleep(Duration::from_millis(200));

    // A client retrying under deterministic backoff while the queue is
    // still full gets through once the stall ends and the queue drains.
    let retry = {
        let a = addr.clone();
        thread::spawn(move || {
            let policy = RetryPolicy {
                retries: 12,
                base_delay_ms: 100,
                max_delay_ms: 500,
            };
            send_line_with_retry(&a, &discover_frame("retry").to_line(), &policy)
        })
    };

    let replies: Vec<Response> = burst.into_iter().map(|j| j.join().unwrap()).collect();
    let overloaded = replies
        .iter()
        .filter(|r| r.code_is(codes::OVERLOADED))
        .count();
    let ok = replies.iter().filter(|r| r.is_ok()).count();
    assert_eq!(
        overloaded, 6,
        "queue cap 2 sheds exactly 6 of 8: {replies:?}"
    );
    assert_eq!(ok, 2, "{replies:?}");
    assert!(stalled.join().unwrap().is_ok());
    let retried = retry.join().unwrap().expect("retry exhausted");
    assert!(retried.is_ok(), "{retried:?}");

    handle.shutdown();
    let report = handle.wait();
    // 6 from the burst plus at least one overloaded answer to the
    // retrying client before the queue drained.
    assert!(report.shed >= 7, "{report:?}");
    let snap = fdx_obs::Registry::global().snapshot();
    assert_eq!(
        counter(&snap, "fdx.serve.shed"),
        report.shed,
        "every overloaded frame is counted"
    );
    assert_eq!(report.completed, 4, "stall + 2 queued + retry");
}

#[test]
fn graceful_drain_finishes_in_flight_work_and_stops_accepting() {
    let _g = serial();
    let handle = Server::start(ServeConfig {
        threads: Some(1),
        chaos: true,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    let mut inflight = discover_frame("inflight");
    inflight.chaos.push(chaos_value("serve.stall", 0.5));
    let a = addr.clone();
    let t = thread::spawn(move || send(&a, &inflight));
    thread::sleep(Duration::from_millis(150));

    handle.shutdown();
    let report = handle.wait();
    let resp = t.join().unwrap();
    assert!(resp.is_ok(), "in-flight request completed: {resp:?}");
    assert!(!report.drain_timed_out);
    assert_eq!(report.completed, 1);
    assert_eq!(report.abandoned, 0);

    // The acceptor is gone: new connections are refused or answered never.
    assert!(exchange(&addr, &discover_frame("late").to_line()).is_err());
}

#[test]
fn drain_timeout_abandons_queued_requests_with_typed_frames() {
    let _g = serial();
    let handle = Server::start(ServeConfig {
        threads: Some(1),
        chaos: true,
        drain_timeout_secs: 0.05,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    let mut inflight = discover_frame("inflight");
    inflight.chaos.push(chaos_value("serve.stall", 0.6));
    let a = addr.clone();
    let t1 = thread::spawn(move || send(&a, &inflight));
    thread::sleep(Duration::from_millis(150));
    let a = addr.clone();
    let t2 = thread::spawn(move || send(&a, &discover_frame("queued")));
    thread::sleep(Duration::from_millis(100));

    handle.shutdown();
    let report = handle.wait();
    assert!(report.drain_timed_out, "{report:?}");
    assert_eq!(report.abandoned, 1, "{report:?}");

    // The queued request was answered with a typed frame at the timeout,
    // not dropped on the floor.
    let r2 = t2.join().unwrap();
    assert!(r2.code_is(codes::SHUTTING_DOWN), "{r2:?}");
    // The detached in-flight worker still answers its request late.
    let r1 = t1.join().unwrap();
    assert!(r1.is_ok(), "{r1:?}");
}

#[test]
fn shutdown_frame_acks_drains_and_reports() {
    let _g = serial();
    let handle = Server::start(ServeConfig {
        threads: Some(1),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    let resp = send(&addr, &discover_frame("one"));
    assert!(resp.is_ok(), "{resp:?}");

    let ack = Response::parse(&exchange(&addr, &shutdown_line("ops-1")).unwrap()).unwrap();
    assert!(ack.is_ok());
    assert_eq!(ack.id, "ops-1");

    let report = handle.wait();
    assert_eq!(report.completed, 1);
    assert!(!report.drain_timed_out);
    assert!(exchange(&addr, "{}").is_err(), "acceptor stopped");
}

#[test]
fn chaos_requires_server_opt_in() {
    let _g = serial();
    let handle = Server::start(ServeConfig::default()).expect("bind");
    let addr = handle.addr().to_string();

    let mut f = discover_frame("c");
    f.chaos.push(chaos("serve.force_panic"));
    let resp = send(&addr, &f);
    assert!(resp.code_is(codes::BAD_REQUEST), "{resp:?}");
    assert!(resp.detail.as_deref().unwrap_or("").contains("--chaos"));

    handle.shutdown();
    let report = handle.wait();
    assert_eq!(report.bad_frames, 1);
    assert_eq!(report.requests, 0, "rejected before the queue");
}

#[test]
fn malformed_frame_over_the_wire_gets_typed_bad_request() {
    let _g = serial();
    let handle = Server::start(ServeConfig::default()).expect("bind");
    let addr = handle.addr().to_string();

    let r = Response::parse(&exchange(&addr, "this is not json").unwrap()).unwrap();
    assert!(r.code_is(codes::BAD_REQUEST), "{r:?}");
    let r = Response::parse(&exchange(&addr, r#"{"csv":"a\n","bogus":1}"#).unwrap()).unwrap();
    assert!(r.code_is(codes::BAD_REQUEST), "{r:?}");

    handle.shutdown();
    let report = handle.wait();
    assert_eq!(report.bad_frames, 2);
}

/// Acceptance criterion: a `stats` request against a fully busy server —
/// sole worker stalled, queue holding two more requests — is answered on
/// the accept thread within 100 ms and reports accurate inflight and
/// queue-depth figures.
#[test]
fn stats_answers_under_100ms_while_workers_are_saturated() {
    let _g = serial();
    let handle = Server::start(ServeConfig {
        threads: Some(1),
        queue_cap: 4,
        chaos: true,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    // Pin the only worker for 1.5s, then land two requests in the queue.
    let mut stall = discover_frame("stall");
    stall.chaos.push(chaos_value("serve.stall", 1.5));
    let a = addr.clone();
    let stalled = thread::spawn(move || send(&a, &stall));
    thread::sleep(Duration::from_millis(300));
    let queued: Vec<_> = (0..2)
        .map(|i| {
            let a = addr.clone();
            thread::spawn(move || send(&a, &discover_frame(&format!("queued-{i}"))))
        })
        .collect();
    thread::sleep(Duration::from_millis(200));

    let watch = fdx_obs::Stopwatch::start();
    let stats = fdx_serve::stats_request(&addr, "live", None, &fdx_serve::RetryPolicy::none())
        .expect("stats reply");
    let elapsed = watch.elapsed_secs();
    assert!(
        elapsed < 0.1,
        "stats took {elapsed:.3}s against a saturated server"
    );
    assert!(stats.is_ok(), "{stats:?}");
    assert_eq!(stats.raw.get("workers").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(stats.raw.get("inflight").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(
        stats.raw.get("queue_depth").and_then(|v| v.as_u64()),
        Some(2),
        "{}",
        stats.line
    );
    assert_eq!(stats.raw.get("queue_cap").and_then(|v| v.as_u64()), Some(4));

    assert!(stalled.join().unwrap().is_ok());
    for j in queued {
        assert!(j.join().unwrap().is_ok());
    }
    handle.shutdown();
    let report = handle.wait();
    assert_eq!(report.stats_requests, 1);
    assert_eq!(report.requests, 3, "stats is not a discovery request");
    assert_eq!(report.completed, 3);
}

fn phase_names(nodes: &[fdx_obs::PhaseNode]) -> Vec<String> {
    let mut out = Vec::new();
    for n in nodes {
        out.push(n.name.clone());
        out.extend(phase_names(&n.children));
    }
    out
}

/// Acceptance criterion: a `"trace": true` reply embeds the phase waterfall
/// and its root total agrees with the reply's `total_secs` scalar; the FD
/// set and trace structure are identical across request thread counts.
#[test]
fn trace_reply_waterfall_matches_total_and_is_thread_stable() {
    let _g = serial();
    let handle = Server::start(ServeConfig {
        threads: Some(2),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    let mut replies = Vec::new();
    for threads in [1usize, 4] {
        let mut f = discover_frame(&format!("trace-{threads}"));
        f.trace = true;
        f.threads = Some(threads);
        let resp = send(&addr, &f);
        assert!(resp.is_ok(), "{resp:?}");
        let total = resp.total_secs.expect("total_secs in traced reply");
        let trace = resp.trace.clone().expect("trace in traced reply");
        let root = trace
            .iter()
            .find(|n| n.name == "fdx.discover")
            .expect("fdx.discover root span");
        assert!(
            (root.secs - total).abs() < 0.05 + 0.25 * total,
            "trace root {:.4}s vs total_secs {:.4}s",
            root.secs,
            total
        );
        let children: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
        assert!(children.contains(&"fdx.transform"), "{children:?}");
        assert!(children.contains(&"fdx.structure"), "{children:?}");
        let nested = phase_names(&root.children);
        assert!(
            nested.iter().any(|n| n == "fdx.glasso"),
            "glasso span nests under structure: {nested:?}"
        );
        replies.push(resp);
    }

    // Bit-stability across request thread counts: identical FDs, identical
    // phase-tree structure (wall-clock seconds may of course differ).
    let (r1, r4) = (&replies[0], &replies[1]);
    assert_eq!(r1.fds, r4.fds, "FD set must be thread-count invariant");
    let t1 = r1.trace.as_ref().map(|t| phase_names(t));
    let t4 = r4.trace.as_ref().map(|t| phase_names(t));
    assert_eq!(t1, t4, "trace structure must be thread-count invariant");

    // An untraced request does not pay for (or leak) a waterfall.
    let resp = send(&addr, &discover_frame("untraced"));
    assert!(resp.is_ok(), "{resp:?}");
    assert!(resp.trace.is_none(), "{}", resp.line);

    handle.shutdown();
    handle.wait();
}

/// Acceptance: the journal visible through `stats` agrees with the file
/// flushed at drain, and live snapshot counters match the flushed metrics.
#[test]
fn stats_snapshot_and_journal_agree_with_drain_flush() {
    let _g = serial();
    let dir = std::env::temp_dir().join(format!("fdx-serve-introspect-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let metrics_path = dir.join("metrics.jsonl");
    let journal_path = dir.join("journal.jsonl");

    let handle = Server::start(ServeConfig {
        threads: Some(1),
        metrics_path: Some(metrics_path.clone()),
        journal_path: Some(journal_path.clone()),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();

    assert!(send(&addr, &discover_frame("a")).is_ok());
    assert!(send(&addr, &discover_frame("b")).is_ok());
    let mut bad = discover_frame("bad");
    bad.csv = "zip\n".to_string(); // single-column: discovery cannot run
    let bad_resp = send(&addr, &bad);
    assert!(!bad_resp.is_ok(), "{bad_resp:?}");

    let stats = fdx_serve::stats_request(&addr, "s", Some(16), &fdx_serve::RetryPolicy::none())
        .expect("stats");
    let counters = stats.raw.get("counters").expect("counters object").clone();
    let completed_live = counters
        .get("fdx.serve.completed")
        .and_then(|v| v.as_u64())
        .expect("completed counter");
    assert_eq!(completed_live, 3, "{}", stats.line);
    let journal = stats.raw.get("journal").and_then(|j| j.as_arr()).unwrap();
    assert_eq!(journal.len(), 3, "{}", stats.line);
    let outcomes: Vec<&str> = journal
        .iter()
        .filter_map(|e| e.get("outcome").and_then(|o| o.as_str()))
        .collect();
    assert_eq!(outcomes.iter().filter(|o| **o == "ok").count(), 2);
    assert_eq!(outcomes.iter().filter(|o| **o != "ok").count(), 1);

    handle.shutdown();
    let report = handle.wait();
    assert_eq!(report.completed, 3);

    // The drain-time metrics flush reports exactly the counters the live
    // snapshot showed (nothing ran in between).
    let text = std::fs::read_to_string(&metrics_path).unwrap();
    assert!(
        text.contains(r#""name":"fdx.serve.completed","value":3"#),
        "{text}"
    );
    // The journal flush holds the same three entries, oldest first.
    let jtext = std::fs::read_to_string(&journal_path).unwrap();
    let ids: Vec<String> = jtext
        .lines()
        .map(|l| {
            fdx_serve::json::parse(l)
                .expect("journal line parses")
                .get("id")
                .and_then(|v| v.as_str())
                .unwrap_or_default()
                .to_string()
        })
        .collect();
    assert_eq!(ids, vec!["a", "b", "bad"], "{jtext}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn final_metrics_snapshot_is_flushed_atomically_on_drain() {
    let _g = serial();
    let dir = std::env::temp_dir().join(format!("fdx-serve-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("serve.jsonl");
    // Partial write from a "previous crashed run" must be replaced whole.
    std::fs::write(&path, "{\"kind\":\"cou").unwrap();

    let handle = Server::start(ServeConfig {
        threads: Some(1),
        metrics_path: Some(path.clone()),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();
    assert!(send(&addr, &discover_frame("m")).is_ok());
    handle.shutdown();
    let report = handle.wait();
    assert_eq!(report.completed, 1);

    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("\"fdx.serve.requests\""), "{text}");
    assert!(text.contains("\"fdx.serve.completed\""), "{text}");
    for line in text.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
