//! Minimal recursive-descent JSON reader for the serve wire protocol.
//!
//! `fdx_obs::json` only *writes* JSON; the server must also *read*
//! untrusted request frames off a socket. This parser is deliberately
//! strict (no trailing garbage, no NaN/Inf literals) and bounded: nesting
//! deeper than [`MAX_DEPTH`] is rejected with a typed error rather than
//! recursing toward a stack overflow, which matters because the frame
//! parser sits outside the per-request `catch_unwind` boundary.

use std::fmt;

/// Maximum nesting depth accepted before a frame is rejected. Legitimate
/// request frames nest three levels at most.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Object keys keep insertion order; duplicate keys
/// keep the last occurrence on lookup, matching common JSON semantics.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

/// Parse failure with a byte offset into the input, for `bad_request`
/// details that point at the offending spot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid json at byte {}: {}", self.offset, self.msg)
    }
}

impl JsonValue {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integral numbers only: rejects fractional or out-of-range values.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // fdx-allow: L002 integral-ness of a frame field is an exact property, not a tolerance question
            JsonValue::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Object field lookup; last duplicate wins.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.consume(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\u` + low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    if self.peek() != Some(b'u') {
                                        return Err(self.err("expected low surrogate"));
                                    }
                                    self.pos += 1;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c).ok_or_else(|| self.err("invalid code point"))
                                } else {
                                    Err(self.err("lone high surrogate"))
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                Err(self.err("lone low surrogate"))
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))
                            }?;
                            out.push(ch);
                            // hex4 leaves pos on the byte after the last
                            // hex digit; skip the outer increment below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar. The input is a &str, so byte
                    // boundaries are valid; find the char at this offset.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8"))?
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unexpected end of input"))?;
                    out.push(s);
                    self.pos += s.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digit"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected digit after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected digit in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("unparseable number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(JsonValue::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("3.5").unwrap(), JsonValue::Num(3.5));
        assert_eq!(parse("-2e3").unwrap(), JsonValue::Num(-2000.0));
        assert_eq!(parse("\"hi\"").unwrap(), JsonValue::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&JsonValue::Null));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = parse(r#""a\n\t\"\\\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\A\u{e9}"));
    }

    #[test]
    fn surrogate_pair_decodes() {
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} x").is_err());
        assert!(parse("{,}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("01e").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn depth_limit_rejects_instead_of_overflowing() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.msg.contains("nesting too deep"), "{err}");
        // At the limit itself, parsing still succeeds.
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn integral_accessor_rejects_fractions() {
        assert_eq!(parse("5").unwrap().as_u64(), Some(5));
        assert_eq!(parse("5.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}
