//! Client side of the serve protocol, with a deterministic retry policy.
//!
//! The backoff schedule is seedless and fixed — `base × 2^attempt`, no
//! jitter — so `fdx request` behaves identically run-to-run, matching the
//! workspace-wide determinism contract. Retries fire on connect failures
//! and on typed `overloaded` rejections; every other reply (including
//! typed errors) is returned to the caller on the first attempt.
//!
//! Idempotent frames — `stats`, session ops (`upload`/`open`/`close` are
//! content-addressed), and discovers that reference a dataset handle —
//! may additionally be retried when the connection resets mid-exchange
//! ([`send_idempotent_line`]), which is what makes a server restart
//! invisible to scripted session sweeps.

use crate::protocol::{codes, FrameError, RequestFrame, Response};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

/// Retry policy for [`request`]. The defaults give five retries spaced
/// 25, 50, 100, 200, 400 ms — under a second of total waiting.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (total attempts = retries + 1).
    pub retries: u32,
    /// First backoff delay; doubles each retry.
    pub base_delay_ms: u64,
    /// Ceiling on a single backoff delay.
    pub max_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            retries: 5,
            base_delay_ms: 25,
            max_delay_ms: 1000,
        }
    }
}

impl RetryPolicy {
    /// No retries: one attempt, fail fast.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            retries: 0,
            base_delay_ms: 0,
            max_delay_ms: 0,
        }
    }

    /// The deterministic delay before retry `attempt` (0-based).
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let shift = attempt.min(20);
        (self.base_delay_ms.saturating_mul(1u64 << shift)).min(self.max_delay_ms)
    }
}

/// Client failure after retries are exhausted.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect (after retries).
    Connect(io::Error),
    /// Connected but the exchange failed mid-flight.
    Io(io::Error),
    /// The server closed without sending a reply line.
    EmptyReply,
    /// The reply line did not parse as a protocol response.
    BadReply(FrameError),
    /// Every attempt was answered `overloaded`.
    Overloaded { attempts: u32 },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect failed: {e}"),
            ClientError::Io(e) => write!(f, "request i/o failed: {e}"),
            ClientError::EmptyReply => write!(f, "server closed the connection without a reply"),
            ClientError::BadReply(e) => write!(f, "unparseable reply: {e}"),
            ClientError::Overloaded { attempts } => {
                write!(f, "server overloaded after {attempts} attempts")
            }
        }
    }
}

/// One raw exchange: connect, send `line` + newline, read one reply line.
pub fn exchange(addr: &str, line: &str) -> Result<String, ClientError> {
    let mut stream = TcpStream::connect(addr).map_err(ClientError::Connect)?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(ClientError::Io)?;
    let _ = stream.set_nodelay(true);
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .map_err(ClientError::Io)?;
    let mut reply = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        let n = stream.read(&mut chunk).map_err(ClientError::Io)?;
        if n == 0 {
            break;
        }
        if let Some(pos) = chunk[..n].iter().position(|b| *b == b'\n') {
            reply.extend_from_slice(&chunk[..pos]);
            break;
        }
        reply.extend_from_slice(&chunk[..n]);
    }
    if reply.is_empty() {
        return Err(ClientError::EmptyReply);
    }
    String::from_utf8(reply).map_err(|_| {
        ClientError::BadReply(FrameError {
            detail: "reply is not valid utf-8".to_string(),
        })
    })
}

/// Send a discover request, retrying on connect failures and `overloaded`
/// rejections under the policy's fixed backoff schedule.
pub fn request(
    addr: &str,
    frame: &RequestFrame,
    policy: &RetryPolicy,
) -> Result<Response, ClientError> {
    send_line_with_retry(addr, &frame.to_line(), policy)
}

/// Send a `stats` probe. Stats never mutates server state, so it is safe
/// to retry across dropped connections — pass [`RetryPolicy::none`] when
/// the probe is a liveness check and a missed answer is itself the signal.
pub fn stats_request(
    addr: &str,
    id: &str,
    journal: Option<u64>,
    policy: &RetryPolicy,
) -> Result<Response, ClientError> {
    send_idempotent_line(addr, &crate::protocol::stats_line(id, journal), policy)
}

/// Like [`request`] but for an arbitrary pre-serialized frame line.
pub fn send_line_with_retry(
    addr: &str,
    line: &str,
    policy: &RetryPolicy,
) -> Result<Response, ClientError> {
    send_with_retry(addr, line, policy, false)
}

/// Send a pre-serialized frame line, additionally retrying when the
/// connection drops mid-exchange (reset, EOF before the reply line).
///
/// Only safe for **idempotent** frames: `stats`, session ops (`upload` is
/// content-addressed, `open`/`close` converge to the same state on
/// replay), and discover requests that name a `dataset` handle (the
/// result cache makes the rerun byte-identical). A `csv`/`path` discover
/// without a handle re-runs the full pipeline on retry, so it stays on
/// [`send_line_with_retry`]'s narrower schedule.
pub fn send_idempotent_line(
    addr: &str,
    line: &str,
    policy: &RetryPolicy,
) -> Result<Response, ClientError> {
    send_with_retry(addr, line, policy, true)
}

fn send_with_retry(
    addr: &str,
    line: &str,
    policy: &RetryPolicy,
    retry_dropped: bool,
) -> Result<Response, ClientError> {
    let mut attempt = 0u32;
    loop {
        match exchange(addr, line) {
            Ok(reply_line) => {
                let resp = Response::parse(&reply_line).map_err(ClientError::BadReply)?;
                if resp.code_is(codes::OVERLOADED) && attempt < policy.retries {
                    thread::sleep(Duration::from_millis(policy.delay_ms(attempt)));
                    attempt += 1;
                    continue;
                }
                if resp.code_is(codes::OVERLOADED) {
                    return Err(ClientError::Overloaded {
                        attempts: attempt + 1,
                    });
                }
                return Ok(resp);
            }
            Err(ClientError::Connect(e)) if attempt < policy.retries => {
                let _ = e;
                thread::sleep(Duration::from_millis(policy.delay_ms(attempt)));
                attempt += 1;
            }
            Err(ClientError::Io(e)) if retry_dropped && attempt < policy.retries => {
                let _ = e;
                thread::sleep(Duration::from_millis(policy.delay_ms(attempt)));
                attempt += 1;
            }
            Err(ClientError::EmptyReply) if retry_dropped && attempt < policy.retries => {
                thread::sleep(Duration::from_millis(policy.delay_ms(attempt)));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_fixed_and_capped() {
        let p = RetryPolicy::default();
        let delays: Vec<u64> = (0..6).map(|a| p.delay_ms(a)).collect();
        assert_eq!(delays, vec![25, 50, 100, 200, 400, 800]);
        assert_eq!(p.delay_ms(10), 1000, "capped at max_delay_ms");
        // Deterministic: same schedule every time.
        assert_eq!(delays, (0..6).map(|a| p.delay_ms(a)).collect::<Vec<_>>());
    }

    #[test]
    fn connect_to_dead_port_errors_after_retries() {
        // Bind-then-drop gives a port that refuses connections.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let policy = RetryPolicy {
            retries: 2,
            base_delay_ms: 1,
            max_delay_ms: 4,
        };
        let err = send_line_with_retry(&format!("127.0.0.1:{port}"), "{}", &policy).unwrap_err();
        assert!(matches!(err, ClientError::Connect(_)), "{err}");
    }

    /// A scripted server that drops the first connection without a reply
    /// and answers the second: idempotent sends ride through the reset,
    /// non-idempotent sends surface it.
    #[test]
    fn idempotent_send_survives_a_dropped_connection() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = format!("{}", listener.local_addr().unwrap());
        let script = std::thread::spawn(move || {
            // First connection: read the frame, then close with no reply.
            let (first, _) = listener.accept().unwrap();
            let mut line = String::new();
            BufReader::new(&first).read_line(&mut line).unwrap();
            drop(first);
            // Second connection: answer properly.
            let (mut second, _) = listener.accept().unwrap();
            let mut line = String::new();
            BufReader::new(&second).read_line(&mut line).unwrap();
            second
                .write_all(b"{\"id\":\"r1\",\"status\":\"ok\",\"stats\":{\"requests\":0,\"completed\":0,\"panics\":0,\"shed\":0,\"deadline_exceeded\":0,\"abandoned\":0,\"bad_frames\":0,\"stats_requests\":0,\"queue_depth\":0,\"workers\":1,\"uptime_secs\":0.0}}\n")
                .unwrap();
        });
        let policy = RetryPolicy {
            retries: 3,
            base_delay_ms: 1,
            max_delay_ms: 4,
        };
        let resp = stats_request(&addr, "r1", None, &policy).expect("retry across the reset");
        assert_eq!(resp.id, "r1");
        script.join().unwrap();
    }

    #[test]
    fn non_idempotent_send_surfaces_a_dropped_connection() {
        use std::io::{BufRead, BufReader};
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = format!("{}", listener.local_addr().unwrap());
        let script = std::thread::spawn(move || {
            let (first, _) = listener.accept().unwrap();
            let mut line = String::new();
            BufReader::new(&first).read_line(&mut line).unwrap();
            drop(first);
        });
        let policy = RetryPolicy {
            retries: 3,
            base_delay_ms: 1,
            max_delay_ms: 4,
        };
        let err = send_line_with_retry(&addr, "{}", &policy).unwrap_err();
        assert!(
            matches!(err, ClientError::EmptyReply | ClientError::Io(_)),
            "{err}"
        );
        script.join().unwrap();
    }
}
