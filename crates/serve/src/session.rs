//! Crash-safe multi-tenant dataset sessions: the content-addressed handle
//! registry, the LRU-bounded resident set, the on-disk snapshot store, and
//! the discovery-result cache.
//!
//! A client uploads a dataset once (`op: "upload"`) and gets back its
//! *content hash* as a 16-hex-digit handle; subsequent discover requests
//! reference the handle instead of re-sending (and re-parsing) the CSV.
//! The store is layered:
//!
//! * **Resident set** — decoded [`Dataset`]s under `Arc`, bounded by a byte
//!   budget and evicted in strict least-recently-used order. Eviction is
//!   deterministic: the logical access clock is a counter, not wall time.
//! * **Snapshot store** — when a `--session-dir` is configured, every
//!   upload and every cacheable result is persisted as a checksummed
//!   `fdx_data::snapshot` record via `write_atomic_bytes`, so a crash
//!   leaves whole records or nothing. The startup [`SessionStore::new`]
//!   recovery scan rehydrates valid records bit-identically and moves any
//!   torn/corrupt/truncated file into `quarantine/` with a typed reason —
//!   never a panic.
//! * **Result cache** — completed, non-degraded discover results keyed by
//!   `(dataset hash, config fingerprint)`. A hit replays the stored reply
//!   core byte-for-byte. Entries also carry the converged glasso iterate,
//!   which [`SessionStore::warm_start_for`] hands to nearby-λ requests on
//!   the same dataset ([`fdx_core::FdxConfig::glasso_warm_start`]). The
//!   warm start is always derived from *persisted* cache state under a
//!   deterministic nearest-λ rule, so a crashed-and-recovered server makes
//!   the same choices — and therefore serves the same bytes — as one that
//!   never crashed.
//!
//! Fault points (`session.torn_write`, `session.corrupt_crc`,
//! `session.disk_full`, `session.evict_during_open`,
//! `session.partial_upload`) let tests drive every failure path through
//! the same code paths real faults would take.

use fdx_core::{FdxConfig, WarmStart};
use fdx_data::snapshot::{
    self, content_hash, decode_dataset, decode_record, encode_dataset, encode_record, handle_hex,
    SnapshotError, KIND_DATASET, KIND_RESULT,
};
use fdx_data::{read_csv_str, Dataset};
use fdx_obs::{counter_add, faults, gauge_set, write_atomic_bytes};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Default resident-set byte budget when none is configured: 256 MiB of
/// encoded dataset payloads.
pub const DEFAULT_SESSION_BUDGET: u64 = 256 * 1024 * 1024;

/// Session-layer configuration, mapped from `fdx serve --session-*` flags.
#[derive(Debug, Clone, Default)]
pub struct SessionConfig {
    /// Snapshot directory. `None` keeps sessions memory-only (they die
    /// with the process but all ops still work).
    pub dir: Option<PathBuf>,
    /// Resident-set byte budget ([`DEFAULT_SESSION_BUDGET`] when `None`).
    pub budget: Option<u64>,
}

/// Typed session-layer failure; every variant maps to a protocol error
/// code in the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The handle names no known dataset (never uploaded, or its snapshot
    /// was quarantined).
    NotFound {
        /// The handle as received.
        handle: String,
    },
    /// The snapshot store could not persist a record (no space, or the
    /// injected `session.disk_full` fault). No partial state is left.
    DiskFull {
        /// What failed.
        detail: String,
    },
    /// The upload was incomplete or unparseable; nothing was stored.
    Upload {
        /// What failed.
        detail: String,
    },
    /// A snapshot failed to decode at open time; the file was quarantined
    /// and the handle forgotten.
    Corrupt {
        /// Stable reason slug from [`SnapshotError::reason`].
        reason: &'static str,
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::NotFound { handle } => write!(f, "unknown dataset handle {handle:?}"),
            SessionError::DiskFull { detail } => write!(f, "snapshot store is full: {detail}"),
            SessionError::Upload { detail } => write!(f, "upload failed: {detail}"),
            SessionError::Corrupt { reason, detail } => {
                write!(f, "snapshot quarantined ({reason}): {detail}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// What an upload produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UploadOutcome {
    /// Content-hash handle of the dataset.
    pub handle: u64,
    /// Canonical encoded payload size in bytes (the unit the resident
    /// budget is charged in).
    pub bytes: u64,
    /// Whether the dataset was already known (same content hash).
    pub deduped: bool,
}

/// What an open produced.
#[derive(Debug, Clone)]
pub struct OpenOutcome {
    /// The dataset, shared with the resident set.
    pub dataset: Arc<Dataset>,
    /// `"resident"` when served from memory, `"disk"` when rehydrated
    /// from a snapshot record.
    pub source: &'static str,
}

/// One cached discovery result.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// Dataset content hash the result was computed on.
    pub handle: u64,
    /// Full config fingerprint (every result-affecting knob).
    pub fingerprint: u64,
    /// Fingerprint with λ masked out — the warm-start compatibility key.
    pub base_fingerprint: u64,
    /// The λ (sparsity) the result was computed at.
    pub lambda: f64,
    /// The reply's result core (`protocol::result_core`), replayed
    /// byte-for-byte on a cache hit.
    pub core: String,
    /// Converged glasso iterate, when the run ended on a glasso rung.
    pub warm: Option<WarmStart>,
}

/// One quarantined snapshot from a recovery scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedSnapshot {
    /// File name (not path) of the offending snapshot.
    pub file: String,
    /// Stable typed reason (e.g. `"truncated"`, `"bad_crc"`).
    pub reason: String,
}

/// Outcome of the startup recovery scan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Dataset snapshots registered (rehydrated lazily on open).
    pub datasets: usize,
    /// Result-cache entries rehydrated into memory.
    pub results: usize,
    /// Snapshots moved to `quarantine/`, with typed reasons.
    pub quarantined: Vec<QuarantinedSnapshot>,
}

struct Resident {
    dataset: Arc<Dataset>,
    bytes: u64,
    last_access: u64,
}

#[derive(Default)]
struct Inner {
    resident: BTreeMap<u64, Resident>,
    /// Handles with a (believed-)valid snapshot record on disk.
    on_disk: std::collections::BTreeSet<u64>,
    results: BTreeMap<(u64, u64), Arc<CachedResult>>,
    clock: u64,
    resident_bytes: u64,
}

/// The session store. One per server; all methods are `&self` and
/// internally synchronized.
pub struct SessionStore {
    dir: Option<PathBuf>,
    budget: u64,
    inner: Mutex<Inner>,
}

fn dataset_file(handle: u64) -> String {
    format!("ds-{}.snap", handle_hex(handle))
}

fn result_file(handle: u64, fingerprint: u64) -> String {
    format!("rc-{}-{}.snap", handle_hex(handle), handle_hex(fingerprint))
}

impl SessionStore {
    /// Create the store and, when a directory is configured, run the
    /// recovery scan over it (creating it if absent).
    pub fn new(cfg: &SessionConfig) -> (SessionStore, RecoveryReport) {
        let store = SessionStore {
            dir: cfg.dir.clone(),
            budget: cfg.budget.unwrap_or(DEFAULT_SESSION_BUDGET).max(1),
            inner: Mutex::new(Inner::default()),
        };
        let report = match &store.dir {
            Some(dir) => store.recover(dir),
            None => RecoveryReport::default(),
        };
        store.publish_resident_gauge();
        (store, report)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Maps and counters stay coherent across an unwind.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn publish_resident_gauge(&self) {
        let bytes = self.lock().resident_bytes;
        gauge_set("fdx.session.resident_bytes", bytes as f64);
    }

    /// Persist one snapshot record under the session directory. The
    /// `session.disk_full` fault fails it with no partial state; the
    /// `session.torn_write` / `session.corrupt_crc` faults damage the
    /// bytes *before* the atomic write — modeling storage that lied about
    /// durability — so only the recovery scan can notice.
    fn persist(&self, file: &str, kind: u16, payload: &[u8]) -> Result<(), SessionError> {
        let Some(dir) = &self.dir else {
            return Ok(());
        };
        if faults::fire("session.disk_full") {
            return Err(SessionError::DiskFull {
                detail: "injected fault: session.disk_full".to_string(),
            });
        }
        let mut record = encode_record(kind, payload);
        if faults::fire("session.torn_write") {
            record.truncate(record.len() / 2);
        }
        if faults::fire("session.corrupt_crc") {
            let mid = record.len() / 2;
            record[mid] ^= 0x01;
        }
        write_atomic_bytes(&dir.join(file), &record).map_err(|e| SessionError::DiskFull {
            detail: format!("{file}: {e}"),
        })?;
        counter_add("fdx.snapshot.writes", 1);
        Ok(())
    }

    /// Upload a CSV body: parse, canonically encode, content-hash, persist
    /// the snapshot, and admit the dataset to the resident set.
    pub fn upload(&self, csv: &str) -> Result<UploadOutcome, SessionError> {
        if faults::fire("session.partial_upload") {
            return Err(SessionError::Upload {
                detail: "injected fault: connection dropped mid-upload".to_string(),
            });
        }
        let dataset = read_csv_str(csv).map_err(|e| SessionError::Upload {
            detail: format!("csv: {e}"),
        })?;
        let payload = encode_dataset(&dataset);
        let handle = content_hash(&payload);
        let bytes = payload.len() as u64;

        let deduped = {
            let inner = self.lock();
            inner.resident.contains_key(&handle) || inner.on_disk.contains(&handle)
        };
        if !deduped {
            // Persist before registering: a typed persist failure must
            // leave no trace of the handle.
            self.persist(&dataset_file(handle), KIND_DATASET, &payload)?;
        }
        {
            let mut inner = self.lock();
            if self.dir.is_some() {
                inner.on_disk.insert(handle);
            }
            Self::touch_resident(&mut inner, handle, || (Arc::new(dataset), bytes));
            self.evict_over_budget(&mut inner);
        }
        self.publish_resident_gauge();
        counter_add("fdx.session.uploads", 1);
        Ok(UploadOutcome {
            handle,
            bytes,
            deduped,
        })
    }

    /// Insert-or-touch a resident entry under the logical access clock.
    fn touch_resident<F>(inner: &mut Inner, handle: u64, make: F)
    where
        F: FnOnce() -> (Arc<Dataset>, u64),
    {
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(r) = inner.resident.get_mut(&handle) {
            r.last_access = clock;
            return;
        }
        let (dataset, bytes) = make();
        inner.resident_bytes += bytes;
        inner.resident.insert(
            handle,
            Resident {
                dataset,
                bytes,
                last_access: clock,
            },
        );
    }

    /// Evict least-recently-used residents until the byte budget holds.
    /// The newest entry always survives, even when it alone exceeds the
    /// budget — evicting it would make the dataset unusable.
    fn evict_over_budget(&self, inner: &mut Inner) {
        while inner.resident_bytes > self.budget && inner.resident.len() > 1 {
            let Some(victim) = inner
                .resident
                .iter()
                .min_by_key(|(_, r)| r.last_access)
                .map(|(h, _)| *h)
            else {
                break;
            };
            if let Some(r) = inner.resident.remove(&victim) {
                inner.resident_bytes -= r.bytes;
                counter_add("fdx.session.evictions", 1);
            }
        }
    }

    /// Open a dataset by handle: resident hit, or rehydrate bit-identically
    /// from its snapshot record. A snapshot that fails to decode is
    /// quarantined on the spot and the open fails with a typed error.
    pub fn open(&self, handle: u64) -> Result<OpenOutcome, SessionError> {
        if faults::fire("session.evict_during_open") {
            let mut inner = self.lock();
            if let Some(r) = inner.resident.remove(&handle) {
                inner.resident_bytes -= r.bytes;
                counter_add("fdx.session.evictions", 1);
            }
        }
        {
            let mut inner = self.lock();
            if inner.resident.contains_key(&handle) {
                Self::touch_resident(&mut inner, handle, || unreachable!());
                let dataset = Arc::clone(&inner.resident[&handle].dataset);
                counter_add("fdx.session.opens", 1);
                return Ok(OpenOutcome {
                    dataset,
                    source: "resident",
                });
            }
            if !inner.on_disk.contains(&handle) {
                return Err(SessionError::NotFound {
                    handle: handle_hex(handle),
                });
            }
        }
        // Rehydrate outside the lock: disk I/O and decode are slow.
        let dir = self.dir.as_ref().cloned().ok_or(SessionError::NotFound {
            handle: handle_hex(handle),
        })?;
        let file = dataset_file(handle);
        let (dataset, bytes) = match self.read_dataset_snapshot(&dir, &file, handle) {
            Ok(pair) => pair,
            Err(err) => {
                // The snapshot is unusable: quarantine it and forget the
                // handle so clients get `not found` (not repeated decode
                // failures) until a fresh upload.
                self.quarantine(&dir, &file, err.reason());
                self.lock().on_disk.remove(&handle);
                return Err(SessionError::Corrupt {
                    reason: err.reason(),
                    detail: err.to_string(),
                });
            }
        };
        {
            let mut inner = self.lock();
            Self::touch_resident(&mut inner, handle, || (Arc::new(dataset), bytes));
            self.evict_over_budget(&mut inner);
        }
        self.publish_resident_gauge();
        counter_add("fdx.session.opens", 1);
        let dataset = {
            let inner = self.lock();
            Arc::clone(&inner.resident[&handle].dataset)
        };
        Ok(OpenOutcome {
            dataset,
            source: "disk",
        })
    }

    fn read_dataset_snapshot(
        &self,
        dir: &Path,
        file: &str,
        handle: u64,
    ) -> Result<(Dataset, u64), SnapshotError> {
        let bytes = std::fs::read(dir.join(file)).map_err(|e| SnapshotError::Corrupt {
            detail: format!("read failed: {e}"),
        })?;
        let record = decode_record(&bytes)?;
        if record.kind != KIND_DATASET {
            return Err(SnapshotError::Corrupt {
                detail: format!("expected a dataset record, found kind {}", record.kind),
            });
        }
        if content_hash(&record.payload) != handle {
            return Err(SnapshotError::Corrupt {
                detail: "payload hash does not match the handle in the file name".to_string(),
            });
        }
        let len = record.payload.len() as u64;
        let dataset = decode_dataset(&record.payload)?;
        Ok((dataset, len))
    }

    /// Drop a dataset from the resident set (its snapshot, if any, stays
    /// on disk). Returns whether it was resident.
    pub fn close(&self, handle: u64) -> bool {
        let was_resident = {
            let mut inner = self.lock();
            match inner.resident.remove(&handle) {
                Some(r) => {
                    inner.resident_bytes -= r.bytes;
                    true
                }
                None => false,
            }
        };
        self.publish_resident_gauge();
        counter_add("fdx.session.closes", 1);
        was_resident
    }

    /// Whether the handle names a known dataset (resident or on disk).
    pub fn contains(&self, handle: u64) -> bool {
        let inner = self.lock();
        inner.resident.contains_key(&handle) || inner.on_disk.contains(&handle)
    }

    /// Result-cache lookup; records the hit/miss metric.
    pub fn lookup_result(&self, handle: u64, fingerprint: u64) -> Option<Arc<CachedResult>> {
        let found = self.lock().results.get(&(handle, fingerprint)).cloned();
        counter_add(
            if found.is_some() {
                "fdx.session.cache_hits"
            } else {
                "fdx.session.cache_misses"
            },
            1,
        );
        found
    }

    /// Insert a result into the cache and persist its snapshot. On a
    /// persist failure nothing is cached (memory and disk stay in sync,
    /// which is what keeps warm-start choices replayable after a crash).
    pub fn store_result(&self, result: CachedResult) -> Result<(), SessionError> {
        let payload = encode_result(&result);
        self.persist(
            &result_file(result.handle, result.fingerprint),
            KIND_RESULT,
            &payload,
        )?;
        let key = (result.handle, result.fingerprint);
        self.lock().results.insert(key, Arc::new(result));
        Ok(())
    }

    /// Deterministic warm-start selection for a request at `lambda`: among
    /// cached results on the same dataset with the same base fingerprint
    /// (all knobs but λ equal) and a warm iterate, pick the nearest λ;
    /// ties break toward the smaller λ. Because candidates come only from
    /// the (persisted) result cache, a recovered server replays the exact
    /// choice an uninterrupted one made.
    pub fn warm_start_for(
        &self,
        handle: u64,
        base_fingerprint: u64,
        lambda: f64,
    ) -> Option<WarmStart> {
        let inner = self.lock();
        let mut best: Option<(&Arc<CachedResult>, f64)> = None;
        for ((h, _), entry) in inner.results.iter() {
            if *h != handle || entry.base_fingerprint != base_fingerprint {
                continue;
            }
            if entry.warm.is_none() {
                continue;
            }
            let dist = (entry.lambda - lambda).abs();
            let better = match &best {
                None => true,
                Some((cur, cur_dist)) => {
                    dist < *cur_dist || (dist == *cur_dist && entry.lambda < cur.lambda)
                }
            };
            if better {
                best = Some((entry, dist));
            }
        }
        best.and_then(|(entry, _)| entry.warm.clone())
    }

    /// Cached (handle, fingerprint) keys, for introspection and tests.
    pub fn cached_keys(&self) -> Vec<(u64, u64)> {
        self.lock().results.keys().cloned().collect()
    }

    /// Move an unusable snapshot into `quarantine/` (best-effort; the file
    /// must stop shadowing the handle either way).
    fn quarantine(&self, dir: &Path, file: &str, reason: &str) {
        let qdir = dir.join("quarantine");
        let _ = std::fs::create_dir_all(&qdir);
        if std::fs::rename(dir.join(file), qdir.join(file)).is_err() {
            let _ = std::fs::remove_file(dir.join(file));
        }
        counter_add("fdx.snapshot.quarantined", 1);
        fdx_obs::Registry::global().push_event(
            "fdx.snapshot.quarantined",
            &[
                ("file", fdx_obs::Field::S(file.to_string())),
                ("reason", fdx_obs::Field::S(reason.to_string())),
            ],
        );
    }

    /// The startup recovery scan: classify every `*.snap` record in the
    /// directory (lexicographic order, so the scan is deterministic),
    /// register valid datasets, rehydrate valid result-cache entries, and
    /// quarantine everything else with a typed reason.
    fn recover(&self, dir: &Path) -> RecoveryReport {
        let _ = std::fs::create_dir_all(dir);
        let mut report = RecoveryReport::default();
        let mut files: Vec<String> = match std::fs::read_dir(dir) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .filter(|e| e.path().is_file())
                .filter_map(|e| e.file_name().to_str().map(String::from))
                .filter(|n| n.ends_with(".snap"))
                .collect(),
            Err(_) => Vec::new(),
        };
        files.sort();
        for file in files {
            match self.recover_one(dir, &file) {
                Ok(RecoveredKind::Dataset) => report.datasets += 1,
                Ok(RecoveredKind::Result) => report.results += 1,
                Err(reason) => {
                    self.quarantine(dir, &file, reason);
                    report.quarantined.push(QuarantinedSnapshot {
                        file,
                        reason: reason.to_string(),
                    });
                }
            }
        }
        counter_add(
            "fdx.snapshot.recovered",
            (report.datasets + report.results) as u64,
        );
        report
    }

    fn recover_one(&self, dir: &Path, file: &str) -> Result<RecoveredKind, &'static str> {
        let bytes = std::fs::read(dir.join(file)).map_err(|_| "unreadable")?;
        let record = decode_record(&bytes).map_err(|e| e.reason())?;
        match record.kind {
            KIND_DATASET => {
                let expected = file
                    .strip_prefix("ds-")
                    .and_then(|rest| rest.strip_suffix(".snap"))
                    .and_then(snapshot::parse_handle)
                    .ok_or("bad_file_name")?;
                if content_hash(&record.payload) != expected {
                    return Err("handle_mismatch");
                }
                // Full decode now: a record that cannot rehydrate must be
                // quarantined at startup, not discovered at first open.
                decode_dataset(&record.payload).map_err(|e| e.reason())?;
                self.lock().on_disk.insert(expected);
                Ok(RecoveredKind::Dataset)
            }
            KIND_RESULT => {
                let result = decode_result(&record.payload).map_err(|e| e.reason())?;
                let named = parse_result_file(file).ok_or("bad_file_name")?;
                if named != (result.handle, result.fingerprint) {
                    return Err("handle_mismatch");
                }
                let key = (result.handle, result.fingerprint);
                self.lock().results.insert(key, Arc::new(result));
                Ok(RecoveredKind::Result)
            }
            _ => Err("unknown_kind"),
        }
    }
}

enum RecoveredKind {
    Dataset,
    Result,
}

/// Fingerprint of every *result-affecting* `FdxConfig` knob — the cache
/// key alongside the dataset handle. Excludes `threads`, `time_budget`,
/// `memory_budget`, and `glasso_warm_start`: the determinism contract
/// makes thread count bits-neutral, budgets only bound wall clock /
/// ingest, and the warm start is itself a deterministic function of the
/// persisted cache, so keying on it would be circular.
pub fn config_fingerprint(cfg: &FdxConfig) -> u64 {
    fingerprint_bytes(cfg, true)
}

/// [`config_fingerprint`] with λ (sparsity) masked out: the warm-start
/// compatibility key. Two runs sharing a base fingerprint differ only in
/// λ, which is exactly when reusing a converged iterate is sound.
pub fn base_fingerprint(cfg: &FdxConfig) -> u64 {
    fingerprint_bytes(cfg, false)
}

fn fingerprint_bytes(cfg: &FdxConfig, include_lambda: bool) -> u64 {
    fn push_str(buf: &mut Vec<u8>, s: &str) {
        buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
        buf.extend_from_slice(s.as_bytes());
    }
    let mut buf = Vec::new();
    push_str(&mut buf, &format!("{:?}", cfg.transform.sampling));
    push_str(&mut buf, &format!("{:?}", cfg.transform.null_policy));
    buf.extend_from_slice(&cfg.transform.seed.to_le_bytes());
    let max_pairs = cfg
        .transform
        .max_pairs_per_attr
        .map(|v| v as u64 + 1)
        .unwrap_or(0);
    buf.extend_from_slice(&max_pairs.to_le_bytes());
    buf.push(cfg.use_correlation as u8);
    buf.extend_from_slice(&cfg.threshold.to_bits().to_le_bytes());
    buf.extend_from_slice(&cfg.shrinkage.to_bits().to_le_bytes());
    buf.extend_from_slice(&cfg.relative_keep.to_bits().to_le_bytes());
    push_str(&mut buf, &format!("{:?}", cfg.ordering));
    buf.extend_from_slice(&cfg.support_threshold.to_bits().to_le_bytes());
    buf.extend_from_slice(&(cfg.max_lhs as u64).to_le_bytes());
    buf.push(cfg.validate as u8);
    buf.extend_from_slice(&cfg.min_lift.to_bits().to_le_bytes());
    if include_lambda {
        buf.extend_from_slice(&cfg.sparsity.to_bits().to_le_bytes());
    }
    content_hash(&buf)
}

fn parse_result_file(file: &str) -> Option<(u64, u64)> {
    let rest = file.strip_prefix("rc-")?.strip_suffix(".snap")?;
    let (h, f) = rest.split_once('-')?;
    Some((snapshot::parse_handle(h)?, snapshot::parse_handle(f)?))
}

// ---------------------------------------------------------------------------
// Result-record payload codec: fixed little-endian fields, then the reply
// core string, then the optional warm-start matrices by IEEE bit pattern —
// bit-exact, so recovered warm starts reproduce the pre-crash solve.

fn put_matrix(out: &mut Vec<u8>, m: &fdx_core::Matrix) {
    out.extend_from_slice(&(m.rows() as u32).to_le_bytes());
    out.extend_from_slice(&(m.cols() as u32).to_le_bytes());
    for i in 0..m.rows() {
        for j in 0..m.cols() {
            out.extend_from_slice(&m[(i, j)].to_bits().to_le_bytes());
        }
    }
}

fn encode_result(r: &CachedResult) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&r.handle.to_le_bytes());
    out.extend_from_slice(&r.fingerprint.to_le_bytes());
    out.extend_from_slice(&r.base_fingerprint.to_le_bytes());
    out.extend_from_slice(&r.lambda.to_bits().to_le_bytes());
    out.extend_from_slice(&(r.core.len() as u32).to_le_bytes());
    out.extend_from_slice(r.core.as_bytes());
    match &r.warm {
        None => out.push(0),
        Some(w) => {
            out.push(1);
            put_matrix(&mut out, &w.theta);
            put_matrix(&mut out, &w.w);
        }
    }
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| SnapshotError::Corrupt {
                detail: "result payload exhausted".to_string(),
            })?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn matrix(&mut self) -> Result<fdx_core::Matrix, SnapshotError> {
        let rows = self.u32()? as usize;
        let cols = self.u32()? as usize;
        if rows.checked_mul(cols).is_none_or(|n| n > (1 << 24)) {
            return Err(SnapshotError::Corrupt {
                detail: format!("implausible matrix shape {rows}x{cols}"),
            });
        }
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(f64::from_bits(self.u64()?));
        }
        Ok(fdx_core::Matrix::from_vec(rows, cols, data))
    }
}

fn decode_result(payload: &[u8]) -> Result<CachedResult, SnapshotError> {
    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    let handle = r.u64()?;
    let fingerprint = r.u64()?;
    let base_fingerprint = r.u64()?;
    let lambda = f64::from_bits(r.u64()?);
    let core_len = r.u32()? as usize;
    let core =
        String::from_utf8(r.take(core_len)?.to_vec()).map_err(|_| SnapshotError::Corrupt {
            detail: "result core is not utf-8".to_string(),
        })?;
    let warm = match r.take(1)?[0] {
        0 => None,
        1 => {
            let theta = r.matrix()?;
            let w = r.matrix()?;
            Some(WarmStart { theta, w })
        }
        t => {
            return Err(SnapshotError::Corrupt {
                detail: format!("unknown warm-start tag {t}"),
            })
        }
    };
    if r.pos != payload.len() {
        return Err(SnapshotError::Corrupt {
            detail: format!("{} unread result bytes", payload.len() - r.pos),
        });
    }
    Ok(CachedResult {
        handle,
        fingerprint,
        base_fingerprint,
        lambda,
        core,
        warm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csv(n: usize) -> String {
        let mut s = String::from("zip,city,state\n");
        for i in 0..n {
            let z = i % 16;
            s.push_str(&format!("z{z},c{},s{}\n", z / 2, z / 8));
        }
        s
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fdx-session-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn store(dir: Option<PathBuf>, budget: Option<u64>) -> (SessionStore, RecoveryReport) {
        SessionStore::new(&SessionConfig { dir, budget })
    }

    #[test]
    fn upload_open_close_roundtrip_in_memory() {
        let (s, _) = store(None, None);
        let up = s.upload(&csv(64)).unwrap();
        assert!(!up.deduped);
        let again = s.upload(&csv(64)).unwrap();
        assert!(again.deduped, "same content hashes to the same handle");
        assert_eq!(again.handle, up.handle);

        let open = s.open(up.handle).unwrap();
        assert_eq!(open.source, "resident");
        assert_eq!(open.dataset.nrows(), 64);
        assert!(s.close(up.handle), "was resident");
        // Memory-only store: close forgets the dataset entirely.
        assert!(matches!(
            s.open(up.handle),
            Err(SessionError::NotFound { .. })
        ));
    }

    #[test]
    fn snapshot_survives_close_and_rehydrates_bit_identically() {
        let dir = tmpdir("rehydrate");
        let (s, _) = store(Some(dir.clone()), None);
        let up = s.upload(&csv(64)).unwrap();
        let original = Arc::clone(&s.open(up.handle).unwrap().dataset);
        s.close(up.handle);
        let open = s.open(up.handle).unwrap();
        assert_eq!(open.source, "disk");
        assert_eq!(*open.dataset, *original, "bit-identical rehydrate");
        assert_eq!(
            snapshot::dataset_content_hash(&open.dataset),
            up.handle,
            "content address survives the disk roundtrip"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_scan_restores_sessions_and_results() {
        let dir = tmpdir("recover");
        let handle;
        {
            let (s, rep) = store(Some(dir.clone()), None);
            assert_eq!(rep, RecoveryReport::default());
            handle = s.upload(&csv(64)).unwrap().handle;
            s.store_result(CachedResult {
                handle,
                fingerprint: 42,
                base_fingerprint: 7,
                lambda: 0.004,
                core: "\"attrs\":3".to_string(),
                warm: Some(WarmStart {
                    theta: fdx_core::Matrix::from_vec(1, 1, vec![2.5]),
                    w: fdx_core::Matrix::from_vec(1, 1, vec![0.5]),
                }),
            })
            .unwrap();
            // Store dropped without any drain — the crash-equivalent,
            // since every record was persisted eagerly.
        }
        let (s2, rep) = store(Some(dir.clone()), None);
        assert_eq!(rep.datasets, 1);
        assert_eq!(rep.results, 1);
        assert!(rep.quarantined.is_empty());
        assert!(s2.contains(handle));
        let cached = s2.lookup_result(handle, 42).unwrap();
        assert_eq!(cached.lambda, 0.004);
        assert_eq!(cached.core, "\"attrs\":3");
        let warm = s2.warm_start_for(handle, 7, 0.006).unwrap();
        assert_eq!(warm.theta[(0, 0)].to_bits(), 2.5f64.to_bits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshots_are_quarantined_with_typed_reasons() {
        let dir = tmpdir("quarantine");
        {
            let (s, _) = store(Some(dir.clone()), None);
            s.upload(&csv(64)).unwrap();
        }
        // Damage every failure mode: truncation, bit rot, garbage.
        let snaps: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "snap"))
            .collect();
        assert_eq!(snaps.len(), 1);
        let bytes = std::fs::read(&snaps[0]).unwrap();
        std::fs::write(&snaps[0], &bytes[..bytes.len() / 2]).unwrap();
        let mut rotten = bytes.clone();
        let last = rotten.len() - 5;
        rotten[last] ^= 0x10;
        std::fs::write(dir.join("ds-00000000000000aa.snap"), &rotten).unwrap();
        // Long enough to clear the length check so the magic check fires.
        std::fs::write(
            dir.join("zz-not-a-snapshot.snap"),
            b"hello, this is not a snapshot record",
        )
        .unwrap();

        let (s2, rep) = store(Some(dir.clone()), None);
        assert_eq!(rep.datasets, 0);
        assert_eq!(rep.results, 0);
        let reason_of = |file: &str| -> &str {
            rep.quarantined
                .iter()
                .find(|q| q.file == file)
                .map(|q| q.reason.as_str())
                .unwrap_or_else(|| panic!("{file} not quarantined: {:?}", rep.quarantined))
        };
        assert_eq!(rep.quarantined.len(), 3);
        let original = snaps[0].file_name().unwrap().to_str().unwrap();
        assert_eq!(reason_of(original), "truncated");
        // The rotten copy under a wrong name: CRC catches the flip first.
        assert_eq!(reason_of("ds-00000000000000aa.snap"), "bad_crc");
        assert_eq!(reason_of("zz-not-a-snapshot.snap"), "bad_magic");
        // Quarantined files moved, not deleted; the store is empty.
        for q in &rep.quarantined {
            assert!(dir.join("quarantine").join(&q.file).exists());
            assert!(!dir.join(&q.file).exists());
        }
        assert!(s2.cached_keys().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_and_corrupt_writes_surface_at_recovery_not_as_panics() {
        for (fault, reason) in [
            ("session.torn_write", "truncated"),
            ("session.corrupt_crc", "bad_crc"),
        ] {
            let dir = tmpdir(&fault.replace('.', "-"));
            let handle;
            {
                let (s, _) = store(Some(dir.clone()), None);
                let _f = faults::arm_times(fault, 1);
                handle = s.upload(&csv(64)).unwrap().handle;
            }
            let (s2, rep) = store(Some(dir.clone()), None);
            assert_eq!(rep.datasets, 0, "{fault}");
            assert_eq!(rep.quarantined.len(), 1, "{fault}");
            assert_eq!(rep.quarantined[0].reason, reason, "{fault}");
            assert!(
                matches!(s2.open(handle), Err(SessionError::NotFound { .. })),
                "{fault}: quarantined snapshot must not serve"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn disk_full_and_partial_upload_are_typed_and_stateless() {
        let dir = tmpdir("disk-full");
        let (s, _) = store(Some(dir.clone()), None);
        {
            let _f = faults::arm_times("session.disk_full", 1);
            let err = s.upload(&csv(64)).unwrap_err();
            assert!(matches!(err, SessionError::DiskFull { .. }), "{err}");
        }
        {
            let _f = faults::arm_times("session.partial_upload", 1);
            let err = s.upload(&csv(64)).unwrap_err();
            assert!(matches!(err, SessionError::Upload { .. }), "{err}");
        }
        // Neither failure left state: no handle, no snapshot file.
        let leftover = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_file())
            .count();
        assert_eq!(leftover, 0);
        // The faults are gone; the same upload now succeeds.
        let up = s.upload(&csv(64)).unwrap();
        assert!(s.open(up.handle).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_is_lru_and_deterministic_and_reopenable_from_disk() {
        let dir = tmpdir("evict");
        // Budget fits roughly one dataset: each upload evicts the oldest.
        let (s, _) = store(Some(dir.clone()), Some(1)); // 1 byte: nothing fits twice
        let a = s.upload(&csv(16)).unwrap();
        let b = s.upload("x,y\n1,2\n2,3\n").unwrap();
        assert_ne!(a.handle, b.handle);
        {
            let inner = s.lock();
            assert_eq!(
                inner.resident.len(),
                1,
                "over-budget store keeps only the newest"
            );
            assert!(inner.resident.contains_key(&b.handle));
        }
        // The evicted dataset reopens from its snapshot.
        let open = s.open(a.handle).unwrap();
        assert_eq!(open.source, "disk");
        // ... which in turn evicts b (deterministically the older access).
        {
            let inner = s.lock();
            assert_eq!(inner.resident.len(), 1);
            assert!(inner.resident.contains_key(&a.handle));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evict_during_open_fault_forces_a_disk_rehydrate() {
        let dir = tmpdir("evict-open");
        let (s, _) = store(Some(dir.clone()), None);
        let up = s.upload(&csv(32)).unwrap();
        let _f = faults::arm_times("session.evict_during_open", 1);
        let open = s.open(up.handle).unwrap();
        assert_eq!(open.source, "disk", "fault evicted the resident copy");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_start_selection_is_nearest_lambda_smaller_on_ties() {
        let (s, _) = store(None, None);
        let mk = |lambda: f64, v: f64| CachedResult {
            handle: 9,
            fingerprint: (lambda * 1e4) as u64,
            base_fingerprint: 1,
            lambda,
            core: String::new(),
            warm: Some(WarmStart {
                theta: fdx_core::Matrix::from_vec(1, 1, vec![v]),
                w: fdx_core::Matrix::from_vec(1, 1, vec![v]),
            }),
        };
        s.store_result(mk(0.002, 1.0)).unwrap();
        s.store_result(mk(0.006, 2.0)).unwrap();
        // 0.004 is equidistant: the smaller λ (0.002) wins the tie.
        let warm = s.warm_start_for(9, 1, 0.004).unwrap();
        assert_eq!(warm.theta[(0, 0)], 1.0);
        // 0.005 is nearer 0.006.
        let warm = s.warm_start_for(9, 1, 0.005).unwrap();
        assert_eq!(warm.theta[(0, 0)], 2.0);
        // Different base fingerprint: no candidates.
        assert!(s.warm_start_for(9, 2, 0.004).is_none());
        assert!(s.warm_start_for(8, 1, 0.004).is_none());
    }

    #[test]
    fn fingerprints_track_result_affecting_knobs_only() {
        let a = FdxConfig::with_seed(7).with_sparsity(0.004);
        let b = a.clone();
        assert_eq!(config_fingerprint(&a), config_fingerprint(&b));
        assert_eq!(base_fingerprint(&a), base_fingerprint(&b));
        // λ changes the full fingerprint but not the base one.
        let c = a.clone().with_sparsity(0.006);
        assert_ne!(config_fingerprint(&a), config_fingerprint(&c));
        assert_eq!(base_fingerprint(&a), base_fingerprint(&c));
        // Result-affecting knobs change both.
        let d = a.clone().with_threshold(0.2);
        assert_ne!(config_fingerprint(&a), config_fingerprint(&d));
        assert_ne!(base_fingerprint(&a), base_fingerprint(&d));
        let e = FdxConfig::with_seed(8).with_sparsity(0.004);
        assert_ne!(config_fingerprint(&a), config_fingerprint(&e));
        // Bits-neutral execution knobs change neither.
        let f = a.clone().with_threads(4).with_time_budget(30.0);
        assert_eq!(config_fingerprint(&a), config_fingerprint(&f));
        assert_eq!(base_fingerprint(&a), base_fingerprint(&f));
    }

    #[test]
    fn result_payload_roundtrips_bit_exactly() {
        let r = CachedResult {
            handle: u64::MAX,
            fingerprint: 3,
            base_fingerprint: 4,
            lambda: 0.004,
            core: "\"attrs\":2,\"fds\":[]".to_string(),
            warm: Some(WarmStart {
                theta: fdx_core::Matrix::from_vec(2, 2, vec![1.0, -0.25, -0.25, 1.0]),
                w: fdx_core::Matrix::from_vec(2, 2, vec![1.0, 0.25, 0.25, 1.0]),
            }),
        };
        let payload = encode_result(&r);
        let back = decode_result(&payload).unwrap();
        assert_eq!(back.handle, r.handle);
        assert_eq!(back.lambda.to_bits(), r.lambda.to_bits());
        assert_eq!(back.core, r.core);
        let (bw, rw) = (back.warm.unwrap(), r.warm.unwrap());
        assert_eq!(bw.theta[(0, 1)].to_bits(), rw.theta[(0, 1)].to_bits());
        assert_eq!(bw.w[(1, 0)].to_bits(), rw.w[(1, 0)].to_bits());
        // Truncated payload: typed, not a panic.
        assert!(decode_result(&payload[..payload.len() - 2]).is_err());
    }
}
