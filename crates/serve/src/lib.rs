//! # fdx-serve — panic-isolated, deadline-aware FD-discovery service
//!
//! A zero-dependency (std-only) line-delimited-JSON server that puts the
//! FDX discovery pipeline behind a long-lived loopback TCP endpoint. The
//! ROADMAP's north star is a service that survives heavy, occasionally
//! hostile traffic; this crate supplies the isolation boundary:
//!
//! * **one request per connection** — write one JSON frame line, read one
//!   reply line ([`protocol`]);
//! * **panic isolation** — requests run under `catch_unwind` on a bounded
//!   worker pool; a panicking request gets a typed `panic` reply and the
//!   process keeps serving ([`server`]);
//! * **deadlines** — `deadline_ms` propagates into
//!   `FdxConfig::time_budget`, riding the pipeline's `BudgetExceeded`
//!   path;
//! * **load shedding** — a bounded queue answers `overloaded` instead of
//!   growing without bound;
//! * **graceful drain** — a `shutdown` frame drains in-flight work under a
//!   timeout and flushes a final metrics snapshot;
//! * **request-scoped chaos** — with `--chaos`, a request can arm
//!   `fdx_obs::faults` for its own worker thread only, which is what the
//!   chaos soak test drives;
//! * **live introspection** — a `stats` op answered on the accept thread
//!   (works while every worker is saturated or panicking) returns server
//!   tallies, metric snapshots, and the tail of the bounded request
//!   journal; `"trace": true` on a discover request embeds the per-request
//!   phase waterfall in the reply.
//!
//! The client half ([`client`]) retries `overloaded`/connect failures on a
//! deterministic, seedless exponential-backoff schedule.

pub mod client;
pub mod json;
pub mod protocol;
pub mod server;

pub use client::{request, stats_request, ClientError, RetryPolicy};
pub use protocol::{
    codes, error_frame, ok_frame, parse_frame, phase_nodes_from_json, shutdown_line, stats_line,
    ChaosSpec, Frame, FrameError, RequestFrame, Response, ServerStats,
};
pub use server::{ServeConfig, ServeReport, Server, ServerHandle};
