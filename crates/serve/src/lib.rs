//! # fdx-serve — panic-isolated, deadline-aware FD-discovery service
//!
//! A zero-dependency (std-only) line-delimited-JSON server that puts the
//! FDX discovery pipeline behind a long-lived loopback TCP endpoint. The
//! ROADMAP's north star is a service that survives heavy, occasionally
//! hostile traffic; this crate supplies the isolation boundary:
//!
//! * **one request per connection** — write one JSON frame line, read one
//!   reply line ([`protocol`]);
//! * **panic isolation** — requests run under `catch_unwind` on a bounded
//!   worker pool; a panicking request gets a typed `panic` reply and the
//!   process keeps serving ([`server`]);
//! * **deadlines** — `deadline_ms` propagates into
//!   `FdxConfig::time_budget`, riding the pipeline's `BudgetExceeded`
//!   path;
//! * **load shedding** — a bounded queue answers `overloaded` instead of
//!   growing without bound;
//! * **graceful drain** — a `shutdown` frame drains in-flight work under a
//!   timeout and flushes a final metrics snapshot;
//! * **request-scoped chaos** — with `--chaos`, a request can arm
//!   `fdx_obs::faults` for its own worker thread only, which is what the
//!   chaos soak test drives;
//! * **live introspection** — a `stats` op answered on the accept thread
//!   (works while every worker is saturated or panicking) returns server
//!   tallies, metric snapshots, and the tail of the bounded request
//!   journal; `"trace": true` on a discover request embeds the per-request
//!   phase waterfall in the reply;
//! * **crash-safe sessions** — `upload`/`open`/`close` ops register
//!   datasets by content hash in a [`session::SessionStore`]: an
//!   LRU-bounded resident set backed by a checksummed snapshot store under
//!   `--session-dir`, with a startup recovery scan that quarantines torn
//!   or corrupt records with typed reasons and a discovery-result cache
//!   whose hits replay reply bytes verbatim (and whose entries seed glasso
//!   warm starts across a session's λ sweep).
//!
//! The client half ([`client`]) retries `overloaded`/connect failures on a
//! deterministic, seedless exponential-backoff schedule, and additionally
//! retries dropped connections for idempotent ops (stats, session ops,
//! dataset-handle discovers) so a server restart mid-session is invisible
//! to scripted sweeps.

pub mod client;
pub mod json;
pub mod protocol;
pub mod server;
pub mod session;

pub use client::{request, send_idempotent_line, stats_request, ClientError, RetryPolicy};
pub use protocol::{
    cached_ok_frame, close_line, codes, error_frame, ok_frame, open_line, parse_frame,
    phase_nodes_from_json, reply_result_core, result_core, shutdown_line, stats_line, upload_line,
    ChaosSpec, Frame, FrameError, RequestFrame, Response, ServerStats,
};
pub use server::{ServeConfig, ServeReport, Server, ServerHandle};
pub use session::{
    base_fingerprint, config_fingerprint, CachedResult, OpenOutcome, QuarantinedSnapshot,
    RecoveryReport, SessionConfig, SessionError, SessionStore, UploadOutcome,
    DEFAULT_SESSION_BUDGET,
};
