//! The discovery server: acceptor, bounded queue, panic-isolated workers,
//! graceful drain.
//!
//! Robustness mechanisms (DESIGN.md §11):
//!
//! 1. **Panic isolation** — every request runs under `catch_unwind` on a
//!    worker thread; a panicking request answers a typed `panic` frame,
//!    bumps `fdx.serve.panics`, and the worker keeps serving. This crate
//!    and `fdx-par` are the only places `catch_unwind` is allowed
//!    (enforced by lint rule FDX-L007).
//! 2. **Deadline propagation** — a request's `deadline_ms`, minus the time
//!    it spent queued, becomes `FdxConfig::time_budget`, so the pipeline's
//!    own `BudgetExceeded` path terminates runaway work between phases.
//! 3. **Load shedding** — the request queue is bounded by `queue_cap`;
//!    when full, new requests are answered `overloaded` immediately and
//!    `fdx.serve.shed` counts every rejection. Frame size is capped before
//!    parsing, so per-connection memory is bounded too.
//! 4. **Graceful drain** — a `shutdown` frame (or [`ServerHandle::shutdown`])
//!    stops the acceptor, lets workers drain the queue under
//!    `drain_timeout_secs`, answers abandoned jobs `shutting_down` when the
//!    timeout expires, and flushes a final metrics snapshot.
//! 5. **Request-scoped chaos** — with [`ServeConfig::chaos`] enabled, a
//!    request's `chaos` field arms `fdx_obs::faults` on the worker thread
//!    for the duration of that request only; the RAII guards disarm on
//!    return *and* on unwind, so faults never leak across requests.
//! 6. **Bounded connection concurrency** — each accepted connection is
//!    served on its own thread (so a stalled uploader wedges one reaped-on
//!    -timeout thread, never the accept loop), and the number of live
//!    connection threads is capped by [`ServeConfig::max_conns`]; beyond
//!    the cap connections are answered `overloaded` inline.
//! 7. **Crash-safe sessions** — `upload`/`open`/`close` frames and
//!    `dataset`-handle discovers are resolved on the connection thread
//!    against the [`SessionStore`]: cache hits replay persisted reply
//!    bytes without touching the worker queue, and misses enqueue with the
//!    dataset (and a deterministically chosen glasso warm start) already
//!    resolved.

use crate::protocol::{self, codes, ChaosSpec, Frame, RequestFrame, ServerStats};
use crate::session::{
    self, CachedResult, RecoveryReport, SessionConfig, SessionError, SessionStore,
};
use fdx_core::{Fdx, FdxConfig, FdxError, FdxResult, WarmStart};
use fdx_data::snapshot::{handle_hex, parse_handle};
use fdx_data::{ingest_csv_file, read_csv_str, BadRowPolicy, Dataset, IngestConfig};
use fdx_obs::faults::{self, ArmedFault};
use fdx_obs::journal::{Journal, JournalEntry};
use fdx_obs::{counter_add, gauge_set, observe, Span, Stopwatch};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Server configuration; see `fdx serve --help` for the CLI mapping.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address. The default asks the OS for an ephemeral loopback
    /// port; [`ServerHandle::addr`] reports what was bound.
    pub addr: String,
    /// Worker-pool size. `None` resolves like the rest of the workspace:
    /// `FDX_THREADS`, then available cores (`fdx_par::resolve_threads`).
    pub threads: Option<usize>,
    /// Bounded request-queue capacity; beyond it requests are shed.
    pub queue_cap: usize,
    /// Seconds to wait for queued + in-flight work after shutdown begins.
    pub drain_timeout_secs: f64,
    /// Allow requests to arm fault points via their `chaos` field.
    pub chaos: bool,
    /// Write the final metrics snapshot here on drain (atomic rename).
    pub metrics_path: Option<PathBuf>,
    /// Write the request journal (JSON lines, oldest first) here on drain.
    pub journal_path: Option<PathBuf>,
    /// Per-connection socket read timeout.
    pub io_timeout_secs: f64,
    /// Snapshot directory for crash-safe sessions. `None` keeps sessions
    /// memory-only (they die with the process).
    pub session_dir: Option<PathBuf>,
    /// Resident-set byte budget for uploaded datasets
    /// ([`session::DEFAULT_SESSION_BUDGET`] when `None`).
    pub session_budget: Option<u64>,
    /// Cap on concurrently served connections; beyond it new connections
    /// are answered `overloaded` without spawning a thread.
    pub max_conns: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: None,
            queue_cap: 64,
            drain_timeout_secs: 5.0,
            chaos: false,
            metrics_path: None,
            journal_path: None,
            io_timeout_secs: 10.0,
            session_dir: None,
            session_budget: None,
            max_conns: 64,
        }
    }
}

/// Final tally returned by [`ServerHandle::wait`]. Authoritative even when
/// obs recording is disabled (the obs counters mirror these).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Requests accepted into the queue.
    pub requests: u64,
    /// Requests a worker answered (ok or typed error).
    pub completed: u64,
    /// Requests rejected with `overloaded` because the queue was full.
    pub shed: u64,
    /// Requests whose handler panicked (answered with a `panic` frame).
    pub panics: u64,
    /// Connections answered `bad_request` (malformed/oversized frames,
    /// chaos without `--chaos`).
    pub bad_frames: u64,
    /// Requests that exceeded their deadline (queued or in the pipeline).
    pub deadline_exceeded: u64,
    /// Queued requests answered `shutting_down` at the drain timeout.
    pub abandoned: u64,
    /// `stats` probes answered on the accept thread (not in `requests`).
    pub stats_requests: u64,
    /// Whether the drain timed out before queued + in-flight work finished.
    pub drain_timed_out: bool,
}

struct QueueInner {
    queue: VecDeque<Job>,
    in_flight: usize,
}

struct State {
    /// Worker-pool size, frozen at start for `stats` replies.
    workers: usize,
    /// Server start time; `stats` reports uptime from it.
    started: Stopwatch,
    /// The session layer: content-addressed datasets, snapshot store, and
    /// the discovery-result cache.
    sessions: SessionStore,
    /// Live connection threads, bounding connection concurrency.
    conns_active: AtomicU64,
    inner: Mutex<QueueInner>,
    job_ready: Condvar,
    /// Signalled whenever the queue may have drained (job finished).
    drained: Condvar,
    shutting_down: AtomicBool,
    /// Signalled once when shutdown begins; `wait()` blocks on it.
    shutdown_started: Mutex<bool>,
    shutdown_cv: Condvar,
    /// Set when the drain timeout expires: workers answer remaining jobs
    /// with `shutting_down` instead of running them.
    abandon: AtomicBool,
    requests: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    panics: AtomicU64,
    bad_frames: AtomicU64,
    deadline_exceeded: AtomicU64,
    abandoned: AtomicU64,
    stats_requests: AtomicU64,
}

impl State {
    fn new(workers: usize, sessions: SessionStore) -> State {
        State {
            workers,
            started: Stopwatch::start(),
            sessions,
            conns_active: AtomicU64::new(0),
            inner: Mutex::new(QueueInner {
                queue: VecDeque::new(),
                in_flight: 0,
            }),
            job_ready: Condvar::new(),
            drained: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            shutdown_started: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            abandon: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            bad_frames: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            abandoned: AtomicU64::new(0),
            stats_requests: AtomicU64::new(0),
        }
    }

    fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Acquire)
    }

    fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::Release);
        let mut started = lock_recover(&self.shutdown_started);
        *started = true;
        self.shutdown_cv.notify_all();
        // Wake idle workers so they can observe the flag and exit once the
        // queue is empty.
        self.job_ready.notify_all();
    }
}

/// Mutex lock that shrugs off poisoning: the protected state is a queue of
/// jobs plus counters, all of which stay coherent across an unwind.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One queued request: the parsed frame, the connection to answer on, and
/// a stopwatch measuring time spent in the queue. A [`Stopwatch`] (not a
/// [`Span`]) because the job is created on the acceptor thread and consumed
/// on a worker thread — a `Span` would leak its frame into the acceptor's
/// thread-local trace stack.
struct Job {
    req: Box<RequestFrame>,
    stream: TcpStream,
    wait: Stopwatch,
    /// Session context for `dataset`-handle discovers, resolved on the
    /// connection thread at enqueue time: the opened dataset, the cache
    /// key, and the deterministically chosen warm start.
    session: Option<SessionJob>,
}

/// Resolved session context a `dataset`-handle discover carries into the
/// worker. The warm start is chosen at *enqueue* time from the persisted
/// result cache (nearest λ, ties toward smaller), so the choice — and
/// therefore the result bits — replays identically after a crash+recovery.
struct SessionJob {
    handle: u64,
    fingerprint: u64,
    base_fingerprint: u64,
    lambda: f64,
    dataset: Arc<Dataset>,
    warm: Option<WarmStart>,
}

/// The discovery server. [`Server::start`] binds, spawns the acceptor and
/// the worker pool, and returns a handle.
pub struct Server;

/// Handle to a running server: address, test hooks, and the drain loop.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<State>,
    config: ServeConfig,
    recovery: RecoveryReport,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `config.addr`, run the session-store recovery scan (when a
    /// `session_dir` is configured), and spawn the worker pool (sized by
    /// `fdx_par::resolve_threads`) and the acceptor thread.
    pub fn start(config: ServeConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let n_workers = fdx_par::resolve_threads(config.threads).max(1);
        let (sessions, recovery) = SessionStore::new(&SessionConfig {
            dir: config.session_dir.clone(),
            budget: config.session_budget,
        });
        let state = Arc::new(State::new(n_workers, sessions));

        let mut workers = Vec::with_capacity(n_workers);
        for i in 0..n_workers {
            let state = Arc::clone(&state);
            let cfg = config.clone();
            workers.push(
                thread::Builder::new()
                    .name(format!("fdx-serve-worker-{i}"))
                    .spawn(move || worker_loop(&state, &cfg))?,
            );
        }

        let acceptor = {
            let state = Arc::clone(&state);
            let cfg = config.clone();
            thread::Builder::new()
                .name("fdx-serve-acceptor".to_string())
                .spawn(move || acceptor_loop(listener, &state, &cfg))?
        };

        Ok(ServerHandle {
            addr,
            state,
            config,
            recovery,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves the ephemeral port of `127.0.0.1:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// What the startup recovery scan found under `session_dir`: sessions
    /// and cached results rehydrated, snapshots quarantined (with typed
    /// reasons). Empty when no `session_dir` is configured.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The live session store, for introspection and tests.
    pub fn sessions(&self) -> &SessionStore {
        &self.state.sessions
    }

    /// Test hook: initiate shutdown exactly as a `shutdown` frame would.
    pub fn shutdown(&self) {
        if !self.state.is_shutting_down() {
            self.state.begin_shutdown();
        }
        // Wake the acceptor out of its blocking accept so it can observe
        // the flag and exit; a no-payload connection reads as EOF.
        let _ = TcpStream::connect(self.addr);
    }

    /// Block until shutdown begins (via a `shutdown` frame or
    /// [`ServerHandle::shutdown`]), drain under the configured timeout,
    /// flush the final metrics snapshot, and return the tally.
    pub fn wait(mut self) -> ServeReport {
        {
            let mut started = lock_recover(&self.state.shutdown_started);
            while !*started {
                started = self
                    .state
                    .shutdown_cv
                    .wait(started)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
        // Make sure the acceptor is awake even if shutdown came in through
        // a frame on a connection the acceptor already finished with.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }

        // Drain: wait for queued + in-flight work, bounded by the timeout.
        let drain = Span::enter("serve.drain");
        let mut timed_out = false;
        {
            let mut inner = lock_recover(&self.state.inner);
            loop {
                if inner.queue.is_empty() && inner.in_flight == 0 {
                    break;
                }
                let remaining = self.config.drain_timeout_secs - drain.elapsed_secs();
                if remaining <= 0.0 {
                    timed_out = true;
                    self.state.abandon.store(true, Ordering::Release);
                    // Answer everything still queued; in-flight work cannot
                    // be cancelled and is detached below.
                    while let Some(job) = inner.queue.pop_front() {
                        // fdx-allow: L010 monotonic tally; exact totals are read after threads join
                        self.state.abandoned.fetch_add(1, Ordering::Relaxed);
                        counter_add("fdx.serve.abandoned", 1);
                        let Job {
                            req,
                            mut stream,
                            wait,
                            session: _,
                        } = job;
                        journal_unserved(&req, codes::SHUTTING_DOWN, wait.elapsed_secs());
                        write_reply(
                            &mut stream,
                            &protocol::error_frame(
                                &req.id,
                                codes::SHUTTING_DOWN,
                                "server drain timed out before this request ran",
                            ),
                        );
                    }
                    gauge_set("fdx.serve.queue_depth", 0.0);
                    break;
                }
                let (guard, _) = self
                    .state
                    .drained
                    .wait_timeout(inner, Duration::from_secs_f64(remaining.min(0.05)))
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
            }
        }
        drop(drain);

        if timed_out {
            // Workers may be stuck mid-request; detach rather than block
            // past the drain deadline. (On CLI exit the process teardown
            // reaps them; in tests they finish and answer late.)
            self.workers.clear();
        } else {
            self.state.job_ready.notify_all();
            for w in self.workers.drain(..) {
                let _ = w.join();
            }
        }

        let report = ServeReport {
            requests: self.state.requests.load(Ordering::Relaxed),
            completed: self.state.completed.load(Ordering::Relaxed),
            shed: self.state.shed.load(Ordering::Relaxed),
            panics: self.state.panics.load(Ordering::Relaxed),
            bad_frames: self.state.bad_frames.load(Ordering::Relaxed),
            deadline_exceeded: self.state.deadline_exceeded.load(Ordering::Relaxed),
            abandoned: self.state.abandoned.load(Ordering::Relaxed),
            stats_requests: self.state.stats_requests.load(Ordering::Relaxed),
            drain_timed_out: timed_out,
        };

        if let Some(path) = &self.config.metrics_path {
            let snap = fdx_obs::Registry::global().snapshot();
            let _ = fdx_obs::write_atomic(path, &fdx_obs::export_jsonl(&snap));
        }
        if let Some(path) = &self.config.journal_path {
            let _ = fdx_obs::write_atomic(path, &Journal::global().export_jsonl());
        }
        report
    }
}

/// Journal a request the pipeline never ran (shed or abandoned): no phase
/// timings, rung 0, outcome = the error code it was answered with.
fn journal_unserved(req: &RequestFrame, outcome: &str, queue_wait_secs: f64) {
    Journal::global().record(JournalEntry {
        seq: 0,
        id: req.id.clone(),
        outcome: outcome.to_string(),
        session: req.dataset.clone(),
        queue_wait_secs,
        total_secs: 0.0,
        phases: Vec::new(),
        rung: 0,
        threads: req.threads.unwrap_or(1),
    });
}

/// Journal a session op (`upload`/`open`/`close`, or a cached discover)
/// answered on the connection thread.
fn journal_session_op(id: &str, outcome: &str, session: Option<String>, total_secs: f64) {
    Journal::global().record(JournalEntry {
        seq: 0,
        id: id.to_string(),
        outcome: outcome.to_string(),
        session,
        queue_wait_secs: 0.0,
        total_secs,
        phases: Vec::new(),
        rung: 0,
        threads: 1,
    });
}

fn acceptor_loop(listener: TcpListener, state: &Arc<State>, cfg: &ServeConfig) {
    for conn in listener.incoming() {
        if state.is_shutting_down() {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        // Each connection gets its own (bounded) thread: a client that
        // stalls mid-frame wedges one thread until its read times out —
        // never the accept loop. Beyond the cap, reject inline with a
        // typed reply; the write lands in the socket buffer, so it cannot
        // stall the acceptor either.
        if state.conns_active.load(Ordering::Acquire) >= cfg.max_conns as u64 {
            counter_add("fdx.session.conn_rejected", 1);
            write_reply(
                &mut stream,
                &protocol::error_frame(
                    "",
                    codes::OVERLOADED,
                    &format!("too many concurrent connections (cap {})", cfg.max_conns),
                ),
            );
            continue;
        }
        // fdx-allow: L010 connection gauge; paired fetch_sub on thread exit, read for admission only
        state.conns_active.fetch_add(1, Ordering::AcqRel);
        let conn_state = Arc::clone(state);
        let conn_cfg = cfg.clone();
        let spawned = thread::Builder::new()
            .name("fdx-serve-conn".to_string())
            .spawn(move || {
                // Defense in depth: the per-connection path is already
                // designed not to panic (typed errors end-to-end), but a
                // bug there must not leak the concurrency slot.
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    accept_conn(stream, &conn_state, &conn_cfg)
                }));
                // fdx-allow: L010 connection gauge; paired fetch_add at accept, read for admission only
                conn_state.conns_active.fetch_sub(1, Ordering::AcqRel);
            });
        if spawned.is_err() {
            // Thread exhaustion: the closure (and the connection with it)
            // is gone; release the reserved slot and keep accepting.
            // fdx-allow: L010 connection gauge; undoes the reservation above
            state.conns_active.fetch_sub(1, Ordering::AcqRel);
        }
        if state.is_shutting_down() {
            break;
        }
    }
}

enum ReadOutcome {
    Line(Vec<u8>),
    TooLarge,
    Eof,
}

/// Read one newline-terminated frame, bounded by the frame-size cap.
fn read_frame_line(stream: &mut TcpStream) -> io::Result<ReadOutcome> {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(if buf.is_empty() {
                ReadOutcome::Eof
            } else {
                // Tolerate a missing trailing newline on EOF.
                ReadOutcome::Line(buf)
            });
        }
        if let Some(pos) = chunk[..n].iter().position(|b| *b == b'\n') {
            buf.extend_from_slice(&chunk[..pos]);
            return Ok(ReadOutcome::Line(buf));
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.len() > protocol::MAX_FRAME_BYTES {
            return Ok(ReadOutcome::TooLarge);
        }
    }
}

fn write_reply(stream: &mut TcpStream, line: &str) {
    // The client may already be gone; a failed reply must not unwind.
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
    let _ = stream.flush();
}

fn accept_conn(mut stream: TcpStream, state: &Arc<State>, cfg: &ServeConfig) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs_f64(cfg.io_timeout_secs.max(0.01))));
    let _ = stream.set_nodelay(true);
    let line = match read_frame_line(&mut stream) {
        Err(_) | Ok(ReadOutcome::Eof) => return,
        Ok(ReadOutcome::TooLarge) => {
            // fdx-allow: L010 monotonic tally; exact totals are read after threads join
            state.bad_frames.fetch_add(1, Ordering::Relaxed);
            counter_add("fdx.serve.bad_request", 1);
            write_reply(
                &mut stream,
                &protocol::error_frame(
                    "",
                    codes::BAD_REQUEST,
                    &format!("frame exceeds the {} byte cap", protocol::MAX_FRAME_BYTES),
                ),
            );
            return;
        }
        Ok(ReadOutcome::Line(bytes)) => bytes,
    };
    let line = match String::from_utf8(line) {
        Ok(s) => s,
        Err(_) => {
            // fdx-allow: L010 monotonic tally; exact totals are read after threads join
            state.bad_frames.fetch_add(1, Ordering::Relaxed);
            counter_add("fdx.serve.bad_request", 1);
            write_reply(
                &mut stream,
                &protocol::error_frame("", codes::BAD_REQUEST, "frame is not valid utf-8"),
            );
            return;
        }
    };

    match protocol::parse_frame(line.trim_end_matches('\r')) {
        Err(e) => {
            // fdx-allow: L010 monotonic tally; exact totals are read after threads join
            state.bad_frames.fetch_add(1, Ordering::Relaxed);
            counter_add("fdx.serve.bad_request", 1);
            write_reply(
                &mut stream,
                &protocol::error_frame("", codes::BAD_REQUEST, &e.detail),
            );
        }
        Ok(Frame::Shutdown { id }) => {
            write_reply(&mut stream, &protocol::shutdown_ack(&id));
            state.begin_shutdown();
        }
        Ok(Frame::Stats { id, journal }) => {
            // Answered right here on the accept thread: a brief queue-lock
            // peek plus lock-cheap snapshots, never the discovery pipeline —
            // so stats stays responsive when every worker is busy or wedged.
            // fdx-allow: L010 monotonic tally; exact totals are read after threads join
            state.stats_requests.fetch_add(1, Ordering::Relaxed);
            counter_add("fdx.serve.stats", 1);
            let (queue_depth, inflight) = {
                let inner = lock_recover(&state.inner);
                (inner.queue.len(), inner.in_flight)
            };
            let stats = ServerStats {
                uptime_secs: state.started.elapsed_secs(),
                workers: state.workers,
                queue_depth,
                queue_cap: cfg.queue_cap,
                inflight,
                requests: state.requests.load(Ordering::Relaxed),
                completed: state.completed.load(Ordering::Relaxed),
                shed: state.shed.load(Ordering::Relaxed),
                panics: state.panics.load(Ordering::Relaxed),
                bad_frames: state.bad_frames.load(Ordering::Relaxed),
                deadline_exceeded: state.deadline_exceeded.load(Ordering::Relaxed),
                abandoned: state.abandoned.load(Ordering::Relaxed),
                stats_requests: state.stats_requests.load(Ordering::Relaxed),
            };
            let snap = fdx_obs::Registry::global().snapshot();
            let tail = Journal::global().tail(journal);
            write_reply(
                &mut stream,
                &protocol::stats_frame(&id, &stats, &snap, &tail),
            );
        }
        Ok(Frame::Upload { id, csv, chaos }) => {
            if !cfg.chaos && !chaos.is_empty() {
                // fdx-allow: L010 monotonic tally; exact totals are read after threads join
                state.bad_frames.fetch_add(1, Ordering::Relaxed);
                counter_add("fdx.serve.bad_request", 1);
                write_reply(
                    &mut stream,
                    &protocol::error_frame(
                        &id,
                        codes::BAD_REQUEST,
                        "chaos requested but the server was not started with --chaos",
                    ),
                );
                return;
            }
            let op = Stopwatch::start();
            let _chaos_guards = arm_chaos(&chaos);
            match state.sessions.upload(&csv) {
                Ok(up) => {
                    let hex = handle_hex(up.handle);
                    journal_session_op(&id, "upload", Some(hex.clone()), op.elapsed_secs());
                    write_reply(
                        &mut stream,
                        &protocol::upload_ok(&id, &hex, up.bytes, up.deduped),
                    );
                }
                Err(err) => {
                    let code = session_error_code(&err);
                    journal_session_op(&id, code, None, op.elapsed_secs());
                    write_reply(
                        &mut stream,
                        &protocol::error_frame(&id, code, &err.to_string()),
                    );
                }
            }
        }
        Ok(Frame::Open { id, dataset }) => {
            let op = Stopwatch::start();
            match parse_handle(&dataset) {
                None => {
                    // fdx-allow: L010 monotonic tally; exact totals are read after threads join
                    state.bad_frames.fetch_add(1, Ordering::Relaxed);
                    counter_add("fdx.serve.bad_request", 1);
                    write_reply(
                        &mut stream,
                        &protocol::error_frame(
                            &id,
                            codes::BAD_REQUEST,
                            "\"dataset\" must be a 16-hex-digit handle",
                        ),
                    );
                }
                Some(handle) => match state.sessions.open(handle) {
                    Ok(opened) => {
                        journal_session_op(&id, "open", Some(dataset.clone()), op.elapsed_secs());
                        write_reply(
                            &mut stream,
                            &protocol::open_ok(
                                &id,
                                &dataset,
                                opened.dataset.ncols() as u64,
                                opened.dataset.nrows() as u64,
                                opened.source,
                            ),
                        );
                    }
                    Err(err) => {
                        let code = session_error_code(&err);
                        journal_session_op(&id, code, Some(dataset.clone()), op.elapsed_secs());
                        write_reply(
                            &mut stream,
                            &protocol::error_frame(&id, code, &err.to_string()),
                        );
                    }
                },
            }
        }
        Ok(Frame::Close { id, dataset }) => {
            let op = Stopwatch::start();
            match parse_handle(&dataset) {
                None => {
                    // fdx-allow: L010 monotonic tally; exact totals are read after threads join
                    state.bad_frames.fetch_add(1, Ordering::Relaxed);
                    counter_add("fdx.serve.bad_request", 1);
                    write_reply(
                        &mut stream,
                        &protocol::error_frame(
                            &id,
                            codes::BAD_REQUEST,
                            "\"dataset\" must be a 16-hex-digit handle",
                        ),
                    );
                }
                Some(handle) => {
                    let was_resident = state.sessions.close(handle);
                    journal_session_op(&id, "close", Some(dataset.clone()), op.elapsed_secs());
                    write_reply(
                        &mut stream,
                        &protocol::close_ok(&id, &dataset, was_resident),
                    );
                }
            }
        }
        Ok(Frame::Discover(req)) => {
            if !cfg.chaos && !req.chaos.is_empty() {
                // fdx-allow: L010 monotonic tally; exact totals are read after threads join
                state.bad_frames.fetch_add(1, Ordering::Relaxed);
                counter_add("fdx.serve.bad_request", 1);
                write_reply(
                    &mut stream,
                    &protocol::error_frame(
                        &req.id,
                        codes::BAD_REQUEST,
                        "chaos requested but the server was not started with --chaos",
                    ),
                );
                return;
            }
            // Resolve a dataset-handle discover against the session store
            // on this connection's thread: a cache hit replays the
            // persisted reply core without ever touching the worker queue.
            let mut session_job = None;
            if let Some(dataset) = &req.dataset {
                let service = Stopwatch::start();
                let Some(handle) = parse_handle(dataset) else {
                    // fdx-allow: L010 monotonic tally; exact totals are read after threads join
                    state.bad_frames.fetch_add(1, Ordering::Relaxed);
                    counter_add("fdx.serve.bad_request", 1);
                    write_reply(
                        &mut stream,
                        &protocol::error_frame(
                            &req.id,
                            codes::BAD_REQUEST,
                            "\"dataset\" must be a 16-hex-digit handle",
                        ),
                    );
                    return;
                };
                // Session faults (e.g. `session.evict_during_open`) fire on
                // this connection's thread where the open actually runs;
                // the guards drop before the job is enqueued and the
                // worker re-arms compute faults when it picks the job up.
                let opened = {
                    let _chaos_guards = arm_chaos(&req.chaos);
                    match state.sessions.open(handle) {
                        Ok(o) => o,
                        Err(err) => {
                            let code = session_error_code(&err);
                            journal_session_op(&req.id, code, Some(dataset.clone()), 0.0);
                            write_reply(
                                &mut stream,
                                &protocol::error_frame(&req.id, code, &err.to_string()),
                            );
                            return;
                        }
                    }
                };
                let config = build_config(&req);
                let fingerprint = session::config_fingerprint(&config);
                let base_fingerprint = session::base_fingerprint(&config);
                // Chaos and trace requests must actually run (the first to
                // exercise the injected fault, the second to produce a
                // fresh waterfall), so they bypass the lookup — though a
                // chaos-free trace run still *stores* its result below.
                if req.chaos.is_empty() && !req.trace {
                    if let Some(hit) = state.sessions.lookup_result(handle, fingerprint) {
                        // fdx-allow: L010 monotonic tally; exact totals are read after threads join
                        state.requests.fetch_add(1, Ordering::Relaxed);
                        counter_add("fdx.serve.requests", 1);
                        // fdx-allow: L010 monotonic tally; exact totals are read after threads join
                        state.completed.fetch_add(1, Ordering::Relaxed);
                        counter_add("fdx.serve.completed", 1);
                        journal_session_op(
                            &req.id,
                            "cached",
                            Some(dataset.clone()),
                            service.elapsed_secs(),
                        );
                        write_reply(
                            &mut stream,
                            &protocol::cached_ok_frame(
                                &req.id,
                                &hit.core,
                                0.0,
                                service.elapsed_secs(),
                            ),
                        );
                        return;
                    }
                }
                let warm = state
                    .sessions
                    .warm_start_for(handle, base_fingerprint, config.sparsity);
                session_job = Some(SessionJob {
                    handle,
                    fingerprint,
                    base_fingerprint,
                    lambda: config.sparsity,
                    dataset: opened.dataset,
                    warm,
                });
            }
            if state.is_shutting_down() {
                journal_unserved(&req, codes::SHUTTING_DOWN, 0.0);
                write_reply(
                    &mut stream,
                    &protocol::error_frame(
                        &req.id,
                        codes::SHUTTING_DOWN,
                        "server is shutting down",
                    ),
                );
                return;
            }
            let mut inner = lock_recover(&state.inner);
            if inner.queue.len() >= cfg.queue_cap {
                drop(inner);
                // fdx-allow: L010 monotonic tally; exact totals are read after threads join
                state.shed.fetch_add(1, Ordering::Relaxed);
                counter_add("fdx.serve.shed", 1);
                journal_unserved(&req, codes::OVERLOADED, 0.0);
                write_reply(
                    &mut stream,
                    &protocol::error_frame(
                        &req.id,
                        codes::OVERLOADED,
                        &format!("request queue is full (cap {})", cfg.queue_cap),
                    ),
                );
                return;
            }
            // fdx-allow: L010 monotonic tally; exact totals are read after threads join
            state.requests.fetch_add(1, Ordering::Relaxed);
            counter_add("fdx.serve.requests", 1);
            inner.queue.push_back(Job {
                req,
                stream,
                wait: Stopwatch::start(),
                session: session_job,
            });
            gauge_set("fdx.serve.queue_depth", inner.queue.len() as f64);
            drop(inner);
            state.job_ready.notify_one();
        }
    }
}

fn worker_loop(state: &Arc<State>, cfg: &ServeConfig) {
    loop {
        let job = {
            let mut inner = lock_recover(&state.inner);
            loop {
                if let Some(job) = inner.queue.pop_front() {
                    inner.in_flight += 1;
                    gauge_set("fdx.serve.queue_depth", inner.queue.len() as f64);
                    break Some(job);
                }
                if state.is_shutting_down() {
                    break None;
                }
                inner = state
                    .job_ready
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(job) = job else {
            // Queue drained under shutdown: wake siblings and exit.
            state.job_ready.notify_all();
            return;
        };

        if state.abandon.load(Ordering::Acquire) {
            let Job {
                req,
                mut stream,
                wait,
                session: _,
            } = job;
            // fdx-allow: L010 monotonic tally; exact totals are read after threads join
            state.abandoned.fetch_add(1, Ordering::Relaxed);
            counter_add("fdx.serve.abandoned", 1);
            journal_unserved(&req, codes::SHUTTING_DOWN, wait.elapsed_secs());
            write_reply(
                &mut stream,
                &protocol::error_frame(
                    &req.id,
                    codes::SHUTTING_DOWN,
                    "server drain timed out before this request ran",
                ),
            );
        } else {
            process_job(state, cfg, job);
        }

        let mut inner = lock_recover(&state.inner);
        inner.in_flight -= 1;
        if inner.queue.is_empty() && inner.in_flight == 0 {
            state.drained.notify_all();
        }
    }
}

/// How a request left the isolation boundary: a full result (plus the
/// dataset, whose schema renders the FDs) or a typed failure.
enum Handled {
    Done(Box<FdxResult>, Arc<Dataset>),
    Failed { code: &'static str, detail: String },
}

/// Run one request under the panic-isolation boundary, answer it, and
/// journal the outcome.
fn process_job(state: &Arc<State>, _cfg: &ServeConfig, job: Job) {
    let Job {
        req,
        mut stream,
        wait,
        session,
    } = job;
    let queue_wait = wait.elapsed_secs();
    observe("fdx.serve.queue_wait_ms", (queue_wait * 1e3) as u64);
    let service = Stopwatch::start();
    if req.trace {
        // Discard roots accumulated by earlier (untraced) requests on this
        // worker so the capture below holds exactly this request's tree.
        let _ = fdx_obs::take_trace();
    }
    let request_span = Span::enter("serve.request");
    let id = req.id.clone();

    let outcome = catch_unwind(AssertUnwindSafe(|| {
        handle_discover(state, &req, queue_wait, session.as_ref())
    }));
    drop(request_span);
    let trace = req.trace.then(|| {
        let roots = fdx_obs::take_trace();
        match roots.into_iter().next() {
            Some(root) if root.name == "serve.request" => root.children,
            Some(root) => vec![root],
            None => Vec::new(),
        }
    });

    let (reply, journal_outcome, rung, total_secs, phases) = match outcome {
        Ok(Handled::Done(result, dataset)) => {
            let reply = protocol::ok_frame(
                &req.id,
                &result,
                dataset.schema(),
                queue_wait,
                trace.as_deref(),
            );
            let phases = result
                .timings
                .phases()
                .iter()
                .map(|(name, secs)| (name.to_string(), *secs))
                .collect();
            (
                reply,
                result.health.outcome_code().to_string(),
                result.health.rung.index() as u8,
                result.timings.total_secs(),
                phases,
            )
        }
        Ok(Handled::Failed { code, detail }) => (
            protocol::error_frame(&id, code, &detail),
            code.to_string(),
            0,
            service.elapsed_secs(),
            Vec::new(),
        ),
        Err(_) => {
            // fdx-allow: L010 monotonic tally; exact totals are read after threads join
            state.panics.fetch_add(1, Ordering::Relaxed);
            counter_add("fdx.serve.panics", 1);
            (
                protocol::error_frame(
                    &id,
                    codes::PANIC,
                    "request handler panicked; worker recovered and the server keeps serving",
                ),
                codes::PANIC.to_string(),
                0,
                service.elapsed_secs(),
                Vec::new(),
            )
        }
    };
    observe(
        "fdx.serve.service_ms",
        (service.elapsed_secs() * 1e3) as u64,
    );
    Journal::global().record(JournalEntry {
        seq: 0,
        id,
        outcome: journal_outcome,
        session: session.map(|s| handle_hex(s.handle)),
        queue_wait_secs: queue_wait,
        total_secs,
        phases,
        rung,
        threads: req.threads.unwrap_or(1),
    });
    // fdx-allow: L010 monotonic tally; exact totals are read after threads join
    state.completed.fetch_add(1, Ordering::Relaxed);
    counter_add("fdx.serve.completed", 1);
    write_reply(&mut stream, &reply);
}

/// Arm chaos faults on this thread only. The returned guards disarm on
/// drop — including during an unwind — so a faulted or panicking request
/// can never contaminate the next one on this thread.
fn arm_chaos(specs: &[ChaosSpec]) -> Vec<ArmedFault> {
    specs
        .iter()
        .map(|c| match (c.times, c.value) {
            (_, Some(v)) => faults::arm_value(c.point, v),
            (Some(t), None) => faults::arm_times(c.point, t),
            (None, None) => faults::arm(c.point),
        })
        .collect()
}

/// Map a session-layer failure to its protocol error code.
fn session_error_code(err: &SessionError) -> &'static str {
    match err {
        SessionError::NotFound { .. } => codes::SESSION_NOT_FOUND,
        SessionError::DiskFull { .. } => codes::DISK_FULL,
        SessionError::Upload { .. } => codes::UPLOAD_ERROR,
        SessionError::Corrupt { .. } => codes::SNAPSHOT_CORRUPT,
    }
}

/// Resolve a request's pipeline configuration. Pure: the same frame always
/// yields the same config, which is what makes the session layer's config
/// fingerprints (and therefore its cache keys) stable.
fn build_config(req: &RequestFrame) -> FdxConfig {
    let mut config = match req.seed {
        Some(seed) => FdxConfig::with_seed(seed),
        None => FdxConfig::default(),
    };
    if let Some(t) = req.threshold {
        config = config.with_threshold(t);
    }
    if let Some(s) = req.sparsity {
        config = config.with_sparsity(s);
    }
    if let Some(m) = req.min_lift {
        config.min_lift = m;
    }
    if let Some(v) = req.validate {
        config.validate = v;
    }
    // The worker pool already provides request-level parallelism; kernel
    // threads stay at 1 unless the client asks, so `threads × workers`
    // can't silently oversubscribe the box.
    config.with_threads(req.threads.unwrap_or(1))
}

fn handle_discover(
    state: &Arc<State>,
    req: &RequestFrame,
    queue_wait: f64,
    session: Option<&SessionJob>,
) -> Handled {
    let _chaos_guards = arm_chaos(&req.chaos);

    // Serve-level fault points, inside the isolation boundary.
    if let Some(secs) = faults::value("serve.stall") {
        thread::sleep(Duration::from_secs_f64(secs.clamp(0.0, 60.0)));
    }
    if faults::fire("serve.force_panic") {
        std::panic::panic_any("injected fault: serve.force_panic".to_string());
    }

    let mut config = build_config(req);
    if let Some(s) = session {
        if let Some(warm) = &s.warm {
            counter_add("fdx.session.warm_starts", 1);
            config = config.with_glasso_warm_start(warm.clone());
        }
    }

    if let Some(deadline_ms) = req.deadline_ms {
        let remaining = deadline_ms as f64 / 1000.0 - queue_wait;
        if remaining <= 0.0 {
            // fdx-allow: L010 monotonic tally; exact totals are read after threads join
            state.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            counter_add("fdx.serve.deadline_exceeded", 1);
            return Handled::Failed {
                code: codes::DEADLINE_EXCEEDED,
                detail: format!(
                    "deadline of {deadline_ms} ms expired after {queue_wait:.3} s in the queue"
                ),
            };
        }
        config = config.with_time_budget(remaining);
    }

    let (dataset, ingest_health) = if let Some(s) = session {
        // Session dataset, already resident (opened on the connection
        // thread at enqueue time); shared, not copied.
        (Arc::clone(&s.dataset), None)
    } else if let Some(path) = &req.path {
        // Server-side dataset: stream it through the chunked reader with
        // the skip policy, so one malformed row degrades the reply (visible
        // in its `source` block and health) instead of failing it.
        let icfg = IngestConfig {
            on_bad_row: BadRowPolicy::Skip,
            memory_budget: config.memory_budget,
            ..IngestConfig::default()
        };
        match ingest_csv_file(path, &icfg) {
            Ok(ingested) => (Arc::new(ingested.dataset), Some(ingested.health)),
            Err(e) => {
                let (code, detail) = protocol::map_fdx_error(&FdxError::from(e));
                return Handled::Failed { code, detail };
            }
        }
    } else {
        match read_csv_str(&req.csv) {
            Ok(ds) => (Arc::new(ds), None),
            Err(e) => {
                // fdx-allow: L010 monotonic tally; exact totals are read after threads join
                state.bad_frames.fetch_add(1, Ordering::Relaxed);
                counter_add("fdx.serve.bad_request", 1);
                return Handled::Failed {
                    code: codes::BAD_REQUEST,
                    detail: format!("csv: {e}"),
                };
            }
        }
    };

    match Fdx::new(config).discover(&dataset) {
        Ok(mut result) => {
            result.health.ingest = ingest_health;
            if let Some(s) = session {
                if req.chaos.is_empty() && !result.health.degraded() {
                    // Cache only pristine, chaos-free runs — degraded or
                    // fault-injected results must never be replayed as
                    // canonical. The entry carries the reply core
                    // byte-for-byte plus the converged glasso iterate for
                    // future warm starts; a persist failure skips caching
                    // but never fails the computed reply.
                    let core = protocol::result_core(&result, dataset.schema());
                    let _ = state.sessions.store_result(CachedResult {
                        handle: s.handle,
                        fingerprint: s.fingerprint,
                        base_fingerprint: s.base_fingerprint,
                        lambda: s.lambda,
                        core,
                        warm: result.glasso_warm.clone(),
                    });
                }
            }
            Handled::Done(Box::new(result), dataset)
        }
        Err(err) => {
            if matches!(err, FdxError::BudgetExceeded { .. }) {
                // fdx-allow: L010 monotonic tally; exact totals are read after threads join
                state.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                counter_add("fdx.serve.deadline_exceeded", 1);
            }
            let (code, detail) = protocol::map_fdx_error(&err);
            Handled::Failed { code, detail }
        }
    }
}
