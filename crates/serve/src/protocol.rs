//! Wire protocol of the discovery service: line-delimited JSON frames.
//!
//! One request per connection: the client connects, writes a single
//! newline-terminated JSON object, reads a single newline-terminated JSON
//! reply, and the connection closes. The full frame schema is documented
//! in DESIGN.md §11.
//!
//! Request frames:
//!
//! ```json
//! {"op":"discover","id":"r1","csv":"zip,city\n...","deadline_ms":5000,
//!  "threshold":0.08,"sparsity":0.05,"min_lift":0.0,"seed":7,"threads":2,
//!  "validate":true,"chaos":["glasso.force_no_converge",
//!  {"point":"clock.skew","value":1e6},{"point":"udut.force_not_pd","times":1}]}
//! {"op":"shutdown","id":"ops-1"}
//! ```
//!
//! `op` defaults to `"discover"`. Unknown keys, unknown ops, wrong types,
//! and unknown chaos points are all typed `bad_request` rejections — the
//! parser is strict so that a malformed frame can never be half-honored.

use crate::json::{self, JsonValue};
use fdx_core::{FdxError, FdxResult};
use fdx_data::Schema;
use fdx_obs::json::{array, escape, Obj};
use std::fmt;

/// Hard cap on a single request frame, in bytes. Bounds per-connection
/// memory before a frame is even parsed (load shedding bounds the rest).
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Fault points a request may arm through the `chaos` field, mapped to the
/// `&'static str` names `fdx_obs::faults` requires. `serve.stall` (worker
/// sleeps `value` seconds) and `serve.force_panic` (worker panics inside
/// the isolation boundary) live in this crate; the rest are the pipeline
/// fault points from PR 3.
pub const FAULT_POINTS: &[&str] = &[
    "glasso.force_no_converge",
    "covariance.inject_nan",
    "udut.force_not_pd",
    "inversion.force_fail",
    "clock.skew",
    "serve.force_panic",
    "serve.stall",
];

/// Typed error codes carried in `"code"` of an error frame.
pub mod codes {
    /// Frame failed to parse or validate; also covers chaos requests when
    /// the server was not started with `--chaos`.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The bounded request queue is full; retry after backoff.
    pub const OVERLOADED: &str = "overloaded";
    /// The request's `deadline_ms` expired (either in the queue or via the
    /// pipeline's `BudgetExceeded` path).
    pub const DEADLINE_EXCEEDED: &str = "deadline_exceeded";
    /// Dataset too small for structure learning.
    pub const INSUFFICIENT_DATA: &str = "insufficient_data";
    /// The pipeline failed after exhausting the recovery ladder.
    pub const DISCOVER_ERROR: &str = "discover_error";
    /// The request handler panicked; the worker recovered and the process
    /// keeps serving.
    pub const PANIC: &str = "panic";
    /// The server is draining and no longer accepts work.
    pub const SHUTTING_DOWN: &str = "shutting_down";
}

/// One armed fault from a request's `chaos` array.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Interned fault-point name (one of [`FAULT_POINTS`]).
    pub point: &'static str,
    /// Fire at most this many times (`None` = unlimited).
    pub times: Option<u64>,
    /// Value payload for value-carrying points like `clock.skew`.
    pub value: Option<f64>,
}

/// A parsed `op: "discover"` request.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RequestFrame {
    pub id: String,
    pub csv: String,
    pub deadline_ms: Option<u64>,
    pub threshold: Option<f64>,
    pub sparsity: Option<f64>,
    pub min_lift: Option<f64>,
    pub seed: Option<u64>,
    pub threads: Option<usize>,
    pub validate: Option<bool>,
    pub chaos: Vec<ChaosSpec>,
}

/// Any well-formed frame the acceptor understands.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    Discover(Box<RequestFrame>),
    Shutdown { id: String },
}

/// Frame rejection; always surfaces as a [`codes::BAD_REQUEST`] reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError {
    pub detail: String,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.detail)
    }
}

fn bad(detail: impl Into<String>) -> FrameError {
    FrameError {
        detail: detail.into(),
    }
}

/// Look up the interned name for a request-supplied fault point.
pub fn intern_fault_point(name: &str) -> Option<&'static str> {
    FAULT_POINTS.iter().find(|p| **p == name).copied()
}

/// Parse one request line into a typed frame. Strict: unknown keys or ops,
/// wrong field types, and unknown chaos points are errors.
pub fn parse_frame(line: &str) -> Result<Frame, FrameError> {
    if line.len() > MAX_FRAME_BYTES {
        return Err(bad(format!(
            "frame of {} bytes exceeds the {} byte cap",
            line.len(),
            MAX_FRAME_BYTES
        )));
    }
    let v = json::parse(line).map_err(|e| bad(e.to_string()))?;
    let fields = match &v {
        JsonValue::Obj(fields) => fields,
        _ => return Err(bad("frame must be a json object")),
    };
    let op = match v.get("op") {
        None => "discover",
        Some(o) => o.as_str().ok_or_else(|| bad("\"op\" must be a string"))?,
    };
    let id = match v.get("id") {
        None => String::new(),
        Some(i) => i
            .as_str()
            .ok_or_else(|| bad("\"id\" must be a string"))?
            .to_string(),
    };
    match op {
        "shutdown" => {
            for (k, _) in fields {
                if k != "op" && k != "id" {
                    return Err(bad(format!("unknown key {k:?} in shutdown frame")));
                }
            }
            Ok(Frame::Shutdown { id })
        }
        "discover" => {
            let mut req = RequestFrame {
                id,
                ..RequestFrame::default()
            };
            let mut saw_csv = false;
            for (k, val) in fields {
                match k.as_str() {
                    "op" | "id" => {}
                    "csv" => {
                        req.csv = val
                            .as_str()
                            .ok_or_else(|| bad("\"csv\" must be a string"))?
                            .to_string();
                        saw_csv = true;
                    }
                    "deadline_ms" => {
                        req.deadline_ms = Some(val.as_u64().ok_or_else(|| {
                            bad("\"deadline_ms\" must be a non-negative integer")
                        })?);
                    }
                    "threshold" | "sparsity" | "min_lift" => {
                        let f = val
                            .as_f64()
                            .filter(|f| f.is_finite())
                            .ok_or_else(|| bad(format!("{k:?} must be a finite number")))?;
                        match k.as_str() {
                            "threshold" => req.threshold = Some(f),
                            "sparsity" => req.sparsity = Some(f),
                            _ => req.min_lift = Some(f),
                        }
                    }
                    "seed" => {
                        req.seed = Some(
                            val.as_u64()
                                .ok_or_else(|| bad("\"seed\" must be a non-negative integer"))?,
                        );
                    }
                    "threads" => {
                        let t = val
                            .as_u64()
                            .filter(|t| *t >= 1)
                            .ok_or_else(|| bad("\"threads\" must be a positive integer"))?;
                        req.threads = Some(t as usize);
                    }
                    "validate" => {
                        req.validate = Some(
                            val.as_bool()
                                .ok_or_else(|| bad("\"validate\" must be a boolean"))?,
                        );
                    }
                    "chaos" => {
                        let arr = val
                            .as_arr()
                            .ok_or_else(|| bad("\"chaos\" must be an array"))?;
                        for item in arr {
                            req.chaos.push(parse_chaos_spec(item)?);
                        }
                    }
                    other => return Err(bad(format!("unknown key {other:?} in discover frame"))),
                }
            }
            if !saw_csv {
                return Err(bad("discover frame requires a \"csv\" field"));
            }
            Ok(Frame::Discover(Box::new(req)))
        }
        other => Err(bad(format!("unknown op {other:?}"))),
    }
}

fn parse_chaos_spec(item: &JsonValue) -> Result<ChaosSpec, FrameError> {
    match item {
        JsonValue::Str(name) => {
            let point = intern_fault_point(name)
                .ok_or_else(|| bad(format!("unknown chaos point {name:?}")))?;
            Ok(ChaosSpec {
                point,
                times: None,
                value: None,
            })
        }
        JsonValue::Obj(fields) => {
            let name = item
                .get("point")
                .and_then(|p| p.as_str())
                .ok_or_else(|| bad("chaos entry requires a string \"point\""))?;
            let point = intern_fault_point(name)
                .ok_or_else(|| bad(format!("unknown chaos point {name:?}")))?;
            let mut spec = ChaosSpec {
                point,
                times: None,
                value: None,
            };
            for (k, v) in fields {
                match k.as_str() {
                    "point" => {}
                    "times" => {
                        spec.times = Some(v.as_u64().ok_or_else(|| {
                            bad("chaos \"times\" must be a non-negative integer")
                        })?);
                    }
                    "value" => {
                        spec.value = Some(
                            v.as_f64()
                                .filter(|f| f.is_finite())
                                .ok_or_else(|| bad("chaos \"value\" must be a finite number"))?,
                        );
                    }
                    other => return Err(bad(format!("unknown key {other:?} in chaos entry"))),
                }
            }
            Ok(spec)
        }
        _ => Err(bad("chaos entries must be strings or objects")),
    }
}

impl RequestFrame {
    /// Serialize back to a single request line (client side). Inverse of
    /// [`parse_frame`] for well-formed frames.
    pub fn to_line(&self) -> String {
        let mut o = Obj::new()
            .str_("op", "discover")
            .str_("id", &self.id)
            .str_("csv", &self.csv);
        if let Some(d) = self.deadline_ms {
            o = o.u64_("deadline_ms", d);
        }
        if let Some(t) = self.threshold {
            o = o.f64_("threshold", t);
        }
        if let Some(s) = self.sparsity {
            o = o.f64_("sparsity", s);
        }
        if let Some(m) = self.min_lift {
            o = o.f64_("min_lift", m);
        }
        if let Some(s) = self.seed {
            o = o.u64_("seed", s);
        }
        if let Some(t) = self.threads {
            o = o.u64_("threads", t as u64);
        }
        if let Some(v) = self.validate {
            o = o.bool_("validate", v);
        }
        if !self.chaos.is_empty() {
            let specs: Vec<String> = self
                .chaos
                .iter()
                .map(|c| {
                    let mut co = Obj::new().str_("point", c.point);
                    if let Some(t) = c.times {
                        co = co.u64_("times", t);
                    }
                    if let Some(v) = c.value {
                        co = co.f64_("value", v);
                    }
                    co.finish()
                })
                .collect();
            o = o.raw("chaos", &array(specs));
        }
        o.finish()
    }
}

/// A shutdown request line, for clients and tests.
pub fn shutdown_line(id: &str) -> String {
    Obj::new().str_("op", "shutdown").str_("id", id).finish()
}

/// Build the success reply for a completed discover request.
pub fn ok_frame(id: &str, result: &FdxResult, schema: &Schema, queue_wait_secs: f64) -> String {
    let fds: Vec<String> = result
        .fds
        .iter()
        .map(|fd| format!("\"{}\"", escape(&fd.display(schema).to_string())))
        .collect();
    Obj::new()
        .str_("id", id)
        .str_("status", "ok")
        .u64_("attrs", schema.len() as u64)
        .raw("fds", &array(fds))
        .u64_("edges", result.fds.edge_count() as u64)
        .bool_("degraded", result.health.degraded())
        .u64_("rung", result.health.rung.index() as u64)
        .raw("health", &result.health.to_json())
        .f64_("queue_wait_secs", queue_wait_secs)
        .finish()
}

/// Build a typed error reply.
pub fn error_frame(id: &str, code: &str, detail: &str) -> String {
    Obj::new()
        .str_("id", id)
        .str_("status", "error")
        .str_("code", code)
        .str_("detail", detail)
        .finish()
}

/// Build the acknowledgement reply for a shutdown frame.
pub fn shutdown_ack(id: &str) -> String {
    Obj::new()
        .str_("id", id)
        .str_("status", "ok")
        .str_("op", "shutdown")
        .finish()
}

/// Map a pipeline error to its `(code, detail)` reply pair.
pub fn map_fdx_error(err: &FdxError) -> (&'static str, String) {
    match err {
        FdxError::BudgetExceeded { .. } => (codes::DEADLINE_EXCEEDED, err.to_string()),
        FdxError::InsufficientData { .. } => (codes::INSUFFICIENT_DATA, err.to_string()),
        FdxError::Numerical(_) | FdxError::NonFinite { .. } => {
            (codes::DISCOVER_ERROR, err.to_string())
        }
    }
}

/// A parsed reply frame, for the client and for tests.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    pub id: String,
    /// `"ok"` or `"error"`.
    pub status: String,
    /// Error code when `status == "error"`.
    pub code: Option<String>,
    /// Human-readable error detail when `status == "error"`.
    pub detail: Option<String>,
    /// Rendered FDs (`"lhs -> rhs"`) when `status == "ok"` on a discover.
    pub fds: Option<Vec<String>>,
    pub degraded: Option<bool>,
    /// Recovery-ladder rung (1 = pristine glasso).
    pub rung: Option<u64>,
    /// The full reply document for fields not lifted above.
    pub raw: JsonValue,
    /// The reply line exactly as received (trailing whitespace trimmed).
    pub line: String,
}

impl Response {
    pub fn parse(line: &str) -> Result<Response, FrameError> {
        let line = line.trim_end();
        let raw = json::parse(line).map_err(|e| bad(e.to_string()))?;
        let status = raw
            .get("status")
            .and_then(|s| s.as_str())
            .ok_or_else(|| bad("reply missing \"status\""))?
            .to_string();
        let id = raw
            .get("id")
            .and_then(|s| s.as_str())
            .unwrap_or_default()
            .to_string();
        let code = raw.get("code").and_then(|c| c.as_str()).map(String::from);
        let detail = raw.get("detail").and_then(|c| c.as_str()).map(String::from);
        let fds = raw.get("fds").and_then(|f| f.as_arr()).map(|arr| {
            arr.iter()
                .filter_map(|v| v.as_str().map(String::from))
                .collect()
        });
        let degraded = raw.get("degraded").and_then(|d| d.as_bool());
        let rung = raw.get("rung").and_then(|r| r.as_u64());
        Ok(Response {
            id,
            status,
            code,
            detail,
            fds,
            degraded,
            rung,
            raw,
            line: line.to_string(),
        })
    }

    /// The reply line exactly as received, for relaying to stdout.
    pub fn raw_line(&self) -> &str {
        &self.line
    }

    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }

    pub fn code_is(&self, code: &str) -> bool {
        self.code.as_deref() == Some(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_discover_frame() {
        let f = parse_frame(r#"{"csv":"a,b\n1,2\n"}"#).unwrap();
        match f {
            Frame::Discover(req) => {
                assert_eq!(req.csv, "a,b\n1,2\n");
                assert_eq!(req.id, "");
                assert!(req.chaos.is_empty());
            }
            other => panic!("expected discover, got {other:?}"),
        }
    }

    #[test]
    fn parses_full_discover_frame() {
        let line = r#"{"op":"discover","id":"r1","csv":"a\n1\n","deadline_ms":250,
            "threshold":0.1,"sparsity":0.05,"min_lift":0.2,"seed":7,"threads":2,
            "validate":false,"chaos":["glasso.force_no_converge",
            {"point":"clock.skew","value":1000000.0},
            {"point":"udut.force_not_pd","times":1}]}"#;
        let f = parse_frame(line).unwrap();
        let req = match f {
            Frame::Discover(req) => req,
            other => panic!("expected discover, got {other:?}"),
        };
        assert_eq!(req.deadline_ms, Some(250));
        assert_eq!(req.threads, Some(2));
        assert_eq!(req.validate, Some(false));
        assert_eq!(req.chaos.len(), 3);
        assert_eq!(req.chaos[0].point, "glasso.force_no_converge");
        assert_eq!(req.chaos[1].value, Some(1_000_000.0));
        assert_eq!(req.chaos[2].times, Some(1));
    }

    #[test]
    fn shutdown_frame_roundtrip() {
        let f = parse_frame(&shutdown_line("ops")).unwrap();
        assert_eq!(f, Frame::Shutdown { id: "ops".into() });
    }

    #[test]
    fn request_frame_to_line_roundtrips() {
        let req = RequestFrame {
            id: "x".into(),
            csv: "a,b\n\"1,\n\",2\n".into(),
            deadline_ms: Some(1000),
            threshold: Some(0.08),
            seed: Some(3),
            chaos: vec![ChaosSpec {
                point: "clock.skew",
                times: None,
                value: Some(5.0),
            }],
            ..RequestFrame::default()
        };
        let parsed = parse_frame(&req.to_line()).unwrap();
        assert_eq!(parsed, Frame::Discover(Box::new(req)));
    }

    #[test]
    fn rejects_malformed_frames_with_detail() {
        for (line, needle) in [
            ("not json", "invalid json"),
            ("[1,2]", "must be a json object"),
            (r#"{"op":"evict"}"#, "unknown op"),
            (r#"{"op":"discover"}"#, "requires a \"csv\""),
            (r#"{"csv":3}"#, "\"csv\" must be a string"),
            (r#"{"csv":"a\n","deadline_ms":-5}"#, "deadline_ms"),
            (r#"{"csv":"a\n","deadline_ms":1.5}"#, "deadline_ms"),
            (r#"{"csv":"a\n","bogus":1}"#, "unknown key"),
            (r#"{"csv":"a\n","threads":0}"#, "threads"),
            (
                r#"{"csv":"a\n","chaos":["nope.nope"]}"#,
                "unknown chaos point",
            ),
            (r#"{"csv":"a\n","chaos":[{"value":1}]}"#, "\"point\""),
            (r#"{"op":"shutdown","csv":"a\n"}"#, "unknown key"),
        ] {
            let err = parse_frame(line).unwrap_err();
            assert!(
                err.detail.contains(needle),
                "{line}: expected {needle:?} in {:?}",
                err.detail
            );
        }
    }

    #[test]
    fn oversized_frame_is_rejected_cheaply() {
        let line = format!("{{\"csv\":\"{}\"}}", "x".repeat(MAX_FRAME_BYTES));
        let err = parse_frame(&line).unwrap_err();
        assert!(err.detail.contains("byte cap"));
    }

    #[test]
    fn error_frame_parses_as_response() {
        let r = Response::parse(&error_frame("r9", codes::OVERLOADED, "queue full")).unwrap();
        assert_eq!(r.id, "r9");
        assert!(!r.is_ok());
        assert!(r.code_is(codes::OVERLOADED));
        assert_eq!(r.detail.as_deref(), Some("queue full"));
    }
}
