//! Wire protocol of the discovery service: line-delimited JSON frames.
//!
//! One request per connection: the client connects, writes a single
//! newline-terminated JSON object, reads a single newline-terminated JSON
//! reply, and the connection closes. The full frame schema is documented
//! in DESIGN.md §11.
//!
//! Request frames:
//!
//! ```json
//! {"op":"discover","id":"r1","csv":"zip,city\n...","deadline_ms":5000,
//!  "threshold":0.08,"sparsity":0.05,"min_lift":0.0,"seed":7,"threads":2,
//!  "validate":true,"chaos":["glasso.force_no_converge",
//!  {"point":"clock.skew","value":1e6},{"point":"udut.force_not_pd","times":1}]}
//! {"op":"shutdown","id":"ops-1"}
//! ```
//!
//! `op` defaults to `"discover"`. Unknown keys, unknown ops, wrong types,
//! and unknown chaos points are all typed `bad_request` rejections — the
//! parser is strict so that a malformed frame can never be half-honored.

use crate::json::{self, JsonValue};
use fdx_core::{FdxError, FdxResult};
use fdx_data::Schema;
use fdx_obs::journal::JournalEntry;
use fdx_obs::json::{array, escape, Obj};
use fdx_obs::{PhaseNode, Snapshot};
use std::fmt;

/// Hard cap on a single request frame, in bytes. Bounds per-connection
/// memory before a frame is even parsed (load shedding bounds the rest).
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Fault points a request may arm through the `chaos` field, mapped to the
/// `&'static str` names `fdx_obs::faults` requires. `serve.stall` (worker
/// sleeps `value` seconds) and `serve.force_panic` (worker panics inside
/// the isolation boundary) live in this crate; the `ingest.*` points fire
/// inside `fdx_data::ingest` when a request discovers from a `path`; the
/// rest are the pipeline fault points from PR 3.
pub const FAULT_POINTS: &[&str] = &[
    "glasso.force_no_converge",
    "covariance.inject_nan",
    "udut.force_not_pd",
    "inversion.force_fail",
    "clock.skew",
    "serve.force_panic",
    "serve.stall",
    "ingest.short_read",
    "ingest.corrupt_chunk",
    "ingest.disk_stall",
    "ingest.oom_at_chunk",
    "session.torn_write",
    "session.corrupt_crc",
    "session.disk_full",
    "session.evict_during_open",
    "session.partial_upload",
];

/// Typed error codes carried in `"code"` of an error frame.
pub mod codes {
    /// Frame failed to parse or validate; also covers chaos requests when
    /// the server was not started with `--chaos`.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The bounded request queue is full; retry after backoff.
    pub const OVERLOADED: &str = "overloaded";
    /// The request's `deadline_ms` expired (either in the queue or via the
    /// pipeline's `BudgetExceeded` path).
    pub const DEADLINE_EXCEEDED: &str = "deadline_exceeded";
    /// Dataset too small for structure learning.
    pub const INSUFFICIENT_DATA: &str = "insufficient_data";
    /// The pipeline failed after exhausting the recovery ladder.
    pub const DISCOVER_ERROR: &str = "discover_error";
    /// The ingest memory budget was exhausted even after the sampled-rows
    /// degradation rung; the request needs a larger budget (or none).
    pub const MEMORY_BUDGET: &str = "memory_budget";
    /// Loading the dataset from `path` failed (I/O, encoding, header, or a
    /// malformed row under the abort policy).
    pub const INGEST_ERROR: &str = "ingest_error";
    /// The request handler panicked; the worker recovered and the process
    /// keeps serving.
    pub const PANIC: &str = "panic";
    /// The server is draining and no longer accepts work.
    pub const SHUTTING_DOWN: &str = "shutting_down";
    /// The referenced dataset handle names no known session (never
    /// uploaded, or its snapshot was quarantined).
    pub const SESSION_NOT_FOUND: &str = "session_not_found";
    /// The upload body was incomplete or unparseable; nothing was stored.
    pub const UPLOAD_ERROR: &str = "upload_error";
    /// The snapshot store could not persist a record.
    pub const DISK_FULL: &str = "disk_full";
    /// A session snapshot failed its integrity check at open time and was
    /// quarantined; re-upload the dataset.
    pub const SNAPSHOT_CORRUPT: &str = "snapshot_corrupt";
}

/// One armed fault from a request's `chaos` array.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Interned fault-point name (one of [`FAULT_POINTS`]).
    pub point: &'static str,
    /// Fire at most this many times (`None` = unlimited).
    pub times: Option<u64>,
    /// Value payload for value-carrying points like `clock.skew`.
    pub value: Option<f64>,
}

/// A parsed `op: "discover"` request.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RequestFrame {
    pub id: String,
    pub csv: String,
    /// Server-side dataset path, streamed through `fdx_data::ingest`
    /// (chunked, bounded memory) instead of an inline `csv` body. Exactly
    /// one of `csv` / `path` / `dataset` must be present.
    pub path: Option<String>,
    /// Content-hash handle of a previously uploaded dataset (16 hex
    /// digits, as returned by an `upload` reply). Discovers from the
    /// session store instead of re-sending the data, and makes the
    /// request eligible for the discovery-result cache.
    pub dataset: Option<String>,
    pub deadline_ms: Option<u64>,
    pub threshold: Option<f64>,
    pub sparsity: Option<f64>,
    pub min_lift: Option<f64>,
    pub seed: Option<u64>,
    pub threads: Option<usize>,
    pub validate: Option<bool>,
    /// Embed the per-request phase waterfall in the reply (`"trace": true`).
    pub trace: bool,
    pub chaos: Vec<ChaosSpec>,
}

/// Default journal-tail length returned by a `stats` reply.
pub const DEFAULT_STATS_JOURNAL: usize = 16;

/// Any well-formed frame the acceptor understands.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    Discover(Box<RequestFrame>),
    Shutdown {
        id: String,
    },
    /// Live-introspection probe, answered on the accept thread.
    Stats {
        id: String,
        /// Journal-tail length to include in the reply.
        journal: usize,
    },
    /// Register a dataset with the session store; replies with its
    /// content-hash handle. Idempotent: the same bytes always hash to the
    /// same handle.
    Upload {
        id: String,
        csv: String,
        /// Session-layer fault points to arm for this upload.
        chaos: Vec<ChaosSpec>,
    },
    /// Make an uploaded dataset resident (rehydrating from its snapshot
    /// if needed) and report its shape.
    Open {
        id: String,
        dataset: String,
    },
    /// Drop a dataset from the resident set (its snapshot stays on disk).
    Close {
        id: String,
        dataset: String,
    },
}

/// Frame rejection; always surfaces as a [`codes::BAD_REQUEST`] reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError {
    pub detail: String,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.detail)
    }
}

fn bad(detail: impl Into<String>) -> FrameError {
    FrameError {
        detail: detail.into(),
    }
}

/// Look up the interned name for a request-supplied fault point.
pub fn intern_fault_point(name: &str) -> Option<&'static str> {
    FAULT_POINTS.iter().find(|p| **p == name).copied()
}

/// Parse one request line into a typed frame. Strict: unknown keys or ops,
/// wrong field types, and unknown chaos points are errors.
pub fn parse_frame(line: &str) -> Result<Frame, FrameError> {
    if line.len() > MAX_FRAME_BYTES {
        return Err(bad(format!(
            "frame of {} bytes exceeds the {} byte cap",
            line.len(),
            MAX_FRAME_BYTES
        )));
    }
    let v = json::parse(line).map_err(|e| bad(e.to_string()))?;
    let fields = match &v {
        JsonValue::Obj(fields) => fields,
        _ => return Err(bad("frame must be a json object")),
    };
    let op = match v.get("op") {
        None => "discover",
        Some(o) => o.as_str().ok_or_else(|| bad("\"op\" must be a string"))?,
    };
    let id = match v.get("id") {
        None => String::new(),
        Some(i) => i
            .as_str()
            .ok_or_else(|| bad("\"id\" must be a string"))?
            .to_string(),
    };
    match op {
        "shutdown" => {
            for (k, _) in fields {
                if k != "op" && k != "id" {
                    return Err(bad(format!("unknown key {k:?} in shutdown frame")));
                }
            }
            Ok(Frame::Shutdown { id })
        }
        "discover" => {
            let mut req = RequestFrame {
                id,
                ..RequestFrame::default()
            };
            let mut saw_csv = false;
            for (k, val) in fields {
                match k.as_str() {
                    "op" | "id" => {}
                    "csv" => {
                        req.csv = val
                            .as_str()
                            .ok_or_else(|| bad("\"csv\" must be a string"))?
                            .to_string();
                        saw_csv = true;
                    }
                    "path" => {
                        req.path = Some(
                            val.as_str()
                                .ok_or_else(|| bad("\"path\" must be a string"))?
                                .to_string(),
                        );
                    }
                    "dataset" => {
                        req.dataset = Some(
                            val.as_str()
                                .ok_or_else(|| bad("\"dataset\" must be a string"))?
                                .to_string(),
                        );
                    }
                    "deadline_ms" => {
                        req.deadline_ms = Some(val.as_u64().ok_or_else(|| {
                            bad("\"deadline_ms\" must be a non-negative integer")
                        })?);
                    }
                    "threshold" | "sparsity" | "min_lift" => {
                        let f = val
                            .as_f64()
                            .filter(|f| f.is_finite())
                            .ok_or_else(|| bad(format!("{k:?} must be a finite number")))?;
                        match k.as_str() {
                            "threshold" => req.threshold = Some(f),
                            "sparsity" => req.sparsity = Some(f),
                            _ => req.min_lift = Some(f),
                        }
                    }
                    "seed" => {
                        req.seed = Some(
                            val.as_u64()
                                .ok_or_else(|| bad("\"seed\" must be a non-negative integer"))?,
                        );
                    }
                    "threads" => {
                        let t = val
                            .as_u64()
                            .filter(|t| *t >= 1)
                            .ok_or_else(|| bad("\"threads\" must be a positive integer"))?;
                        req.threads = Some(t as usize);
                    }
                    "validate" => {
                        req.validate = Some(
                            val.as_bool()
                                .ok_or_else(|| bad("\"validate\" must be a boolean"))?,
                        );
                    }
                    "trace" => {
                        req.trace = val
                            .as_bool()
                            .ok_or_else(|| bad("\"trace\" must be a boolean"))?;
                    }
                    "chaos" => {
                        let arr = val
                            .as_arr()
                            .ok_or_else(|| bad("\"chaos\" must be an array"))?;
                        for item in arr {
                            req.chaos.push(parse_chaos_spec(item)?);
                        }
                    }
                    other => return Err(bad(format!("unknown key {other:?} in discover frame"))),
                }
            }
            let sources =
                saw_csv as usize + req.path.is_some() as usize + req.dataset.is_some() as usize;
            if sources > 1 {
                return Err(bad(
                    "\"csv\", \"path\", and \"dataset\" are mutually exclusive",
                ));
            }
            if sources == 0 {
                return Err(bad(
                    "discover frame requires a \"csv\", \"path\", or \"dataset\" field",
                ));
            }
            Ok(Frame::Discover(Box::new(req)))
        }
        "stats" => {
            let mut journal = DEFAULT_STATS_JOURNAL;
            for (k, val) in fields {
                match k.as_str() {
                    "op" | "id" => {}
                    "journal" => {
                        journal = val
                            .as_u64()
                            .ok_or_else(|| bad("\"journal\" must be a non-negative integer"))?
                            as usize;
                    }
                    other => return Err(bad(format!("unknown key {other:?} in stats frame"))),
                }
            }
            Ok(Frame::Stats { id, journal })
        }
        "upload" => {
            let mut csv = None;
            let mut chaos = Vec::new();
            for (k, val) in fields {
                match k.as_str() {
                    "op" | "id" => {}
                    "csv" => {
                        csv = Some(
                            val.as_str()
                                .ok_or_else(|| bad("\"csv\" must be a string"))?
                                .to_string(),
                        );
                    }
                    "chaos" => {
                        let arr = val
                            .as_arr()
                            .ok_or_else(|| bad("\"chaos\" must be an array"))?;
                        for item in arr {
                            chaos.push(parse_chaos_spec(item)?);
                        }
                    }
                    other => return Err(bad(format!("unknown key {other:?} in upload frame"))),
                }
            }
            let csv = csv.ok_or_else(|| bad("upload frame requires a \"csv\" field"))?;
            Ok(Frame::Upload { id, csv, chaos })
        }
        "open" | "close" => {
            let mut dataset = None;
            for (k, val) in fields {
                match k.as_str() {
                    "op" | "id" => {}
                    "dataset" => {
                        dataset = Some(
                            val.as_str()
                                .ok_or_else(|| bad("\"dataset\" must be a string"))?
                                .to_string(),
                        );
                    }
                    other => return Err(bad(format!("unknown key {other:?} in {op} frame"))),
                }
            }
            let dataset =
                dataset.ok_or_else(|| bad(format!("{op} frame requires a \"dataset\" field")))?;
            Ok(match op {
                "open" => Frame::Open { id, dataset },
                _ => Frame::Close { id, dataset },
            })
        }
        other => Err(bad(format!("unknown op {other:?}"))),
    }
}

fn parse_chaos_spec(item: &JsonValue) -> Result<ChaosSpec, FrameError> {
    match item {
        JsonValue::Str(name) => {
            let point = intern_fault_point(name)
                .ok_or_else(|| bad(format!("unknown chaos point {name:?}")))?;
            Ok(ChaosSpec {
                point,
                times: None,
                value: None,
            })
        }
        JsonValue::Obj(fields) => {
            let name = item
                .get("point")
                .and_then(|p| p.as_str())
                .ok_or_else(|| bad("chaos entry requires a string \"point\""))?;
            let point = intern_fault_point(name)
                .ok_or_else(|| bad(format!("unknown chaos point {name:?}")))?;
            let mut spec = ChaosSpec {
                point,
                times: None,
                value: None,
            };
            for (k, v) in fields {
                match k.as_str() {
                    "point" => {}
                    "times" => {
                        spec.times = Some(v.as_u64().ok_or_else(|| {
                            bad("chaos \"times\" must be a non-negative integer")
                        })?);
                    }
                    "value" => {
                        spec.value = Some(
                            v.as_f64()
                                .filter(|f| f.is_finite())
                                .ok_or_else(|| bad("chaos \"value\" must be a finite number"))?,
                        );
                    }
                    other => return Err(bad(format!("unknown key {other:?} in chaos entry"))),
                }
            }
            Ok(spec)
        }
        _ => Err(bad("chaos entries must be strings or objects")),
    }
}

impl RequestFrame {
    /// Serialize back to a single request line (client side). Inverse of
    /// [`parse_frame`] for well-formed frames.
    pub fn to_line(&self) -> String {
        let mut o = Obj::new().str_("op", "discover").str_("id", &self.id);
        match (&self.path, &self.dataset) {
            (Some(p), _) => o = o.str_("path", p),
            (None, Some(d)) => o = o.str_("dataset", d),
            (None, None) => o = o.str_("csv", &self.csv),
        }
        if let Some(d) = self.deadline_ms {
            o = o.u64_("deadline_ms", d);
        }
        if let Some(t) = self.threshold {
            o = o.f64_("threshold", t);
        }
        if let Some(s) = self.sparsity {
            o = o.f64_("sparsity", s);
        }
        if let Some(m) = self.min_lift {
            o = o.f64_("min_lift", m);
        }
        if let Some(s) = self.seed {
            o = o.u64_("seed", s);
        }
        if let Some(t) = self.threads {
            o = o.u64_("threads", t as u64);
        }
        if let Some(v) = self.validate {
            o = o.bool_("validate", v);
        }
        if self.trace {
            o = o.bool_("trace", true);
        }
        if !self.chaos.is_empty() {
            let specs: Vec<String> = self.chaos.iter().map(chaos_spec_json).collect();
            o = o.raw("chaos", &array(specs));
        }
        o.finish()
    }
}

/// A shutdown request line, for clients and tests.
pub fn shutdown_line(id: &str) -> String {
    Obj::new().str_("op", "shutdown").str_("id", id).finish()
}

/// A stats request line, for clients and tests. `journal = None` uses the
/// server-side default tail length ([`DEFAULT_STATS_JOURNAL`]).
pub fn stats_line(id: &str, journal: Option<u64>) -> String {
    let mut o = Obj::new().str_("op", "stats").str_("id", id);
    if let Some(n) = journal {
        o = o.u64_("journal", n);
    }
    o.finish()
}

/// An upload request line, for clients and tests.
pub fn upload_line(id: &str, csv: &str, chaos: &[ChaosSpec]) -> String {
    let mut o = Obj::new()
        .str_("op", "upload")
        .str_("id", id)
        .str_("csv", csv);
    if !chaos.is_empty() {
        let specs: Vec<String> = chaos.iter().map(chaos_spec_json).collect();
        o = o.raw("chaos", &array(specs));
    }
    o.finish()
}

/// An open request line, for clients and tests.
pub fn open_line(id: &str, dataset: &str) -> String {
    Obj::new()
        .str_("op", "open")
        .str_("id", id)
        .str_("dataset", dataset)
        .finish()
}

/// A close request line, for clients and tests.
pub fn close_line(id: &str, dataset: &str) -> String {
    Obj::new()
        .str_("op", "close")
        .str_("id", id)
        .str_("dataset", dataset)
        .finish()
}

fn chaos_spec_json(c: &ChaosSpec) -> String {
    let mut co = Obj::new().str_("point", c.point);
    if let Some(t) = c.times {
        co = co.u64_("times", t);
    }
    if let Some(v) = c.value {
        co = co.f64_("value", v);
    }
    co.finish()
}

/// Build the success reply for an upload: the dataset's content-hash
/// handle, its canonical payload size, and whether it was already known.
pub fn upload_ok(id: &str, dataset: &str, bytes: u64, deduped: bool) -> String {
    Obj::new()
        .str_("id", id)
        .str_("status", "ok")
        .str_("op", "upload")
        .str_("dataset", dataset)
        .u64_("bytes", bytes)
        .bool_("deduped", deduped)
        .finish()
}

/// Build the success reply for an open. `source` is `"resident"` (memory
/// hit) or `"disk"` (rehydrated from a snapshot record).
pub fn open_ok(id: &str, dataset: &str, attrs: u64, rows: u64, source: &str) -> String {
    Obj::new()
        .str_("id", id)
        .str_("status", "ok")
        .str_("op", "open")
        .str_("dataset", dataset)
        .u64_("attrs", attrs)
        .u64_("rows", rows)
        .str_("source", source)
        .finish()
}

/// Build the success reply for a close.
pub fn close_ok(id: &str, dataset: &str, was_resident: bool) -> String {
    Obj::new()
        .str_("id", id)
        .str_("status", "ok")
        .str_("op", "close")
        .str_("dataset", dataset)
        .bool_("was_resident", was_resident)
        .finish()
}

/// The deterministic *result core* of a discover reply: the
/// `attrs`/`fds`/`edges`/`degraded`/`rung`/`health` fields as a standalone
/// JSON object, excluding everything timing- or transport-dependent
/// (`queue_wait_secs`, `total_secs`, `source`, `trace`). This is the unit
/// the session layer caches and replays byte-for-byte, and the span the
/// crash-recovery tests compare for byte-identity.
pub fn result_core(result: &FdxResult, schema: &Schema) -> String {
    let fds: Vec<String> = result
        .fds
        .iter()
        .map(|fd| format!("\"{}\"", escape(&fd.display(schema).to_string())))
        .collect();
    Obj::new()
        .u64_("attrs", schema.len() as u64)
        .raw("fds", &array(fds))
        .u64_("edges", result.fds.edge_count() as u64)
        .bool_("degraded", result.health.degraded())
        .u64_("rung", result.health.rung.index() as u64)
        .raw("health", &result.health.to_json())
        .finish()
}

/// Concatenate JSON objects field-wise: `{a} + {b} → {a,b}`. Keeps every
/// reply path routed through `Obj`'s (deterministic) formatting while
/// letting a cached core be spliced between freshly built head and tail
/// fields without re-parsing.
fn splice_objects(parts: &[&str]) -> String {
    let mut out = String::from("{");
    for part in parts {
        let inner = &part[1..part.len() - 1];
        if inner.is_empty() {
            continue;
        }
        if out.len() > 1 {
            out.push(',');
        }
        out.push_str(inner);
    }
    out.push('}');
    out
}

/// Build the success reply for a completed discover request. When `trace`
/// is `Some`, the per-request phase forest is embedded as a `"trace"`
/// array of nested `{name, secs, count, children}` objects.
pub fn ok_frame(
    id: &str,
    result: &FdxResult,
    schema: &Schema,
    queue_wait_secs: f64,
    trace: Option<&[PhaseNode]>,
) -> String {
    let head = Obj::new().str_("id", id).str_("status", "ok").finish();
    let core = result_core(result, schema);
    let mut tail = Obj::new()
        .f64_("queue_wait_secs", queue_wait_secs)
        .f64_("total_secs", result.timings.total_secs());
    if let Some(ingest) = &result.health.ingest {
        // The request discovered from a `path`: summarize what the chunked
        // reader actually consumed so the client can audit coverage.
        let source = Obj::new()
            .str_("path", &ingest.source)
            .u64_("chunks", ingest.chunks)
            .u64_("rows", ingest.rows_kept)
            .u64_("quarantined", ingest.rows_quarantined)
            .u64_("bytes", ingest.bytes_read)
            .bool_("sampled", ingest.sampled)
            .finish();
        tail = tail.raw("source", &source);
    }
    if let Some(nodes) = trace {
        tail = tail.raw("trace", &array(nodes.iter().map(PhaseNode::to_json)));
    }
    splice_objects(&[&head, &core, &tail.finish()])
}

/// Build a discover reply from a cached result core: same shape as
/// [`ok_frame`] with the core bytes replayed verbatim, plus a
/// `"cached":true` marker. `total_secs` here is the cache-hit service
/// time, not the original compute time.
pub fn cached_ok_frame(id: &str, core: &str, queue_wait_secs: f64, total_secs: f64) -> String {
    let head = Obj::new().str_("id", id).str_("status", "ok").finish();
    let tail = Obj::new()
        .f64_("queue_wait_secs", queue_wait_secs)
        .f64_("total_secs", total_secs)
        .bool_("cached", true)
        .finish();
    splice_objects(&[&head, core, &tail])
}

/// Extract the result-core span from a discover reply line: the byte range
/// from `"attrs"` up to (excluding) `,"queue_wait_secs"`. Computed and
/// cached replies for the same result return identical spans — the
/// byte-identity contract the recovery tests pin.
pub fn reply_result_core(line: &str) -> Option<&str> {
    let start = line.find("\"attrs\":")?;
    let end = line.find(",\"queue_wait_secs\":")?;
    if start >= end {
        return None;
    }
    Some(&line[start..end])
}

/// Accept-thread tallies included in a `stats` reply, assembled by the
/// server without entering the discovery pipeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServerStats {
    /// Seconds since the server started accepting.
    pub uptime_secs: f64,
    /// Configured worker-thread count.
    pub workers: usize,
    /// Requests currently parked in the bounded queue.
    pub queue_depth: usize,
    /// Capacity of the bounded queue.
    pub queue_cap: usize,
    /// Requests currently being processed by workers.
    pub inflight: usize,
    pub requests: u64,
    pub completed: u64,
    pub shed: u64,
    pub panics: u64,
    pub bad_frames: u64,
    pub deadline_exceeded: u64,
    pub abandoned: u64,
    /// `stats` probes answered (not counted in `requests`).
    pub stats_requests: u64,
}

fn histogram_summary_json(snapshot: &Snapshot, name: &str) -> String {
    match snapshot.histogram_summary(name) {
        Some(s) => Obj::new()
            .u64_("count", s.count)
            .f64_("mean", s.mean)
            .u64_("p50", s.p50)
            .u64_("p95", s.p95)
            .u64_("p99", s.p99)
            .finish(),
        None => Obj::new().u64_("count", 0).finish(),
    }
}

/// Build the reply for a `stats` frame: server tallies, shed-pressure
/// histogram summaries, the full counter/gauge snapshot, and the newest
/// journal entries (oldest first).
pub fn stats_frame(
    id: &str,
    stats: &ServerStats,
    snapshot: &Snapshot,
    journal: &[JournalEntry],
) -> String {
    let counters = snapshot
        .counters
        .iter()
        .fold(Obj::new(), |o, (name, v)| o.u64_(name, *v))
        .finish();
    let gauges = snapshot
        .gauges
        .iter()
        .fold(Obj::new(), |o, (name, v)| o.f64_(name, *v))
        .finish();
    Obj::new()
        .str_("id", id)
        .str_("status", "ok")
        .str_("op", "stats")
        .f64_("uptime_secs", stats.uptime_secs)
        .u64_("workers", stats.workers as u64)
        .u64_("queue_depth", stats.queue_depth as u64)
        .u64_("queue_cap", stats.queue_cap as u64)
        .u64_("inflight", stats.inflight as u64)
        .u64_("requests", stats.requests)
        .u64_("completed", stats.completed)
        .u64_("shed", stats.shed)
        .u64_("panics", stats.panics)
        .u64_("bad_frames", stats.bad_frames)
        .u64_("deadline_exceeded", stats.deadline_exceeded)
        .u64_("abandoned", stats.abandoned)
        .u64_("stats_requests", stats.stats_requests)
        .raw(
            "queue_wait_ms",
            &histogram_summary_json(snapshot, "fdx.serve.queue_wait_ms"),
        )
        .raw(
            "service_ms",
            &histogram_summary_json(snapshot, "fdx.serve.service_ms"),
        )
        .raw("counters", &counters)
        .raw("gauges", &gauges)
        .raw("journal", &array(journal.iter().map(JournalEntry::to_json)))
        .finish()
}

/// Build a typed error reply.
pub fn error_frame(id: &str, code: &str, detail: &str) -> String {
    Obj::new()
        .str_("id", id)
        .str_("status", "error")
        .str_("code", code)
        .str_("detail", detail)
        .finish()
}

/// Build the acknowledgement reply for a shutdown frame.
pub fn shutdown_ack(id: &str) -> String {
    Obj::new()
        .str_("id", id)
        .str_("status", "ok")
        .str_("op", "shutdown")
        .finish()
}

/// Map a pipeline error to its `(code, detail)` reply pair.
pub fn map_fdx_error(err: &FdxError) -> (&'static str, String) {
    match err {
        FdxError::BudgetExceeded { .. } => (codes::DEADLINE_EXCEEDED, err.to_string()),
        FdxError::InsufficientData { .. } => (codes::INSUFFICIENT_DATA, err.to_string()),
        FdxError::Numerical(_) | FdxError::NonFinite { .. } => {
            (codes::DISCOVER_ERROR, err.to_string())
        }
        FdxError::MemoryBudget { .. } => (codes::MEMORY_BUDGET, err.to_string()),
        FdxError::Ingest { .. } => (codes::INGEST_ERROR, err.to_string()),
    }
}

/// A parsed reply frame, for the client and for tests.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    pub id: String,
    /// `"ok"` or `"error"`.
    pub status: String,
    /// Error code when `status == "error"`.
    pub code: Option<String>,
    /// Human-readable error detail when `status == "error"`.
    pub detail: Option<String>,
    /// Rendered FDs (`"lhs -> rhs"`) when `status == "ok"` on a discover.
    pub fds: Option<Vec<String>>,
    pub degraded: Option<bool>,
    /// Recovery-ladder rung (1 = pristine glasso).
    pub rung: Option<u64>,
    /// Pipeline wall clock reported by the server, in seconds.
    pub total_secs: Option<f64>,
    /// Phase waterfall when the request set `"trace": true`.
    pub trace: Option<Vec<PhaseNode>>,
    /// The full reply document for fields not lifted above.
    pub raw: JsonValue,
    /// The reply line exactly as received (trailing whitespace trimmed).
    pub line: String,
}

/// Reconstruct a phase forest from the `"trace"` array of a reply.
/// Returns `None` if any node is malformed.
pub fn phase_nodes_from_json(v: &JsonValue) -> Option<Vec<PhaseNode>> {
    let arr = v.as_arr()?;
    let mut nodes = Vec::with_capacity(arr.len());
    for item in arr {
        let name = item.get("name")?.as_str()?.to_string();
        let secs = item.get("secs")?.as_f64()?;
        let count = item.get("count")?.as_u64()?;
        let children = phase_nodes_from_json(item.get("children")?)?;
        nodes.push(PhaseNode {
            name,
            secs,
            count,
            children,
        });
    }
    Some(nodes)
}

impl Response {
    pub fn parse(line: &str) -> Result<Response, FrameError> {
        let line = line.trim_end();
        let raw = json::parse(line).map_err(|e| bad(e.to_string()))?;
        let status = raw
            .get("status")
            .and_then(|s| s.as_str())
            .ok_or_else(|| bad("reply missing \"status\""))?
            .to_string();
        let id = raw
            .get("id")
            .and_then(|s| s.as_str())
            .unwrap_or_default()
            .to_string();
        let code = raw.get("code").and_then(|c| c.as_str()).map(String::from);
        let detail = raw.get("detail").and_then(|c| c.as_str()).map(String::from);
        let fds = raw.get("fds").and_then(|f| f.as_arr()).map(|arr| {
            arr.iter()
                .filter_map(|v| v.as_str().map(String::from))
                .collect()
        });
        let degraded = raw.get("degraded").and_then(|d| d.as_bool());
        let rung = raw.get("rung").and_then(|r| r.as_u64());
        let total_secs = raw.get("total_secs").and_then(|t| t.as_f64());
        let trace = raw.get("trace").and_then(phase_nodes_from_json);
        Ok(Response {
            id,
            status,
            code,
            detail,
            fds,
            degraded,
            rung,
            total_secs,
            trace,
            raw,
            line: line.to_string(),
        })
    }

    /// The reply line exactly as received, for relaying to stdout.
    pub fn raw_line(&self) -> &str {
        &self.line
    }

    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }

    pub fn code_is(&self, code: &str) -> bool {
        self.code.as_deref() == Some(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_discover_frame() {
        let f = parse_frame(r#"{"csv":"a,b\n1,2\n"}"#).unwrap();
        match f {
            Frame::Discover(req) => {
                assert_eq!(req.csv, "a,b\n1,2\n");
                assert_eq!(req.id, "");
                assert!(req.chaos.is_empty());
            }
            other => panic!("expected discover, got {other:?}"),
        }
    }

    #[test]
    fn parses_full_discover_frame() {
        let line = r#"{"op":"discover","id":"r1","csv":"a\n1\n","deadline_ms":250,
            "threshold":0.1,"sparsity":0.05,"min_lift":0.2,"seed":7,"threads":2,
            "validate":false,"chaos":["glasso.force_no_converge",
            {"point":"clock.skew","value":1000000.0},
            {"point":"udut.force_not_pd","times":1}]}"#;
        let f = parse_frame(line).unwrap();
        let req = match f {
            Frame::Discover(req) => req,
            other => panic!("expected discover, got {other:?}"),
        };
        assert_eq!(req.deadline_ms, Some(250));
        assert_eq!(req.threads, Some(2));
        assert_eq!(req.validate, Some(false));
        assert_eq!(req.chaos.len(), 3);
        assert_eq!(req.chaos[0].point, "glasso.force_no_converge");
        assert_eq!(req.chaos[1].value, Some(1_000_000.0));
        assert_eq!(req.chaos[2].times, Some(1));
    }

    #[test]
    fn parses_path_discover_frame() {
        let f = parse_frame(r#"{"op":"discover","id":"p1","path":"/data/in.csv"}"#).unwrap();
        match f {
            Frame::Discover(req) => {
                assert_eq!(req.path.as_deref(), Some("/data/in.csv"));
                assert_eq!(req.csv, "");
            }
            other => panic!("expected discover, got {other:?}"),
        }
        // Exactly one of csv/path.
        let err = parse_frame(r#"{"csv":"a\n1\n","path":"/data/in.csv"}"#).unwrap_err();
        assert!(err.detail.contains("mutually exclusive"));
        let err = parse_frame(r#"{"op":"discover","id":"p2"}"#).unwrap_err();
        assert!(err.detail.contains("\"csv\", \"path\", or \"dataset\""));
        let err = parse_frame(r#"{"path":7}"#).unwrap_err();
        assert!(err.detail.contains("\"path\" must be a string"));
    }

    #[test]
    fn path_frame_roundtrips_and_ingest_chaos_points_intern() {
        let req = RequestFrame {
            id: "p".into(),
            path: Some("/tmp/big.csv".into()),
            chaos: vec![ChaosSpec {
                point: "ingest.short_read",
                times: Some(1),
                value: None,
            }],
            ..RequestFrame::default()
        };
        let parsed = parse_frame(&req.to_line()).unwrap();
        assert_eq!(parsed, Frame::Discover(Box::new(req)));
        for p in [
            "ingest.short_read",
            "ingest.corrupt_chunk",
            "ingest.disk_stall",
            "ingest.oom_at_chunk",
        ] {
            assert_eq!(intern_fault_point(p), Some(p));
        }
    }

    #[test]
    fn ingest_errors_map_to_typed_codes() {
        let (code, detail) = map_fdx_error(&FdxError::MemoryBudget {
            stage: "chunk merge",
            bytes: 4096,
        });
        assert_eq!(code, codes::MEMORY_BUDGET);
        assert!(detail.contains("4096"));
        let (code, _) = map_fdx_error(&FdxError::Ingest {
            detail: "boom".into(),
        });
        assert_eq!(code, codes::INGEST_ERROR);
    }

    #[test]
    fn shutdown_frame_roundtrip() {
        let f = parse_frame(&shutdown_line("ops")).unwrap();
        assert_eq!(f, Frame::Shutdown { id: "ops".into() });
    }

    #[test]
    fn request_frame_to_line_roundtrips() {
        let req = RequestFrame {
            id: "x".into(),
            csv: "a,b\n\"1,\n\",2\n".into(),
            deadline_ms: Some(1000),
            threshold: Some(0.08),
            seed: Some(3),
            chaos: vec![ChaosSpec {
                point: "clock.skew",
                times: None,
                value: Some(5.0),
            }],
            ..RequestFrame::default()
        };
        let parsed = parse_frame(&req.to_line()).unwrap();
        assert_eq!(parsed, Frame::Discover(Box::new(req)));
    }

    #[test]
    fn rejects_malformed_frames_with_detail() {
        for (line, needle) in [
            ("not json", "invalid json"),
            ("[1,2]", "must be a json object"),
            (r#"{"op":"evict"}"#, "unknown op"),
            (r#"{"op":"discover"}"#, "requires a \"csv\""),
            (r#"{"csv":3}"#, "\"csv\" must be a string"),
            (r#"{"csv":"a\n","deadline_ms":-5}"#, "deadline_ms"),
            (r#"{"csv":"a\n","deadline_ms":1.5}"#, "deadline_ms"),
            (r#"{"csv":"a\n","bogus":1}"#, "unknown key"),
            (r#"{"csv":"a\n","threads":0}"#, "threads"),
            (
                r#"{"csv":"a\n","chaos":["nope.nope"]}"#,
                "unknown chaos point",
            ),
            (r#"{"csv":"a\n","chaos":[{"value":1}]}"#, "\"point\""),
            (r#"{"op":"shutdown","csv":"a\n"}"#, "unknown key"),
        ] {
            let err = parse_frame(line).unwrap_err();
            assert!(
                err.detail.contains(needle),
                "{line}: expected {needle:?} in {:?}",
                err.detail
            );
        }
    }

    #[test]
    fn oversized_frame_is_rejected_cheaply() {
        let line = format!("{{\"csv\":\"{}\"}}", "x".repeat(MAX_FRAME_BYTES));
        let err = parse_frame(&line).unwrap_err();
        assert!(err.detail.contains("byte cap"));
    }

    #[test]
    fn parses_stats_frames() {
        let f = parse_frame(r#"{"op":"stats","id":"s1"}"#).unwrap();
        assert_eq!(
            f,
            Frame::Stats {
                id: "s1".into(),
                journal: DEFAULT_STATS_JOURNAL
            }
        );
        let f = parse_frame(&stats_line("s2", Some(64))).unwrap();
        assert_eq!(
            f,
            Frame::Stats {
                id: "s2".into(),
                journal: 64
            }
        );
        let err = parse_frame(r#"{"op":"stats","csv":"a\n"}"#).unwrap_err();
        assert!(err.detail.contains("unknown key"));
        let err = parse_frame(r#"{"op":"stats","journal":-1}"#).unwrap_err();
        assert!(err.detail.contains("journal"));
    }

    #[test]
    fn trace_flag_roundtrips_and_rejects_non_bool() {
        let req = RequestFrame {
            id: "t".into(),
            csv: "a\n1\n".into(),
            trace: true,
            ..RequestFrame::default()
        };
        let parsed = parse_frame(&req.to_line()).unwrap();
        assert_eq!(parsed, Frame::Discover(Box::new(req)));
        let err = parse_frame(r#"{"csv":"a\n","trace":1}"#).unwrap_err();
        assert!(err.detail.contains("trace"));
    }

    #[test]
    fn phase_nodes_roundtrip_through_json() {
        let nodes = vec![PhaseNode {
            name: "fdx.discover".into(),
            secs: 0.5,
            count: 1,
            children: vec![PhaseNode {
                name: "fdx.glasso".into(),
                secs: 0.25,
                count: 3,
                children: Vec::new(),
            }],
        }];
        let line = array(nodes.iter().map(PhaseNode::to_json));
        let parsed = phase_nodes_from_json(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed, nodes);
        assert!(phase_nodes_from_json(&json::parse(r#"[{"name":"x"}]"#).unwrap()).is_none());
    }

    #[test]
    fn stats_frame_parses_as_response_with_journal() {
        let stats = ServerStats {
            uptime_secs: 1.5,
            workers: 4,
            queue_depth: 2,
            queue_cap: 8,
            inflight: 4,
            requests: 10,
            completed: 4,
            shed: 1,
            stats_requests: 1,
            ..ServerStats::default()
        };
        let entry = JournalEntry {
            seq: 7,
            id: "r7".into(),
            outcome: "ok".into(),
            session: None,
            queue_wait_secs: 0.001,
            total_secs: 0.1,
            phases: vec![("glasso".into(), 0.05)],
            rung: 1,
            threads: 2,
        };
        let line = stats_frame("s1", &stats, &Snapshot::default(), &[entry]);
        let r = Response::parse(&line).unwrap();
        assert!(r.is_ok());
        assert_eq!(r.raw.get("op").and_then(|o| o.as_str()), Some("stats"));
        assert_eq!(r.raw.get("queue_depth").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(r.raw.get("inflight").and_then(|v| v.as_u64()), Some(4));
        let journal = r.raw.get("journal").and_then(|j| j.as_arr()).unwrap();
        assert_eq!(journal.len(), 1);
        assert_eq!(
            journal[0].get("outcome").and_then(|o| o.as_str()),
            Some("ok")
        );
        // Empty snapshot still yields well-formed (zero-count) summaries.
        let qw = r.raw.get("queue_wait_ms").unwrap();
        assert_eq!(qw.get("count").and_then(|c| c.as_u64()), Some(0));
    }

    #[test]
    fn parses_session_op_frames() {
        let f = parse_frame(&upload_line("u1", "a,b\n1,2\n", &[])).unwrap();
        assert_eq!(
            f,
            Frame::Upload {
                id: "u1".into(),
                csv: "a,b\n1,2\n".into(),
                chaos: Vec::new(),
            }
        );
        let f = parse_frame(&upload_line(
            "u2",
            "a\n1\n",
            &[ChaosSpec {
                point: "session.disk_full",
                times: Some(1),
                value: None,
            }],
        ))
        .unwrap();
        match f {
            Frame::Upload { chaos, .. } => {
                assert_eq!(chaos.len(), 1);
                assert_eq!(chaos[0].point, "session.disk_full");
            }
            other => panic!("expected upload, got {other:?}"),
        }
        let f = parse_frame(&open_line("o1", "00c0ffee00c0ffee")).unwrap();
        assert_eq!(
            f,
            Frame::Open {
                id: "o1".into(),
                dataset: "00c0ffee00c0ffee".into(),
            }
        );
        let f = parse_frame(&close_line("c1", "00c0ffee00c0ffee")).unwrap();
        assert_eq!(
            f,
            Frame::Close {
                id: "c1".into(),
                dataset: "00c0ffee00c0ffee".into(),
            }
        );
        for p in [
            "session.torn_write",
            "session.corrupt_crc",
            "session.disk_full",
            "session.evict_during_open",
            "session.partial_upload",
        ] {
            assert_eq!(intern_fault_point(p), Some(p));
        }
    }

    #[test]
    fn session_op_frames_are_strict() {
        for (line, needle) in [
            (r#"{"op":"upload","id":"u"}"#, "requires a \"csv\""),
            (r#"{"op":"upload","csv":7}"#, "\"csv\" must be a string"),
            (r#"{"op":"upload","csv":"a\n","path":"x"}"#, "unknown key"),
            (r#"{"op":"open","id":"o"}"#, "requires a \"dataset\""),
            (r#"{"op":"open","dataset":7}"#, "must be a string"),
            (r#"{"op":"close","id":"c"}"#, "requires a \"dataset\""),
            (r#"{"op":"close","dataset":"d","csv":"a"}"#, "unknown key"),
            (r#"{"csv":"a\n","dataset":"d"}"#, "mutually exclusive"),
            (r#"{"path":"/x","dataset":"d"}"#, "mutually exclusive"),
        ] {
            let err = parse_frame(line).unwrap_err();
            assert!(
                err.detail.contains(needle),
                "{line}: expected {needle:?} in {:?}",
                err.detail
            );
        }
    }

    #[test]
    fn dataset_discover_frame_roundtrips() {
        let req = RequestFrame {
            id: "d1".into(),
            dataset: Some("00000000deadbeef".into()),
            sparsity: Some(0.004),
            seed: Some(7),
            ..RequestFrame::default()
        };
        let parsed = parse_frame(&req.to_line()).unwrap();
        assert_eq!(parsed, Frame::Discover(Box::new(req)));
    }

    #[test]
    fn session_reply_builders_parse_as_responses() {
        let r = Response::parse(&upload_ok("u1", "00c0ffee00c0ffee", 123, false)).unwrap();
        assert!(r.is_ok());
        assert_eq!(
            r.raw.get("dataset").and_then(|d| d.as_str()),
            Some("00c0ffee00c0ffee")
        );
        assert_eq!(r.raw.get("bytes").and_then(|b| b.as_u64()), Some(123));
        assert_eq!(r.raw.get("deduped").and_then(|d| d.as_bool()), Some(false));
        let r = Response::parse(&open_ok("o1", "00c0ffee00c0ffee", 3, 64, "disk")).unwrap();
        assert_eq!(r.raw.get("source").and_then(|s| s.as_str()), Some("disk"));
        assert_eq!(r.raw.get("rows").and_then(|n| n.as_u64()), Some(64));
        let r = Response::parse(&close_ok("c1", "00c0ffee00c0ffee", true)).unwrap();
        assert_eq!(
            r.raw.get("was_resident").and_then(|w| w.as_bool()),
            Some(true)
        );
    }

    #[test]
    fn cached_frame_splices_the_core_verbatim() {
        let core = r#"{"attrs":2,"fds":["a -> b"],"edges":1,"degraded":false,"rung":1,"health":{"rung":1}}"#;
        let line = cached_ok_frame("r1", core, 0.25, 0.001);
        let r = Response::parse(&line).unwrap();
        assert!(r.is_ok());
        assert_eq!(r.id, "r1");
        assert_eq!(r.raw.get("cached").and_then(|c| c.as_bool()), Some(true));
        assert_eq!(r.fds.as_deref(), Some(&["a -> b".to_string()][..]));
        assert_eq!(r.rung, Some(1));
        // The core span of the reply is the cached core, byte for byte.
        assert_eq!(reply_result_core(&line), Some(&core[1..core.len() - 1]));
        // Replies without a core span yield None, not a bogus slice.
        assert_eq!(reply_result_core(&error_frame("x", "panic", "boom")), None);
        assert_eq!(reply_result_core(&open_ok("o", "aa", 1, 2, "disk")), None);
    }

    #[test]
    fn error_frame_parses_as_response() {
        let r = Response::parse(&error_frame("r9", codes::OVERLOADED, "queue full")).unwrap();
        assert_eq!(r.id, "r9");
        assert!(!r.is_ok());
        assert!(r.code_is(codes::OVERLOADED));
        assert_eq!(r.detail.as_deref(), Some("queue full"));
    }
}
