use std::fmt;
use std::ops::{Index, IndexMut};

use crate::{LinalgError, Result};

/// A dense, row-major matrix of `f64`.
///
/// This is the workhorse type of the FDX reproduction: covariance matrices,
/// inverse-covariance estimates, autoregression matrices, and the binary
/// pair-difference sample matrix all live in a `Matrix`. The layout is a
/// single contiguous `Vec<f64>` with `rows * cols` entries, indexed as
/// `data[r * cols + c]`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix with every entry set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Builds a matrix from row slices. All rows must have equal length.
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows passed to Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "flat data length must be rows*cols"
        );
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as a `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the backing row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        debug_assert!(c < self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Copies the main diagonal into a new vector.
    pub fn diag(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self[(i, i)]).collect()
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// Uses an `ikj` loop order so the innermost loop walks both operands
    /// contiguously; adequate for the `k ≤ few hundred` matrices FDX builds.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if crate::float::is_exact_zero(aik) {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            *o = dot(self.row(i), v);
        }
        Ok(out)
    }

    /// Elementwise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Elementwise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiplies every entry by `s` in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns a scaled copy of the matrix.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_mut(s);
        m
    }

    /// Adds `value` to every diagonal entry in place (ridge regularization).
    pub fn add_diag_mut(&mut self, value: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += value;
        }
    }

    /// Maximum absolute difference from the transpose — a symmetry gauge.
    pub fn asymmetry(&self) -> f64 {
        let mut worst = 0.0_f64;
        for r in 0..self.rows {
            for c in (r + 1)..self.cols.min(self.rows) {
                worst = worst.max((self[(r, c)] - self[(c, r)]).abs());
            }
        }
        worst
    }

    /// Forces exact symmetry by averaging `(A + Aᵀ)/2` in place.
    ///
    /// Covariance accumulation in floating point can leave tiny asymmetries
    /// that trip up factorizations; this removes them.
    pub fn symmetrize_mut(&mut self) {
        debug_assert!(self.is_square());
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                let avg = 0.5 * (self[(r, c)] + self[(c, r)]);
                self[(r, c)] = avg;
                self[(c, r)] = avg;
            }
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Extracts the square submatrix with the given row/column indices.
    ///
    /// Used by the graphical-lasso block updates, which repeatedly slice the
    /// "all but column j" principal submatrix.
    pub fn principal_submatrix(&self, idx: &[usize]) -> Matrix {
        let k = idx.len();
        let mut out = Matrix::zeros(k, k);
        for (a, &i) in idx.iter().enumerate() {
            for (b, &j) in idx.iter().enumerate() {
                out[(a, b)] = self[(i, j)];
            }
        }
        out
    }

    /// Applies a symmetric permutation: returns `P A Pᵀ` where row/column `i`
    /// of the result is row/column `perm[i]` of the input.
    pub fn permute_symmetric(&self, perm: &[usize]) -> Matrix {
        debug_assert!(self.is_square());
        debug_assert_eq!(perm.len(), self.rows);
        debug_assert!(
            {
                let mut seen = vec![false; self.rows];
                perm.iter()
                    .all(|&p| p < self.rows && !std::mem::replace(&mut seen[p], true))
            },
            "perm must be a bijection on 0..n"
        );
        let n = self.rows;
        let mut out = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                out[(i, j)] = self[(perm[i], perm[j])];
            }
        }
        out
    }

    /// Number of entries with absolute value above `threshold`.
    pub fn count_above(&self, threshold: f64) -> usize {
        self.data.iter().filter(|v| v.abs() > threshold).count()
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self[(r, c)])?;
            }
            if self.cols > 8 {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.diag(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]);
        let v = vec![3.0, 4.0];
        assert_eq!(a.matvec(&v).unwrap(), vec![-1.0, 8.0]);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[0.5, -2.0]]);
        assert_eq!(a.add(&b).unwrap(), Matrix::from_rows(&[&[1.5, 0.0]]));
        assert_eq!(a.sub(&b).unwrap(), Matrix::from_rows(&[&[0.5, 4.0]]));
        assert_eq!(a.scaled(2.0), Matrix::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn symmetrize_removes_drift() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[2.1, 1.0]]);
        assert!(m.asymmetry() > 0.09);
        m.symmetrize_mut();
        assert_eq!(m.asymmetry(), 0.0);
        assert!((m[(0, 1)] - 2.05).abs() < 1e-12);
    }

    #[test]
    fn principal_submatrix_picks_rows_cols() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        let s = m.principal_submatrix(&[0, 2]);
        assert_eq!(s, Matrix::from_rows(&[&[1.0, 3.0], &[7.0, 9.0]]));
    }

    #[test]
    fn permute_symmetric_reorders() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[2.0, 4.0, 5.0], &[3.0, 5.0, 6.0]]);
        let p = m.permute_symmetric(&[2, 0, 1]);
        assert_eq!(p[(0, 0)], 6.0);
        assert_eq!(p[(0, 1)], 3.0);
        assert_eq!(p[(1, 2)], 2.0);
        // Symmetry is preserved.
        assert_eq!(p.asymmetry(), 0.0);
    }

    #[test]
    fn norms_and_counts() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
        assert_eq!(m.count_above(0.5), 2);
        assert_eq!(m.count_above(3.5), 1);
    }

    #[test]
    fn add_diag_applies_ridge() {
        let mut m = Matrix::zeros(2, 2);
        m.add_diag_mut(0.25);
        assert_eq!(m.diag(), vec![0.25, 0.25]);
        assert_eq!(m[(0, 1)], 0.0);
    }
}
