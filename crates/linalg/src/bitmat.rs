//! Packed bit-matrix with cache-blocked popcount Gram kernels.
//!
//! The pair transform (paper §4.2) and the streaming accumulator both
//! reduce to the same primitive: given `k` binary indicator rows over `m`
//! sampled pairs, count pairwise co-agreements `|z_a AND z_b|` for every
//! attribute pair. Packing each indicator row into `u64` words turns that
//! into word-wise `AND` + `count_ones()` — 64 samples per instruction
//! before any SIMD — and keeps every count an exact integer, so downstream
//! covariance assembly is bit-identical regardless of how the work is
//! chunked or threaded.
//!
//! [`BitMatrix`] is row-major: row `a` occupies `words_per_row` consecutive
//! `u64`s, bit `i` of the row lives at word `i / 64`, bit position `i % 64`
//! (little-endian within the word). Trailing bits past `bits` in the last
//! word are always zero — every mutator upholds this, so popcounts never
//! see garbage.
//!
//! The Gram kernel walks the words in column blocks (default
//! [`BitMatrix::DEFAULT_BLOCK_WORDS`] words ≈ 4 KiB per row-slice) so that
//! for wide matrices each pair of row-slices stays L1-resident across the
//! `k²/2` pair iterations of a block; co-counts accumulate across blocks by
//! integer addition, which is associative, so the block width never changes
//! the result.

/// Packed row-major binary matrix over `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    bits: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl BitMatrix {
    /// Default Gram-kernel block width: 512 words = 4 KiB per row-slice.
    ///
    /// Two slices (the pair being ANDed) plus the accumulator fit well
    /// inside a 32 KiB L1 even with prefetch traffic; for the transform's
    /// typical `m ≤ 64 · 3000` bits a row is ~24 KiB, so blocking starts
    /// paying off exactly where rows stop fitting in L1 whole.
    pub const DEFAULT_BLOCK_WORDS: usize = 512;

    /// All-zeros matrix with `rows` rows of `bits` bits each.
    pub fn zeros(rows: usize, bits: usize) -> BitMatrix {
        let words_per_row = bits.div_ceil(64);
        BitMatrix {
            rows,
            bits,
            words_per_row,
            data: vec![0u64; rows * words_per_row],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of valid bits per row.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Words backing each row (`bits.div_ceil(64)`).
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The packed words of row `r`.
    pub fn row(&self, r: usize) -> &[u64] {
        let w = self.words_per_row;
        &self.data[r * w..(r + 1) * w]
    }

    /// Mutable packed words of row `r`, for word-at-a-time fills.
    ///
    /// Callers writing the final partial word must leave bits at positions
    /// `>= bits % 64` zero; the popcount kernels trust that invariant.
    pub fn row_mut(&mut self, r: usize) -> &mut [u64] {
        let w = self.words_per_row;
        &mut self.data[r * w..(r + 1) * w]
    }

    /// Resets every bit to zero without reallocating.
    pub fn clear(&mut self) {
        self.data.fill(0);
    }

    /// Sets bit `i` of row `r`.
    pub fn set(&mut self, r: usize, i: usize) {
        debug_assert!(i < self.bits);
        let w = self.words_per_row;
        self.data[r * w + i / 64] |= 1u64 << (i % 64);
    }

    /// Reads bit `i` of row `r`.
    pub fn get(&self, r: usize, i: usize) -> bool {
        debug_assert!(i < self.bits);
        let w = self.words_per_row;
        (self.data[r * w + i / 64] >> (i % 64)) & 1 == 1
    }

    /// Population count of each row — `|z_a|` for every attribute.
    pub fn row_popcounts(&self) -> Vec<u64> {
        (0..self.rows)
            .map(|r| self.row(r).iter().map(|w| u64::from(w.count_ones())).sum())
            .collect()
    }

    /// `|row_a AND row_b|` for one row pair.
    pub fn and_popcount(&self, a: usize, b: usize) -> u64 {
        and_popcount_words(self.row(a), self.row(b))
    }

    /// Upper-triangular (inclusive) popcount Gram matrix.
    ///
    /// Returns a row-major `rows × rows` buffer with `out[a * rows + b] =
    /// |row_a AND row_b|` for `b >= a`; the strictly-lower triangle is left
    /// zero. The diagonal is each row's popcount. Uses the default block
    /// width; see [`BitMatrix::gram_accumulate`] for the blocking scheme.
    pub fn gram(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.rows * self.rows];
        self.gram_accumulate(Self::DEFAULT_BLOCK_WORDS, &mut out);
        out
    }

    /// Adds the upper-triangular (inclusive) popcount Gram into `acc`.
    ///
    /// `acc` must be a row-major `rows × rows` buffer; entries `acc[a *
    /// rows + b]` with `b >= a` receive `+= |row_a AND row_b|`. Counts are
    /// exact integers, so accumulating several matrices (or the same matrix
    /// block by block) is associative and order-independent.
    ///
    /// The word range is processed in column blocks of `block_words` so
    /// each pair of row-slices is short enough to stay cache-resident
    /// across the inner pair loop. `block_words` only affects traversal
    /// order, never the counts.
    ///
    /// # Panics
    ///
    /// Panics if `acc.len() != rows * rows` or `block_words == 0`.
    pub fn gram_accumulate(&self, block_words: usize, acc: &mut [u64]) {
        let k = self.rows;
        let w = self.words_per_row;
        assert_eq!(acc.len(), k * k, "gram accumulator has wrong shape");
        assert!(block_words > 0, "gram block width must be positive");
        let mut start = 0;
        while start < w {
            let end = (start + block_words).min(w);
            for a in 0..k {
                let ra = &self.data[a * w + start..a * w + end];
                acc[a * k + a] += ra.iter().map(|x| u64::from(x.count_ones())).sum::<u64>();
                for b in (a + 1)..k {
                    let rb = &self.data[b * w + start..b * w + end];
                    acc[a * k + b] += and_popcount_words(ra, rb);
                }
            }
            start = end;
        }
    }
}

/// `Σ popcount(x & y)` over two equal-length word slices.
///
/// Unrolled four-wide so the popcounts pipeline instead of serializing on
/// one accumulator; the remainder tail is handled scalar.
#[inline]
pub fn and_popcount_words(xs: &[u64], ys: &[u64]) -> u64 {
    debug_assert_eq!(xs.len(), ys.len());
    let mut c0 = 0u64;
    let mut c1 = 0u64;
    let mut c2 = 0u64;
    let mut c3 = 0u64;
    let mut xi = xs.chunks_exact(4);
    let mut yi = ys.chunks_exact(4);
    for (x, y) in (&mut xi).zip(&mut yi) {
        c0 += u64::from((x[0] & y[0]).count_ones());
        c1 += u64::from((x[1] & y[1]).count_ones());
        c2 += u64::from((x[2] & y[2]).count_ones());
        c3 += u64::from((x[3] & y[3]).count_ones());
    }
    for (x, y) in xi.remainder().iter().zip(yi.remainder()) {
        c0 += u64::from((x & y).count_ones());
    }
    c0 + c1 + c2 + c3
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random bit fill (splitmix64 over word index).
    fn filled(rows: usize, bits: usize, salt: u64) -> BitMatrix {
        let mut m = BitMatrix::zeros(rows, bits);
        for r in 0..rows {
            for i in 0..bits {
                let mut z =
                    salt.wrapping_add(((r * bits + i) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                if (z ^ (z >> 31)) & 3 == 0 {
                    m.set(r, i);
                }
            }
        }
        m
    }

    /// Reference Gram by per-bit iteration.
    fn naive_gram(m: &BitMatrix) -> Vec<u64> {
        let k = m.rows();
        let mut out = vec![0u64; k * k];
        for a in 0..k {
            for b in a..k {
                let mut c = 0;
                for i in 0..m.bits() {
                    if m.get(a, i) && m.get(b, i) {
                        c += 1;
                    }
                }
                out[a * k + b] = c;
            }
        }
        out
    }

    #[test]
    fn set_get_roundtrip_and_word_layout() {
        let mut m = BitMatrix::zeros(2, 130);
        m.set(0, 0);
        m.set(0, 63);
        m.set(0, 64);
        m.set(1, 129);
        assert!(m.get(0, 0) && m.get(0, 63) && m.get(0, 64) && m.get(1, 129));
        assert!(!m.get(0, 1) && !m.get(1, 0));
        assert_eq!(m.words_per_row(), 3);
        assert_eq!(m.row(0)[0], (1u64 << 63) | 1);
        assert_eq!(m.row(0)[1], 1);
        assert_eq!(m.row(1)[2], 1 << 1);
    }

    #[test]
    fn row_popcounts_match_set_bits() {
        let m = filled(5, 200, 7);
        let pops = m.row_popcounts();
        for r in 0..5 {
            let manual = (0..200).filter(|&i| m.get(r, i)).count() as u64;
            assert_eq!(pops[r], manual, "row {r}");
        }
    }

    #[test]
    fn gram_matches_naive_counting() {
        for &(rows, bits) in &[(1usize, 1usize), (3, 64), (4, 65), (6, 257), (5, 1000)] {
            let m = filled(rows, bits, (rows * 1000 + bits) as u64);
            assert_eq!(m.gram(), naive_gram(&m), "rows={rows} bits={bits}");
        }
    }

    #[test]
    fn gram_block_width_never_changes_counts() {
        let m = filled(7, 777, 42);
        let reference = m.gram();
        for block in [1usize, 2, 3, 5, 8, 512, 10_000] {
            let mut acc = vec![0u64; 7 * 7];
            m.gram_accumulate(block, &mut acc);
            assert_eq!(acc, reference, "block={block}");
        }
    }

    #[test]
    fn gram_accumulate_adds_instead_of_overwriting() {
        let m = filled(3, 100, 9);
        let one = m.gram();
        let mut acc = vec![0u64; 9];
        m.gram_accumulate(64, &mut acc);
        m.gram_accumulate(64, &mut acc);
        let doubled: Vec<u64> = one.iter().map(|&c| 2 * c).collect();
        assert_eq!(acc, doubled);
    }

    #[test]
    fn and_popcount_pairs_agree_with_gram() {
        let m = filled(4, 300, 3);
        let g = m.gram();
        for a in 0..4 {
            for b in a..4 {
                assert_eq!(m.and_popcount(a, b), g[a * 4 + b]);
            }
        }
    }

    #[test]
    fn and_popcount_words_handles_remainders() {
        for len in 0..9usize {
            let xs: Vec<u64> = (0..len).map(|i| 0x5555_5555_5555_5555 << (i % 2)).collect();
            let ys: Vec<u64> = (0..len).map(|_| u64::MAX).collect();
            let expect = xs.iter().map(|x| u64::from(x.count_ones())).sum::<u64>();
            assert_eq!(and_popcount_words(&xs, &ys), expect, "len={len}");
        }
    }

    #[test]
    fn clear_resets_without_shape_change() {
        let mut m = filled(3, 90, 1);
        m.clear();
        assert_eq!(m.row_popcounts(), vec![0, 0, 0]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.bits(), 90);
    }

    #[test]
    #[should_panic(expected = "wrong shape")]
    fn gram_accumulate_rejects_misshaped_buffer() {
        let m = BitMatrix::zeros(2, 10);
        let mut acc = vec![0u64; 3];
        m.gram_accumulate(8, &mut acc);
    }
}
