use crate::{LinalgError, Result};

/// A permutation of `0..n`, used to pick the global attribute order for the
/// `Θ = U D Uᵀ` decomposition (paper §4.1: FDX fixes a global order over the
/// schema attributes and only allows determinants that precede the determined
/// attribute).
///
/// Internally stored in "image" form: `order[i]` is the original index placed
/// at position `i` of the permuted sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    order: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        Permutation {
            order: (0..n).collect(),
        }
    }

    /// Builds a permutation from an image vector, validating that it is a
    /// bijection on `0..n`.
    pub fn from_order(order: Vec<usize>) -> Result<Self> {
        let n = order.len();
        let mut seen = vec![false; n];
        for &i in &order {
            if i >= n || seen[i] {
                return Err(LinalgError::InvalidPermutation { len: n });
            }
            seen[i] = true;
        }
        Ok(Permutation { order })
    }

    /// Length of the permuted domain.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The original index placed at permuted position `i`.
    #[inline]
    pub fn image(&self, i: usize) -> usize {
        self.order[i]
    }

    /// The image vector: `as_slice()[i]` is the original index at position `i`.
    pub fn as_slice(&self) -> &[usize] {
        &self.order
    }

    /// The inverse permutation: `inverse().image(j)` is the permuted position
    /// of original index `j`.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0; self.order.len()];
        for (pos, &orig) in self.order.iter().enumerate() {
            inv[orig] = pos;
        }
        Permutation { order: inv }
    }

    /// The reversal of this permutation (last position first).
    ///
    /// Needed because our UDUᵀ factorization runs a standard LDLᵀ on the
    /// order-reversed matrix (see [`crate::udut`]).
    pub fn reversed(&self) -> Permutation {
        let mut order = self.order.clone();
        order.reverse();
        Permutation { order }
    }

    /// Applies the permutation to a slice, producing the reordered vector.
    pub fn apply<T: Clone>(&self, values: &[T]) -> Vec<T> {
        debug_assert_eq!(values.len(), self.order.len());
        self.order.iter().map(|&i| values[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_to_self() {
        let p = Permutation::identity(4);
        assert_eq!(p.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(p.inverse(), p);
    }

    #[test]
    fn from_order_validates() {
        assert!(Permutation::from_order(vec![2, 0, 1]).is_ok());
        assert!(matches!(
            Permutation::from_order(vec![0, 0, 1]),
            Err(LinalgError::InvalidPermutation { len: 3 })
        ));
        assert!(matches!(
            Permutation::from_order(vec![0, 3]),
            Err(LinalgError::InvalidPermutation { len: 2 })
        ));
    }

    #[test]
    fn inverse_roundtrip() {
        let p = Permutation::from_order(vec![2, 0, 3, 1]).unwrap();
        let inv = p.inverse();
        for i in 0..4 {
            assert_eq!(inv.image(p.image(i)), i);
        }
    }

    #[test]
    fn apply_reorders_values() {
        let p = Permutation::from_order(vec![2, 0, 1]).unwrap();
        assert_eq!(p.apply(&['a', 'b', 'c']), vec!['c', 'a', 'b']);
    }

    #[test]
    fn reversed_flips_positions() {
        let p = Permutation::from_order(vec![1, 2, 0]).unwrap();
        assert_eq!(p.reversed().as_slice(), &[0, 2, 1]);
    }
}
