use crate::matrix::dot;
use crate::{LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    /// The lower-triangular factor (entries above the diagonal are zero).
    pub l: Matrix,
}

/// LDLᵀ factor: unit lower-triangular `L` and diagonal `d` with `A = L diag(d) Lᵀ`.
#[derive(Debug, Clone)]
pub struct LdltFactor {
    /// Unit lower-triangular factor (ones on the diagonal).
    pub l: Matrix,
    /// Diagonal entries of `D`.
    pub d: Vec<f64>,
}

/// Computes the Cholesky factorization `A = L Lᵀ` of a symmetric positive
/// definite matrix.
///
/// Only the lower triangle of `a` is read; asymmetry in the upper triangle is
/// ignored. Fails with [`LinalgError::NotPositiveDefinite`] if a pivot is not
/// strictly positive (within a small relative tolerance), which callers such
/// as the graphical lasso use as a signal to add ridge regularization.
pub fn cholesky(a: &Matrix) -> Result<CholeskyFactor> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        // Diagonal pivot: a_jj - sum_k l_jk^2.
        let mut pivot = a[(j, j)];
        for k in 0..j {
            pivot -= l[(j, k)] * l[(j, k)];
        }
        if pivot <= 0.0 || !pivot.is_finite() {
            return Err(LinalgError::NotPositiveDefinite {
                pivot: j,
                value: pivot,
            });
        }
        let ljj = pivot.sqrt();
        l[(j, j)] = ljj;
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            // s -= sum_k l_ik * l_jk using contiguous row slices.
            let (li, lj) = (i * n, j * n);
            let raw = l.as_slice();
            s -= dot(&raw[li..li + j], &raw[lj..lj + j]);
            l[(i, j)] = s / ljj;
        }
    }
    Ok(CholeskyFactor { l })
}

/// Computes the LDLᵀ factorization `A = L diag(d) Lᵀ` with unit
/// lower-triangular `L` of a symmetric positive definite matrix.
///
/// This is the square-root-free sibling of [`cholesky`] and the kernel behind
/// the paper's `Θ = U D Uᵀ` decomposition (Algorithm 1): FDX factorizes the
/// estimated inverse covariance with `U` unit *upper*-triangular, which we
/// obtain by running LDLᵀ on the order-reversed matrix (see [`crate::udut`]).
pub fn ldlt(a: &Matrix) -> Result<LdltFactor> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    let n = a.rows();
    let mut l = Matrix::identity(n);
    let mut d = vec![0.0; n];
    // Scratch: v[k] = l_jk * d_k for the current column j.
    let mut v = vec![0.0; n];
    for j in 0..n {
        for k in 0..j {
            v[k] = l[(j, k)] * d[k];
        }
        let mut dj = a[(j, j)];
        for k in 0..j {
            dj -= l[(j, k)] * v[k];
        }
        if dj <= 0.0 || !dj.is_finite() {
            return Err(LinalgError::NotPositiveDefinite {
                pivot: j,
                value: dj,
            });
        }
        d[j] = dj;
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * v[k];
            }
            l[(i, j)] = s / dj;
        }
    }
    Ok(LdltFactor { l, d })
}

impl CholeskyFactor {
    /// Reconstructs `L Lᵀ` (mainly for testing and diagnostics).
    pub fn reconstruct(&self) -> Matrix {
        let lt = self.l.transpose();
        // fdx-allow: L001 L and Lᵀ are square with matching dims by construction
        self.l.matmul(&lt).expect("square factors always multiply")
    }

    /// Log-determinant of the original matrix: `2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

impl LdltFactor {
    /// Reconstructs `L D Lᵀ` (mainly for testing and diagnostics).
    pub fn reconstruct(&self) -> Matrix {
        let n = self.l.rows();
        let mut ld = self.l.clone();
        for j in 0..n {
            for i in 0..n {
                ld[(i, j)] *= self.d[j];
            }
        }
        let lt = self.l.transpose();
        // fdx-allow: L001 LD and Lᵀ are square with matching dims by construction
        ld.matmul(&lt).expect("square factors always multiply")
    }

    /// Log-determinant of the original matrix: `Σ log d_i`.
    pub fn log_det(&self) -> f64 {
        self.d.iter().map(|v| v.ln()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]])
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                assert!(
                    (a[(r, c)] - b[(r, c)]).abs() < tol,
                    "mismatch at ({r},{c}): {} vs {}",
                    a[(r, c)],
                    b[(r, c)]
                );
            }
        }
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let f = cholesky(&a).unwrap();
        assert_close(&f.reconstruct(), &a, 1e-12);
        // L is lower triangular.
        assert_eq!(f.l[(0, 1)], 0.0);
        assert_eq!(f.l[(0, 2)], 0.0);
        assert_eq!(f.l[(1, 2)], 0.0);
    }

    #[test]
    fn ldlt_reconstructs_with_unit_diagonal() {
        let a = spd3();
        let f = ldlt(&a).unwrap();
        assert_close(&f.reconstruct(), &a, 1e-12);
        for i in 0..3 {
            assert_eq!(f.l[(i, i)], 1.0);
            assert!(f.d[i] > 0.0);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            cholesky(&a),
            Err(LinalgError::NotPositiveDefinite { pivot: 1, .. })
        ));
        assert!(matches!(
            ldlt(&a),
            Err(LinalgError::NotPositiveDefinite { pivot: 1, .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(cholesky(&a), Err(LinalgError::NotSquare { .. })));
        assert!(matches!(ldlt(&a), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn identity_factors_trivially() {
        let i = Matrix::identity(4);
        let c = cholesky(&i).unwrap();
        assert_close(&c.l, &i, 1e-15);
        let f = ldlt(&i).unwrap();
        assert_close(&f.l, &i, 1e-15);
        assert_eq!(f.d, vec![1.0; 4]);
    }

    #[test]
    fn log_det_matches_known_value() {
        // det([[2,0],[0,8]]) = 16, log 16.
        let a = Matrix::from_diag(&[2.0, 8.0]);
        let c = cholesky(&a).unwrap();
        assert!((c.log_det() - 16.0_f64.ln()).abs() < 1e-12);
        let f = ldlt(&a).unwrap();
        assert!((f.log_det() - 16.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn only_lower_triangle_is_read() {
        let mut a = spd3();
        a[(0, 2)] = 99.0; // poison the upper triangle
        a[(0, 1)] = -99.0;
        a[(1, 2)] = 42.0;
        let f = cholesky(&a).unwrap();
        // Reconstruction matches the symmetric matrix built from the lower
        // triangle, not the poisoned upper entries.
        let sym = spd3();
        assert_close(&f.reconstruct(), &sym, 1e-12);
    }
}
