use crate::{cholesky, LinalgError, Matrix, Result};

/// Smallest diagonal magnitude treated as nonsingular in triangular solves.
const SINGULAR_TOL: f64 = 1e-300;

/// Solves `L x = b` for lower-triangular `L` by forward substitution.
pub fn solve_lower_triangular(l: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    if !l.is_square() {
        return Err(LinalgError::NotSquare { shape: l.shape() });
    }
    if l.rows() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "solve_lower_triangular",
            lhs: l.shape(),
            rhs: (b.len(), 1),
        });
    }
    let n = l.rows();
    let mut x = b.to_vec();
    for i in 0..n {
        let row = l.row(i);
        let mut s = x[i];
        for k in 0..i {
            s -= row[k] * x[k];
        }
        let d = row[i];
        if d.abs() < SINGULAR_TOL {
            return Err(LinalgError::SingularTriangular { index: i });
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solves `U x = b` for upper-triangular `U` by back substitution.
pub fn solve_upper_triangular(u: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    if !u.is_square() {
        return Err(LinalgError::NotSquare { shape: u.shape() });
    }
    if u.rows() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "solve_upper_triangular",
            lhs: u.shape(),
            rhs: (b.len(), 1),
        });
    }
    let n = u.rows();
    let mut x = b.to_vec();
    for i in (0..n).rev() {
        let row = u.row(i);
        let mut s = x[i];
        for k in (i + 1)..n {
            s -= row[k] * x[k];
        }
        let d = row[i];
        if d.abs() < SINGULAR_TOL {
            return Err(LinalgError::SingularTriangular { index: i });
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solves `A x = b` for symmetric positive definite `A` via Cholesky.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let f = cholesky(a)?;
    let y = solve_lower_triangular(&f.l, b)?;
    solve_upper_triangular(&f.l.transpose(), &y)
}

/// Inverts a symmetric positive definite matrix via Cholesky, solving against
/// each canonical basis vector.
///
/// The graphical lasso at `λ = 0` degenerates to exactly this inversion (with
/// a ridge retry handled by the caller), and the FDX report surfaces `Σ⁻¹`
/// diagnostics through it.
pub fn spd_inverse(a: &Matrix) -> Result<Matrix> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    let n = a.rows();
    let f = cholesky(a)?;
    let lt = f.l.transpose();
    let mut inv = Matrix::zeros(n, n);
    let mut e = vec![0.0; n];
    for j in 0..n {
        e[j] = 1.0;
        let y = solve_lower_triangular(&f.l, &e)?;
        let x = solve_upper_triangular(&lt, &y)?;
        for i in 0..n {
            inv[(i, j)] = x[i];
        }
        e[j] = 0.0;
    }
    // The inverse of a symmetric matrix is symmetric; scrub rounding drift so
    // downstream factorizations see an exactly symmetric operand.
    inv.symmetrize_mut();
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_solve_known() {
        let l = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]);
        let x = solve_lower_triangular(&l, &[4.0, 11.0]).unwrap();
        assert_eq!(x, vec![2.0, 3.0]);
    }

    #[test]
    fn upper_solve_known() {
        let u = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]);
        let x = solve_upper_triangular(&u, &[7.0, 9.0]).unwrap();
        assert_eq!(x, vec![2.0, 3.0]);
    }

    #[test]
    fn singular_diagonal_rejected() {
        let l = Matrix::from_rows(&[&[1.0, 0.0], &[5.0, 0.0]]);
        assert!(matches!(
            solve_lower_triangular(&l, &[1.0, 1.0]),
            Err(LinalgError::SingularTriangular { index: 1 })
        ));
    }

    #[test]
    fn spd_solve_recovers_solution() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        // Choose x = [1, 2]; b = A x = [6, 7].
        let x = solve_spd(&a, &[6.0, 7.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn spd_inverse_multiplies_to_identity() {
        let a = Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]]);
        let inv = spd_inverse(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert!((prod[(r, c)] - i[(r, c)]).abs() < 1e-10);
            }
        }
        assert_eq!(inv.asymmetry(), 0.0);
    }

    #[test]
    fn shape_errors_reported() {
        let l = Matrix::zeros(2, 2);
        assert!(matches!(
            solve_lower_triangular(&l, &[1.0; 3]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        let rect = Matrix::zeros(2, 3);
        assert!(matches!(
            spd_inverse(&rect),
            Err(LinalgError::NotSquare { .. })
        ));
    }
}
