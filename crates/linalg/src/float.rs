//! Float comparison helpers shared across the workspace.
//!
//! Two distinct comparison regimes show up in the kernels, and conflating
//! them is a classic source of silent numerical bugs:
//!
//! * **Tolerance comparisons** ([`approx_eq`]) — for values produced by
//!   arithmetic, where rounding error makes bitwise equality meaningless.
//! * **Exact-zero tests** ([`is_exact_zero`]) — for *structural* sparsity:
//!   coordinate-descent lasso and the glasso active set write literal
//!   `0.0` into coefficients they shrink away, and downstream code keys
//!   behavior off that exact sentinel. A tolerance here would misclassify
//!   small-but-genuine coefficients as absent and change the recovered
//!   dependency structure.
//!
//! All raw `==`/`!=` on floats outside this module is flagged by
//! `fdx-analyze` rule FDX-L002; code states which regime it wants by
//! calling the matching helper.

/// Default absolute tolerance for kernel-level comparisons of quantities
/// that went through a handful of floating-point operations.
pub const DEFAULT_TOL: f64 = 1e-12;

/// Absolute-tolerance equality: `|a - b| <= tol`.
///
/// NaN compares unequal to everything (the `<=` on a NaN difference is
/// false), matching IEEE intent.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// `approx_eq` with [`DEFAULT_TOL`].
#[inline]
pub fn approx_eq_default(a: f64, b: f64) -> bool {
    approx_eq(a, b, DEFAULT_TOL)
}

/// Exact structural-zero test, for sparsity sentinels written as literal
/// `0.0` (lasso shrinkage, active-set membership, skipped matrix entries).
/// Use [`approx_eq`] instead when the value came out of arithmetic.
#[inline]
pub fn is_exact_zero(x: f64) -> bool {
    // fdx-allow: L002 this is the blessed exact sparsity-sentinel test
    x == 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_respects_tolerance() {
        assert!(approx_eq(1.0, 1.0 + 1e-13, 1e-12));
        assert!(!approx_eq(1.0, 1.0 + 1e-11, 1e-12));
        assert!(approx_eq_default(0.1 + 0.2, 0.3));
    }

    #[test]
    fn approx_eq_rejects_nan() {
        assert!(!approx_eq(f64::NAN, f64::NAN, 1.0));
        assert!(!approx_eq(f64::NAN, 0.0, f64::INFINITY));
    }

    #[test]
    fn exact_zero_is_exact() {
        assert!(is_exact_zero(0.0));
        assert!(is_exact_zero(-0.0));
        assert!(!is_exact_zero(1e-300));
        assert!(!is_exact_zero(f64::NAN));
    }
}
