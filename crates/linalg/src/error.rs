use std::fmt;

/// Errors produced by the dense linear-algebra kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// What the caller tried to do, e.g. `"matmul"`.
        op: &'static str,
        /// Shape of the left operand.
        lhs: (usize, usize),
        /// Shape of the right operand.
        rhs: (usize, usize),
    },
    /// A factorization required a square matrix but received a rectangle.
    NotSquare {
        /// Shape of the offending matrix.
        shape: (usize, usize),
    },
    /// A Cholesky-style factorization hit a non-positive pivot.
    ///
    /// This means the input is not positive definite (numerically). The
    /// pivot index and value are reported to help callers decide whether to
    /// add diagonal regularization and retry.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
        /// Value observed at that pivot.
        value: f64,
    },
    /// A triangular solve encountered a zero (or subnormal) diagonal entry.
    SingularTriangular {
        /// Index of the zero diagonal entry.
        index: usize,
    },
    /// A permutation vector was not a bijection on `0..n`.
    InvalidPermutation {
        /// Length of the permutation.
        len: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            LinalgError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite: pivot {pivot} has value {value:.6e}"
            ),
            LinalgError::SingularTriangular { index } => {
                write!(f, "triangular matrix is singular at diagonal index {index}")
            }
            LinalgError::InvalidPermutation { len } => {
                write!(
                    f,
                    "permutation of length {len} is not a bijection on 0..{len}"
                )
            }
        }
    }
}

impl std::error::Error for LinalgError {}
