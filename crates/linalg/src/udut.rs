use crate::{ldlt, Matrix, Permutation, Result};

/// The permuted `Θ = U D Uᵀ` factorization at the heart of FDX's Algorithm 1.
///
/// Given a symmetric positive definite inverse-covariance estimate `Θ` and a
/// global attribute order `π`, this factor satisfies
///
/// ```text
/// P Θ Pᵀ = U · diag(d) · Uᵀ
/// ```
///
/// where `P` reorders coordinates by `π` and `U` is *unit upper-triangular*.
/// Comparing with the paper's Equation 5, `Θ = (I − B) Ω⁻¹ (I − B)ᵀ`, the
/// autoregression matrix of the linear structural equation model is
/// `B = I − U` (strictly upper-triangular in the permuted coordinates), and
/// `d` plays the role of `Ω⁻¹`'s diagonal.
#[derive(Debug, Clone)]
pub struct UdutFactor {
    /// Unit upper-triangular factor, in permuted coordinates.
    pub u: Matrix,
    /// Diagonal of `D`, in permuted coordinates.
    pub d: Vec<f64>,
    /// The attribute order used: position `i` holds original index
    /// `perm.image(i)`.
    pub perm: Permutation,
}

/// Factorizes `P Θ Pᵀ = U D Uᵀ` with unit upper-triangular `U`.
///
/// Implemented by running a standard LDLᵀ on the *order-reversed* permuted
/// matrix: if `J` is the reversal and `J (PΘPᵀ) J = L D̃ Lᵀ`, then
/// `PΘPᵀ = (J L J) (J D̃ J) (J Lᵀ J)` and `U = J L J` is unit
/// upper-triangular. Fails if `Θ` is not positive definite; callers add a
/// ridge and retry (the FDX pipeline does this automatically).
pub fn udut(theta: &Matrix, perm: &Permutation) -> Result<UdutFactor> {
    let n = theta.rows();
    debug_assert_eq!(perm.len(), n, "permutation length must match matrix size");
    // A = P Θ Pᵀ, then reverse both axes.
    let permuted = theta.permute_symmetric(perm.as_slice());
    let mut reversed = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            reversed[(i, j)] = permuted[(n - 1 - i, n - 1 - j)];
        }
    }
    let f = ldlt(&reversed)?;
    // U = J L J, d = reverse(d̃).
    let mut u = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            u[(i, j)] = f.l[(n - 1 - i, n - 1 - j)];
        }
    }
    let mut d = f.d;
    d.reverse();
    debug_assert!(
        is_unit_upper_triangular(&u),
        "UDUᵀ invariant violated: U must be unit upper-triangular"
    );
    debug_assert!(
        d.iter().all(|&p| p.is_finite() && p > 0.0),
        "UDUᵀ invariant violated: LDLᵀ of an SPD matrix yields positive finite pivots"
    );
    if fdx_obs::enabled() {
        record_factor_stats(&u, &d);
    }
    Ok(UdutFactor {
        u,
        d,
        perm: perm.clone(),
    })
}

/// Debug-build check that `u` has a unit diagonal and an exactly-zero
/// strict lower triangle (both hold exactly: the LDLᵀ writes literal values
/// there, no arithmetic is involved).
fn is_unit_upper_triangular(u: &Matrix) -> bool {
    let n = u.rows();
    (0..n).all(|i| {
        crate::float::approx_eq(u[(i, i)], 1.0, 0.0)
            && (0..i).all(|j| crate::float::is_exact_zero(u[(i, j)]))
    })
}

/// Pivot-conditioning and fill diagnostics for the factorization: the
/// extreme pivots of `D` bound how close `Θ` came to losing positive
/// definiteness, and the off-diagonal nonzero count of `U` is the fill the
/// chosen ordering produced (the quantity the paper's Table 9 heuristics
/// compete on).
fn record_factor_stats(u: &Matrix, d: &[f64]) {
    let min_pivot = d.iter().copied().fold(f64::INFINITY, f64::min);
    let max_pivot = d.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut fill_nnz = 0usize;
    let n = u.rows();
    for i in 0..n {
        for j in (i + 1)..n {
            if u[(i, j)].abs() > 1e-12 {
                fill_nnz += 1;
            }
        }
    }
    if d.is_empty() {
        fdx_obs::gauge_set("fdx.udut.min_pivot", 0.0);
        fdx_obs::gauge_set("fdx.udut.max_pivot", 0.0);
    } else {
        fdx_obs::gauge_set("fdx.udut.min_pivot", min_pivot);
        fdx_obs::gauge_set("fdx.udut.max_pivot", max_pivot);
    }
    fdx_obs::gauge_set("fdx.udut.fill_nnz", fill_nnz as f64);
}

impl UdutFactor {
    /// The autoregression matrix `B = I − U`, strictly upper-triangular in
    /// the permuted coordinates. Entry `B[i, j]` is the (signed) weight of
    /// attribute `perm.image(i)` in the linear equation for attribute
    /// `perm.image(j)` (paper Equation 4).
    pub fn autoregression(&self) -> Matrix {
        let n = self.u.rows();
        let mut b = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let id = if i == j { 1.0 } else { 0.0 };
                b[(i, j)] = id - self.u[(i, j)];
            }
        }
        b
    }

    /// Reconstructs `Θ` in the *original* coordinate order (testing and
    /// diagnostics).
    pub fn reconstruct(&self) -> Matrix {
        let n = self.u.rows();
        let mut ud = self.u.clone();
        for j in 0..n {
            for i in 0..n {
                ud[(i, j)] *= self.d[j];
            }
        }
        let ut = self.u.transpose();
        // fdx-allow: L001 UD and Uᵀ are square with matching dims by construction
        let permuted = ud.matmul(&ut).expect("square factors always multiply");
        // Undo the symmetric permutation: original = Pᵀ (PΘPᵀ) P.
        permuted.permute_symmetric(self.perm.inverse().as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd4() -> Matrix {
        Matrix::from_rows(&[
            &[4.0, 1.0, 0.5, 0.2],
            &[1.0, 3.0, 0.8, 0.1],
            &[0.5, 0.8, 2.5, 0.4],
            &[0.2, 0.1, 0.4, 1.5],
        ])
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                assert!(
                    (a[(r, c)] - b[(r, c)]).abs() < tol,
                    "mismatch at ({r},{c}): {} vs {}",
                    a[(r, c)],
                    b[(r, c)]
                );
            }
        }
    }

    #[test]
    fn u_is_unit_upper_triangular() {
        let theta = spd4();
        let f = udut(&theta, &Permutation::identity(4)).unwrap();
        for i in 0..4 {
            assert!((f.u[(i, i)] - 1.0).abs() < 1e-12);
            for j in 0..i {
                assert_eq!(f.u[(i, j)], 0.0, "below-diagonal entry ({i},{j})");
            }
            assert!(f.d[i] > 0.0);
        }
    }

    #[test]
    fn reconstruct_identity_perm() {
        let theta = spd4();
        let f = udut(&theta, &Permutation::identity(4)).unwrap();
        assert_close(&f.reconstruct(), &theta, 1e-10);
    }

    #[test]
    fn reconstruct_nontrivial_perm() {
        let theta = spd4();
        let perm = Permutation::from_order(vec![2, 0, 3, 1]).unwrap();
        let f = udut(&theta, &perm).unwrap();
        assert_close(&f.reconstruct(), &theta, 1e-10);
    }

    #[test]
    fn autoregression_is_strictly_upper() {
        let theta = spd4();
        let f = udut(&theta, &Permutation::identity(4)).unwrap();
        let b = f.autoregression();
        for i in 0..4 {
            assert_eq!(b[(i, i)], 0.0);
            for j in 0..i {
                assert_eq!(b[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn equation5_holds() {
        // Θ = (I − B) D (I − B)ᵀ with I − B = U.
        let theta = spd4();
        let perm = Permutation::from_order(vec![1, 3, 0, 2]).unwrap();
        let f = udut(&theta, &perm).unwrap();
        let b = f.autoregression();
        let n = 4;
        let mut i_minus_b = Matrix::identity(n);
        for r in 0..n {
            for c in 0..n {
                i_minus_b[(r, c)] -= b[(r, c)];
            }
        }
        assert_close(&i_minus_b, &f.u, 1e-12);
    }

    #[test]
    fn diagonal_matrix_gives_zero_b() {
        // Independent variables: Θ diagonal ⇒ B = 0 (no dependencies).
        let theta = Matrix::from_diag(&[2.0, 3.0, 4.0]);
        let f = udut(&theta, &Permutation::identity(3)).unwrap();
        let b = f.autoregression();
        assert_eq!(b.max_abs(), 0.0);
        assert_eq!(f.d, vec![2.0, 3.0, 4.0]);
    }
}
