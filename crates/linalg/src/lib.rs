//! Dense linear algebra substrate for the FDX reproduction.
//!
//! FDX's structure-learning step (paper §4.2) needs a small but complete set
//! of dense kernels: covariance-sized symmetric matrices, Cholesky and
//! LDLᵀ factorizations, the permuted `Θ = U·D·Uᵀ` decomposition that yields
//! the autoregression matrix `B = I − U`, triangular solves, and symmetric
//! positive-definite inversion. Everything is implemented from scratch on a
//! row-major [`Matrix`] of `f64` — the matrices involved are `k × k` where
//! `k` is the number of attributes (tens to a few hundred), so cache-simple
//! dense kernels are the right tool.
//!
//! # Example
//!
//! ```
//! use fdx_linalg::{Matrix, Permutation};
//!
//! // A small SPD matrix and its permuted UDUᵀ factorization.
//! let theta = Matrix::from_rows(&[
//!     &[4.0, 1.0, 0.5],
//!     &[1.0, 3.0, 0.2],
//!     &[0.5, 0.2, 2.0],
//! ]);
//! let perm = Permutation::identity(3);
//! let f = fdx_linalg::udut(&theta, &perm).unwrap();
//! let rebuilt = f.reconstruct();
//! for i in 0..3 {
//!     for j in 0..3 {
//!         assert!((rebuilt[(i, j)] - theta[(i, j)]).abs() < 1e-9);
//!     }
//! }
//! ```

mod bitmat;
mod cholesky;
mod error;
pub mod float;
mod matrix;
mod perm;
mod solve;
mod udut;

pub use bitmat::{and_popcount_words, BitMatrix};
pub use cholesky::{cholesky, ldlt, CholeskyFactor, LdltFactor};
pub use error::LinalgError;
pub use float::{approx_eq, approx_eq_default, is_exact_zero, DEFAULT_TOL};
pub use matrix::Matrix;
pub use perm::Permutation;
pub use solve::{solve_lower_triangular, solve_spd, solve_upper_triangular, spd_inverse};
pub use udut::{udut, UdutFactor};

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, LinalgError>;
