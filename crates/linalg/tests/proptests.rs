//! Property-based tests for the dense linear-algebra kernels.
//!
//! Random SPD matrices are generated as `A Aᵀ + εI` from random square `A`,
//! which is positive definite with probability one.

use fdx_linalg::{cholesky, ldlt, solve_spd, spd_inverse, udut, Matrix, Permutation};
use proptest::prelude::*;

/// Strategy: a random SPD matrix of size `n` with entries from a bounded range.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0..2.0f64, n * n).prop_map(move |data| {
        let a = Matrix::from_vec(n, n, data);
        let at = a.transpose();
        let mut spd = a.matmul(&at).unwrap();
        spd.add_diag_mut(0.5 + n as f64 * 0.01);
        spd
    })
}

fn permutation(n: usize) -> impl Strategy<Value = Permutation> {
    Just(()).prop_perturb(move |_, mut rng| {
        let mut order: Vec<usize> = (0..n).collect();
        // Fisher–Yates with the proptest rng for reproducible shrinking.
        for i in (1..n).rev() {
            let j = (rng.random::<u64>() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        Permutation::from_order(order).unwrap()
    })
}

fn close(a: &Matrix, b: &Matrix, tol: f64) -> bool {
    a.shape() == b.shape()
        && (0..a.rows()).all(|r| (0..a.cols()).all(|c| (a[(r, c)] - b[(r, c)]).abs() < tol))
}

proptest! {
    #[test]
    fn cholesky_roundtrips(a in spd_matrix(5)) {
        let f = cholesky(&a).unwrap();
        prop_assert!(close(&f.reconstruct(), &a, 1e-8));
    }

    #[test]
    fn ldlt_roundtrips(a in spd_matrix(6)) {
        let f = ldlt(&a).unwrap();
        prop_assert!(close(&f.reconstruct(), &a, 1e-8));
        for i in 0..6 {
            prop_assert!(f.d[i] > 0.0);
            prop_assert_eq!(f.l[(i, i)], 1.0);
        }
    }

    #[test]
    fn udut_roundtrips_under_any_order((a, p) in spd_matrix(6).prop_flat_map(|a| (Just(a), permutation(6)))) {
        let f = udut(&a, &p).unwrap();
        prop_assert!(close(&f.reconstruct(), &a, 1e-7));
        // U unit upper triangular regardless of the permutation.
        for i in 0..6 {
            prop_assert!((f.u[(i, i)] - 1.0).abs() < 1e-12);
            for j in 0..i {
                prop_assert_eq!(f.u[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn spd_solve_satisfies_system(a in spd_matrix(5), b in proptest::collection::vec(-3.0..3.0f64, 5)) {
        let x = solve_spd(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for i in 0..5 {
            prop_assert!((ax[i] - b[i]).abs() < 1e-6, "residual {} at {}", ax[i] - b[i], i);
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity(a in spd_matrix(4)) {
        let inv = spd_inverse(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        prop_assert!(close(&prod, &Matrix::identity(4), 1e-6));
    }

    #[test]
    fn log_det_consistent_between_factorizations(a in spd_matrix(5)) {
        let c = cholesky(&a).unwrap();
        let f = ldlt(&a).unwrap();
        prop_assert!((c.log_det() - f.log_det()).abs() < 1e-8);
    }

    #[test]
    fn transpose_involution(data in proptest::collection::vec(-10.0..10.0f64, 12)) {
        let m = Matrix::from_vec(3, 4, data);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associative(
        a in proptest::collection::vec(-1.0..1.0f64, 9),
        b in proptest::collection::vec(-1.0..1.0f64, 9),
        c in proptest::collection::vec(-1.0..1.0f64, 9),
    ) {
        let a = Matrix::from_vec(3, 3, a);
        let b = Matrix::from_vec(3, 3, b);
        let c = Matrix::from_vec(3, 3, c);
        let ab_c = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let a_bc = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(close(&ab_c, &a_bc, 1e-9));
    }
}
