//! # fdx-par — deterministic parallel runtime for the FDX pipeline
//!
//! The FDX pipeline's hot loops — the pair transform, the per-column lasso
//! regressions of structure learning, and the per-component graphical-lasso
//! solves after block screening — are all *embarrassingly parallel over an
//! index set*. This crate provides the one primitive they share: map a
//! function over a slice on a scoped thread pool and reduce the results **in
//! index order**, so that the output is bit-identical regardless of how many
//! threads executed the map.
//!
//! ## Determinism contract
//!
//! 1. **Work decomposition never depends on thread count.** Chunk boundaries
//!    in [`par_map_chunks`] are derived from `(len, chunk_size)` only; the
//!    unit of work in [`par_map_indexed`] is a single element. Adding threads
//!    changes *who* computes a piece, never *what* the piece is.
//! 2. **Reduction is ordered.** Results are placed into their original index
//!    slot and returned as a `Vec` in index order. Callers that fold the
//!    returned vector therefore see the same association order every run.
//! 3. **Worker functions must be pure** with respect to shared state (they
//!    receive `&T` and return an owned `R`). Under that condition,
//!    `threads == 1` (which runs inline on the caller thread, spawning
//!    nothing) and `threads == N` produce bit-identical output.
//!
//! Thread-count resolution: explicit request → `FDX_THREADS` env var →
//! `std::thread::available_parallelism()`.
//!
//! ## Observability
//!
//! When `fdx_obs::enabled()`, each parallel region records
//! `fdx.par.threads` (gauge: resolved thread count of the last region),
//! `fdx.par.tasks` (counter: elements mapped) and `fdx.par.regions`
//! (counter: parallel regions entered). Note that `fdx_obs::Span` phase
//! trees are thread-local; worker closures should therefore not open spans
//! (they would accumulate into per-thread forests invisible to the main
//! trace). Time the region from the caller instead.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Hardware parallelism as reported by the OS (≥ 1).
pub fn available() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parses an `FDX_THREADS`-style value: positive integer → that many
/// threads; `0`, empty, or garbage → `None` (fall through to the hardware
/// default). Factored out of [`default_threads`] so the policy is testable
/// without mutating process-global environment.
pub fn parse_threads(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// The process-default thread count: `FDX_THREADS` if set to a positive
/// integer, otherwise [`available`].
pub fn default_threads() -> usize {
    parse_threads(std::env::var("FDX_THREADS").ok().as_deref()).unwrap_or_else(available)
}

/// Resolves a configured thread request (`None` = use the process default)
/// to a concrete count ≥ 1.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    requested.filter(|&n| n > 0).unwrap_or_else(default_threads)
}

fn record_region(threads: usize, tasks: usize) {
    if fdx_obs::enabled() {
        fdx_obs::gauge_set("fdx.par.threads", threads as f64);
        fdx_obs::counter_add("fdx.par.tasks", tasks as u64);
        fdx_obs::counter_add("fdx.par.regions", 1);
    }
}

/// Maps `f(index, &item)` over `items` on up to `threads` scoped threads and
/// returns the results in index order.
///
/// Scheduling is dynamic (an atomic work queue hands out indices), but the
/// unit of work is a single element and the reduction is ordered, so the
/// output is independent of scheduling. With `threads <= 1` or fewer than
/// two items the map runs inline on the caller thread.
pub fn par_map_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n);
    record_region(workers.max(1), n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let produced: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        // fdx-allow: L010 the counter only hands out indices; results are reduced in index order, so no ordering stronger than the RMW's own atomicity is needed
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(out) => out,
                // Re-raise the worker's own panic payload on the caller
                // thread instead of wrapping it in a join error.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (i, r) in produced.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|slot| match slot {
            Some(r) => r,
            // fdx-allow: L001 the work queue covers every index exactly once
            None => unreachable!("fdx-par: unfilled result slot"),
        })
        .collect()
}

/// Splits `items` into consecutive chunks of `chunk_size` (the last chunk
/// may be shorter), maps `f(chunk_index, chunk)` over them on up to
/// `threads` scoped threads, and returns the chunk results in chunk order.
///
/// Chunk boundaries depend only on `(items.len(), chunk_size)` — never on
/// `threads` — so a caller that merges the returned partials left-to-right
/// performs the identical reduction tree at every thread count. This is the
/// primitive behind the pair transform's deterministic parallelism.
pub fn par_map_chunks<T, R, F>(items: &[T], chunk_size: usize, threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let chunk = chunk_size.max(1);
    let chunks: Vec<&[T]> = items.chunks(chunk).collect();
    par_map_indexed(&chunks, threads, |i, c| f(i, c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_threads_policy() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 8 ")), Some(8));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("many")), None);
        assert_eq!(parse_threads(Some("-2")), None);
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn resolve_threads_prefers_explicit_request() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert!(resolve_threads(None) >= 1);
        assert!(resolve_threads(Some(0)) >= 1);
    }

    #[test]
    fn map_indexed_is_identical_across_thread_counts() {
        let items: Vec<u64> = (0..257).collect();
        let f = |i: usize, &x: &u64| -> f64 { (x as f64 + i as f64).sqrt() * 1.000000001_f64 };
        let seq = par_map_indexed(&items, 1, f);
        for threads in [2, 3, 8, 64] {
            let par = par_map_indexed(&items, threads, f);
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn map_chunks_boundaries_are_thread_independent() {
        let items: Vec<u32> = (0..100).collect();
        // Record the exact chunk extents seen at each thread count.
        let extents = |threads: usize| -> Vec<(usize, u32, usize)> {
            par_map_chunks(&items, 7, threads, |ci, c| (ci, c[0], c.len()))
        };
        let one = extents(1);
        assert_eq!(one.len(), 100usize.div_ceil(7));
        assert_eq!(one[0], (0, 0, 7));
        assert_eq!(one[one.len() - 1].2, 100 - 7 * (one.len() - 1));
        for threads in [2, 5, 16] {
            assert_eq!(one, extents(threads));
        }
    }

    #[test]
    fn ordered_reduction_matches_sequential_fold() {
        // Float summation is order-sensitive; the ordered merge must make
        // the parallel fold bitwise equal to the sequential one.
        let items: Vec<f64> = (0..1000).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let partials = par_map_chunks(&items, 13, 8, |_, c| c.iter().sum::<f64>());
        let folded: f64 = partials.iter().sum();
        let seq_partials = par_map_chunks(&items, 13, 1, |_, c| c.iter().sum::<f64>());
        let seq: f64 = seq_partials.iter().sum();
        assert_eq!(folded.to_bits(), seq.to_bits());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map_indexed(&empty, 8, |_, &x| x).is_empty());
        assert!(par_map_chunks(&empty, 4, 8, |_, c| c.len()).is_empty());
        assert_eq!(par_map_indexed(&[41u8], 8, |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = par_map_indexed(&[1, 2, 3], 64, |_, &x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn chunk_size_zero_is_clamped_to_one() {
        let out = par_map_chunks(&[10, 20], 0, 2, |_, c| c.to_vec());
        assert_eq!(out, vec![vec![10], vec![20]]);
    }

    #[test]
    fn records_obs_gauges_when_enabled() {
        fdx_obs::set_enabled(true);
        fdx_obs::Registry::global().reset();
        let _ = par_map_indexed(&[1, 2, 3, 4], 2, |_, &x: &i32| x);
        let snap = fdx_obs::Registry::global().snapshot();
        let jsonl = fdx_obs::export_jsonl(&snap);
        fdx_obs::set_enabled(false);
        fdx_obs::Registry::global().reset();
        assert!(jsonl.contains("fdx.par.threads"), "{jsonl}");
        assert!(jsonl.contains("fdx.par.tasks"), "{jsonl}");
        assert!(jsonl.contains("fdx.par.regions"), "{jsonl}");
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..8).collect();
        let _ = par_map_indexed(&items, 4, |i, _| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}
