//! Property tests for connected-component screening: the screened +
//! parallel graphical lasso must match the unscreened sequential solver
//! entrywise (≤ 1e-12) on randomized SPD covariances, across λ values that
//! split the graph into 1, several, and p components — and must be
//! bit-identical across thread counts.
//!
//! Hand-rolled randomness (splitmix64): `proptest` is a dev-dependency the
//! offline build cannot fetch, and a fixed deterministic seed sequence is
//! exactly what a cross-solver equivalence test wants anyway.

use fdx_glasso::{graphical_lasso, screen_components, GlassoConfig};
use fdx_linalg::Matrix;

struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in [lo, hi).
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }
}

/// A random diagonally dominant SPD correlation-like block: unit diagonal,
/// off-diagonal magnitudes in [0.15, 0.45) with random signs, scaled so the
/// matrix stays strictly diagonally dominant (sum of a row's off-diagonal
/// magnitudes < 0.9).
fn random_spd_block(rng: &mut SplitMix64, p: usize) -> Matrix {
    let mut m = Matrix::identity(p);
    if p == 1 {
        return m;
    }
    let cap = 0.9 / (p - 1) as f64;
    for i in 0..p {
        for j in (i + 1)..p {
            let mag = rng.range(0.15, 0.45).min(cap.max(0.05));
            let v = if rng.unit() < 0.5 { mag } else { -mag };
            m[(i, j)] = v;
            m[(j, i)] = v;
        }
    }
    m
}

/// Embeds random SPD blocks of the given sizes block-diagonally (exact 0.0
/// cross-coupling) into one covariance.
fn block_diag_spd(rng: &mut SplitMix64, sizes: &[usize]) -> Matrix {
    let p: usize = sizes.iter().sum();
    let mut s = Matrix::zeros(p, p);
    let mut base = 0;
    for &size in sizes {
        let block = random_spd_block(rng, size);
        for a in 0..size {
            for b in 0..size {
                s[(base + a, base + b)] = block[(a, b)];
            }
        }
        base += size;
    }
    s
}

fn max_entry_diff(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.shape(), b.shape());
    let mut worst = 0.0_f64;
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            worst = worst.max((a[(i, j)] - b[(i, j)]).abs());
        }
    }
    worst
}

fn assert_bit_identical(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape());
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            assert_eq!(
                a[(i, j)].to_bits(),
                b[(i, j)].to_bits(),
                "{what}: entry ({i}, {j}): {} vs {}",
                a[(i, j)],
                b[(i, j)]
            );
        }
    }
}

/// Runs the screened solver with the given thread count. A near-zero
/// tolerance makes the outer loop stop only at an exact fixed point (or the
/// sweep budget), which pins the comparison against the unscreened run: on
/// exactly block-diagonal inputs the two perform bit-identical per-sweep
/// updates within each block.
fn solve(s: &Matrix, lambda: f64, screen: bool, threads: usize) -> fdx_glasso::GlassoResult {
    let cfg = GlassoConfig {
        lambda,
        max_iter: 200,
        tol: 1e-300,
        screen,
        threads: Some(threads),
        ..Default::default()
    };
    graphical_lasso(s, &cfg).unwrap()
}

#[test]
fn single_component_lambda_takes_the_identical_path() {
    // λ below every |S_ij|: the graph stays fully connected, screening is a
    // no-op, and the screened solver must be bit-identical to the
    // unscreened one (same code path by construction).
    let mut rng = SplitMix64(0xFD_0401);
    for trial in 0..5 {
        let s = random_spd_block(&mut rng, 6);
        let lambda = 0.01; // < 0.05 ≤ min |off-diagonal|
        assert_eq!(screen_components(&s, lambda).len(), 1, "trial {trial}");
        let screened = solve(&s, lambda, true, 4);
        let unscreened = solve(&s, lambda, false, 1);
        assert_eq!(screened.components, 1);
        assert_bit_identical(&screened.theta, &unscreened.theta, "theta");
        assert_bit_identical(&screened.w, &unscreened.w, "w");
    }
}

#[test]
fn multi_component_split_matches_unscreened_within_1e12() {
    // Exactly block-diagonal S: the screening graph splits into one
    // component per block, and per the Witten/Mazumder–Hastie theorem the
    // screened solution equals the unscreened one.
    let mut rng = SplitMix64(0xFD_0402);
    for sizes in [vec![3, 2, 4], vec![2, 2, 2, 2], vec![5, 1, 3]] {
        let s = block_diag_spd(&mut rng, &sizes);
        let lambda = 0.05; // below in-block magnitudes, above the 0.0 cross
        let comps = screen_components(&s, lambda);
        assert_eq!(comps.len(), sizes.len(), "sizes {sizes:?}");
        let screened = solve(&s, lambda, true, 4);
        let unscreened = solve(&s, lambda, false, 1);
        assert_eq!(screened.components, sizes.len());
        let dtheta = max_entry_diff(&screened.theta, &unscreened.theta);
        let dw = max_entry_diff(&screened.w, &unscreened.w);
        assert!(dtheta <= 1e-12, "sizes {sizes:?}: theta diff {dtheta:e}");
        assert!(dw <= 1e-12, "sizes {sizes:?}: w diff {dw:e}");
    }
}

#[test]
fn all_singletons_lambda_matches_unscreened_within_1e12() {
    // λ above every |S_ij|: p singleton components; the unscreened solver
    // soft-thresholds every coupling to zero and converges to
    // W = diag(S) + λI, which is exactly the screened assembly.
    let mut rng = SplitMix64(0xFD_0403);
    for trial in 0..5 {
        let s = random_spd_block(&mut rng, 7);
        let lambda = 0.95; // > 0.45 ≥ max |off-diagonal|
        let comps = screen_components(&s, lambda);
        assert_eq!(comps.len(), 7, "trial {trial}");
        let screened = solve(&s, lambda, true, 4);
        let unscreened = solve(&s, lambda, false, 1);
        assert_eq!(screened.components, 7);
        let dtheta = max_entry_diff(&screened.theta, &unscreened.theta);
        let dw = max_entry_diff(&screened.w, &unscreened.w);
        assert!(dtheta <= 1e-12, "trial {trial}: theta diff {dtheta:e}");
        assert!(dw <= 1e-12, "trial {trial}: w diff {dw:e}");
    }
}

#[test]
fn thread_count_never_changes_the_result() {
    // Across the whole λ grid (1, several, p components), every thread
    // count must produce bit-identical Θ and W.
    let mut rng = SplitMix64(0xFD_0404);
    let s = block_diag_spd(&mut rng, &[4, 3, 2]);
    for lambda in [0.01, 0.05, 0.2, 0.95] {
        let reference = solve(&s, lambda, true, 1);
        for threads in [2, 3, 4, 8] {
            let other = solve(&s, lambda, true, threads);
            assert_bit_identical(
                &reference.theta,
                &other.theta,
                &format!("lambda {lambda} threads {threads} theta"),
            );
            assert_bit_identical(
                &reference.w,
                &other.w,
                &format!("lambda {lambda} threads {threads} w"),
            );
            assert_eq!(reference.components, other.components);
            assert_eq!(reference.iterations, other.iterations);
        }
    }
}

#[test]
fn warm_start_does_not_change_the_screened_fixed_point() {
    // Resuming a tight-tolerance solve from its own solution must converge
    // immediately to the same fixed point, through the screened parallel
    // path as well.
    let mut rng = SplitMix64(0xFD_0405);
    let s = block_diag_spd(&mut rng, &[3, 3, 2]);
    let lambda = 0.05;
    let cold = solve(&s, lambda, true, 4);
    let warm = graphical_lasso(
        &s,
        &GlassoConfig {
            lambda,
            max_iter: 200,
            tol: 1e-300,
            threads: Some(4),
            warm_start: Some(fdx_glasso::WarmStart {
                theta: cold.theta.clone(),
                w: cold.w.clone(),
            }),
            ..Default::default()
        },
    )
    .unwrap();
    let dtheta = max_entry_diff(&warm.theta, &cold.theta);
    assert!(dtheta <= 1e-9, "theta diff {dtheta:e}");
}
