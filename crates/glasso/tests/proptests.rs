//! Property-based tests for the graphical lasso.

use fdx_glasso::{graphical_lasso, neighborhood_selection, GlassoConfig};
use fdx_linalg::{cholesky, Matrix};
use proptest::prelude::*;

/// Strategy: a random correlation-like SPD matrix.
fn corr_matrix(k: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0..1.0f64, k * k).prop_map(move |data| {
        let a = Matrix::from_vec(k, k, data);
        let mut s = a.matmul(&a.transpose()).unwrap();
        // Normalize to unit diagonal (correlation form) with a floor.
        let d: Vec<f64> = (0..k).map(|i| s[(i, i)].max(1e-6).sqrt()).collect();
        for i in 0..k {
            for j in 0..k {
                s[(i, j)] /= d[i] * d[j];
            }
        }
        s.scale_mut(0.8);
        s.add_diag_mut(0.2);
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn theta_is_positive_definite(s in corr_matrix(5), lambda in 0.0..0.4f64) {
        let cfg = GlassoConfig { lambda, ..GlassoConfig::default() };
        let r = graphical_lasso(&s, &cfg).unwrap();
        prop_assert!(cholesky(&r.theta).is_ok(), "theta not PD at lambda={lambda}");
        prop_assert!(r.theta.asymmetry() < 1e-9);
    }

    #[test]
    fn heavy_penalty_gives_diagonal_theta(s in corr_matrix(4)) {
        let cfg = GlassoConfig { lambda: 2.0, ..GlassoConfig::default() };
        let r = graphical_lasso(&s, &cfg).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    prop_assert!(r.theta[(i, j)].abs() < 1e-8);
                }
            }
        }
    }

    #[test]
    fn lambda_zero_inverts(s in corr_matrix(4)) {
        let r = graphical_lasso(&s, &GlassoConfig::default()).unwrap();
        let prod = s.matmul(&r.theta).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let want = if i == j { 1.0 } else { 0.0 };
                prop_assert!((prod[(i, j)] - want).abs() < 1e-5,
                    "S*Theta[{i},{j}] = {}", prod[(i, j)]);
            }
        }
    }

    #[test]
    fn neighborhood_selection_is_symmetric(s in corr_matrix(5), lambda in 0.01..0.5f64) {
        let adj = neighborhood_selection(&s, lambda).unwrap();
        for i in 0..5 {
            prop_assert_eq!(adj[(i, i)], 0.0);
            for j in 0..5 {
                prop_assert_eq!(adj[(i, j)], adj[(j, i)]);
                prop_assert!(adj[(i, j)] == 0.0 || adj[(i, j)] == 1.0);
            }
        }
    }
}
