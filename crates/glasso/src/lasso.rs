use fdx_linalg::{is_exact_zero, Matrix};

/// Coordinate-descent solver for the quadratic lasso subproblem
///
/// ```text
/// min_β  ½ βᵀ V β − sᵀ β + λ‖β‖₁
/// ```
///
/// with symmetric positive (semi-)definite `V`. This is exactly the
/// per-column subproblem of the graphical lasso (Friedman et al. 2008,
/// Eq. 2.4) and, with `V = XᵀX/n`, the covariance-form lasso used by
/// Meinshausen–Bühlmann neighborhood selection.
///
/// `beta` is used as a warm start and overwritten with the solution.
/// Returns the number of full coordinate sweeps performed.
pub fn lasso_coordinate_descent(
    v: &Matrix,
    s: &[f64],
    lambda: f64,
    beta: &mut [f64],
    max_sweeps: usize,
    tol: f64,
) -> usize {
    let p = s.len();
    debug_assert_eq!(v.shape(), (p, p));
    debug_assert_eq!(beta.len(), p);
    if p == 0 {
        return 0;
    }
    // Maintain the gradient residual r = s − V β incrementally: each
    // coordinate update costs O(p) instead of recomputing V β from scratch.
    let mut r: Vec<f64> = (0..p)
        .map(|i| {
            let mut acc = s[i];
            for (k, &bk) in beta.iter().enumerate() {
                if !is_exact_zero(bk) {
                    acc -= v[(i, k)] * bk;
                }
            }
            acc
        })
        .collect();

    for sweep in 1..=max_sweeps {
        let mut max_delta = 0.0_f64;
        for j in 0..p {
            let vjj = v[(j, j)];
            if vjj <= 0.0 {
                continue;
            }
            let old = beta[j];
            // Partial residual including j's own contribution.
            let rho = r[j] + vjj * old;
            let new = soft_threshold(rho, lambda) / vjj;
            if new != old {
                let delta = new - old;
                beta[j] = new;
                for (i, ri) in r.iter_mut().enumerate() {
                    *ri -= v[(i, j)] * delta;
                }
                max_delta = max_delta.max(delta.abs());
            }
        }
        if max_delta < tol {
            return sweep;
        }
    }
    max_sweeps
}

/// The soft-thresholding operator `sign(x)·max(|x|−λ, 0)`.
#[inline]
pub(crate) fn soft_threshold(x: f64, lambda: f64) -> f64 {
    if x > lambda {
        x - lambda
    } else if x < -lambda {
        x + lambda
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(-0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(2.0, 0.0), 2.0);
    }

    #[test]
    fn unpenalized_solves_linear_system() {
        // λ = 0 ⇒ β = V⁻¹ s.
        let v = Matrix::from_rows(&[&[2.0, 0.3], &[0.3, 1.5]]);
        let s = [1.0, 0.9];
        let mut beta = [0.0, 0.0];
        lasso_coordinate_descent(&v, &s, 0.0, &mut beta, 1000, 1e-12);
        let expected = fdx_linalg::solve_spd(&v, &s).unwrap();
        assert!((beta[0] - expected[0]).abs() < 1e-9);
        assert!((beta[1] - expected[1]).abs() < 1e-9);
    }

    #[test]
    fn orthogonal_design_gives_closed_form() {
        // V = I ⇒ β_j = soft(s_j, λ).
        let v = Matrix::identity(3);
        let s = [2.0, -0.5, 1.2];
        let mut beta = [0.0; 3];
        lasso_coordinate_descent(&v, &s, 1.0, &mut beta, 100, 1e-12);
        assert!((beta[0] - 1.0).abs() < 1e-12);
        assert_eq!(beta[1], 0.0);
        assert!((beta[2] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn heavy_penalty_zeroes_everything() {
        let v = Matrix::from_rows(&[&[1.0, 0.2], &[0.2, 1.0]]);
        let s = [0.3, -0.2];
        let mut beta = [0.5, 0.5];
        lasso_coordinate_descent(&v, &s, 10.0, &mut beta, 100, 1e-12);
        assert_eq!(beta, [0.0, 0.0]);
    }

    #[test]
    fn kkt_conditions_hold() {
        let v = Matrix::from_rows(&[&[1.0, 0.4, 0.1], &[0.4, 1.0, 0.2], &[0.1, 0.2, 1.0]]);
        let s = [0.8, 0.1, -0.6];
        let lambda = 0.15;
        let mut beta = [0.0; 3];
        lasso_coordinate_descent(&v, &s, lambda, &mut beta, 2000, 1e-13);
        // KKT: for β_j ≠ 0, (Vβ − s)_j = −λ sign(β_j); for β_j = 0, |(Vβ − s)_j| ≤ λ.
        for j in 0..3 {
            let grad_j: f64 = (0..3).map(|k| v[(j, k)] * beta[k]).sum::<f64>() - s[j];
            if beta[j] > 0.0 {
                assert!((grad_j + lambda).abs() < 1e-8, "j={j}: {grad_j}");
            } else if beta[j] < 0.0 {
                assert!((grad_j - lambda).abs() < 1e-8, "j={j}: {grad_j}");
            } else {
                assert!(grad_j.abs() <= lambda + 1e-8, "j={j}: {grad_j}");
            }
        }
    }

    #[test]
    fn warm_start_converges_fast() {
        let v = Matrix::from_rows(&[&[1.0, 0.3], &[0.3, 1.0]]);
        let s = [0.5, 0.4];
        let mut beta = [0.0; 2];
        lasso_coordinate_descent(&v, &s, 0.05, &mut beta, 1000, 1e-12);
        let mut warm = beta;
        let sweeps = lasso_coordinate_descent(&v, &s, 0.05, &mut warm, 1000, 1e-12);
        assert!(
            sweeps <= 2,
            "warm start should converge immediately, took {sweeps}"
        );
        for (w, b) in warm.iter().zip(&beta) {
            assert!((w - b).abs() < 1e-10);
        }
    }

    #[test]
    fn empty_problem_is_noop() {
        let v = Matrix::zeros(0, 0);
        let mut beta: [f64; 0] = [];
        assert_eq!(
            lasso_coordinate_descent(&v, &[], 0.1, &mut beta, 10, 1e-8),
            0
        );
    }
}
