//! Exact connected-component screening for the graphical lasso.
//!
//! Witten, Friedman & Simon (2011) and Mazumder & Hastie (2012) proved that
//! the graphical-lasso solution `Θ` is block diagonal with respect to the
//! connected components of the thresholded covariance graph: put an edge
//! between variables `i ≠ j` iff `|S_ij| > λ`. Each component's block of `Θ`
//! is then **exactly** the solution of the component's own graphical-lasso
//! subproblem, and every cross-component entry of `Θ` (and of the working
//! covariance `W`) is `0` (resp. exactly `0` off-diagonal, since
//! `|S_ij| ≤ λ` implies the soft-threshold kills the coupling).
//!
//! Screening therefore turns one `O(p³)`-per-sweep solve into independent
//! sub-solves that are both smaller and embarrassingly parallel — without
//! changing the optimum at all.

use fdx_linalg::Matrix;

/// Disjoint-set forest over `0..n` with union by rank and path halving.
/// Entirely deterministic: the resulting partition depends only on the edge
/// set, and [`components`] canonicalizes the output ordering.
struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
    }
}

/// Partitions the variables of a symmetric covariance `S` into the connected
/// components of the `|S_ij| > λ` graph.
///
/// The returned components are each sorted ascending and ordered by their
/// smallest member, so the output is a canonical function of `(S, λ)` —
/// independent of traversal order and thread count.
pub fn components(s: &Matrix, lambda: f64) -> Vec<Vec<usize>> {
    let p = s.rows();
    let mut uf = UnionFind::new(p);
    for i in 0..p {
        for j in (i + 1)..p {
            if s[(i, j)].abs() > lambda || s[(j, i)].abs() > lambda {
                uf.union(i, j);
            }
        }
    }
    // Group members by root, preserving ascending order within and across
    // components (roots are keyed by their smallest member).
    let mut by_root: Vec<Vec<usize>> = vec![Vec::new(); p];
    let mut root_order: Vec<usize> = Vec::new();
    for v in 0..p {
        let r = uf.find(v);
        if by_root[r].is_empty() {
            root_order.push(r);
        }
        by_root[r].push(v);
    }
    root_order
        .into_iter()
        .map(|r| std::mem::take(&mut by_root[r]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_connected_is_one_component() {
        let s = Matrix::from_rows(&[&[1.0, 0.5, 0.4], &[0.5, 1.0, 0.6], &[0.4, 0.6, 1.0]]);
        assert_eq!(components(&s, 0.1), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn large_lambda_gives_all_singletons() {
        let s = Matrix::from_rows(&[&[1.0, 0.5], &[0.5, 1.0]]);
        assert_eq!(components(&s, 0.9), vec![vec![0], vec![1]]);
    }

    #[test]
    fn threshold_is_strict() {
        // |S_01| == λ exactly: the edge must NOT survive (the theorem's
        // condition is strict; soft-thresholding kills |x| ≤ λ).
        let s = Matrix::from_rows(&[&[1.0, 0.3], &[0.3, 1.0]]);
        assert_eq!(components(&s, 0.3), vec![vec![0], vec![1]]);
        assert_eq!(components(&s, 0.29), vec![vec![0, 1]]);
    }

    #[test]
    fn interleaved_blocks_are_recovered() {
        // {0, 2} and {1, 3} coupled across non-adjacent indices.
        let s = Matrix::from_rows(&[
            &[1.0, 0.0, 0.7, 0.0],
            &[0.0, 1.0, 0.0, 0.8],
            &[0.7, 0.0, 1.0, 0.0],
            &[0.0, 0.8, 0.0, 1.0],
        ]);
        assert_eq!(components(&s, 0.2), vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn transitive_chains_merge() {
        // 0—1 and 1—2 edges: one component {0, 1, 2} even though |S_02| = 0.
        let s = Matrix::from_rows(&[&[1.0, 0.5, 0.0], &[0.5, 1.0, 0.5], &[0.0, 0.5, 1.0]]);
        assert_eq!(components(&s, 0.2), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn asymmetric_input_uses_either_triangle() {
        let mut s = Matrix::zeros(2, 2);
        s[(0, 0)] = 1.0;
        s[(1, 1)] = 1.0;
        s[(1, 0)] = 0.6; // only the lower triangle carries the edge
        assert_eq!(components(&s, 0.2), vec![vec![0, 1]]);
    }

    #[test]
    fn empty_matrix() {
        let s = Matrix::zeros(0, 0);
        assert!(components(&s, 0.1).is_empty());
    }
}
