//! Sparse inverse-covariance estimation for the FDX reproduction.
//!
//! FDX's structure learning (paper §4.2) estimates the inverse covariance
//! `Θ = Σ⁻¹` of the pair-difference samples by solving
//!
//! ```text
//! min_{Θ ≻ 0}  −log det Θ + tr(S Θ) + λ‖Θ‖₁
//! ```
//!
//! The paper uses **graphical lasso** (Friedman, Hastie, Tibshirani 2008)
//! "as it is known to scale favorably to instances with a large number of
//! variables". This crate implements:
//!
//! * [`graphical_lasso`] — block coordinate descent over columns of the
//!   working covariance `W`, with a coordinate-descent lasso inner solver,
//! * [`precision_from_covariance`] — the `λ = 0` fast path (ridge-stabilized
//!   direct inversion), which is FDX's default "sparsity 0" setting in the
//!   paper's Table 8,
//! * [`neighborhood_selection`] — the Meinshausen–Bühlmann regression
//!   alternative (paper §2.2 cites both optimization- and regression-based
//!   estimators), used for cross-checking the recovered support.

mod lasso;

pub use lasso::lasso_coordinate_descent;

use fdx_linalg::{spd_inverse, LinalgError, Matrix};

/// Configuration for [`graphical_lasso`].
#[derive(Debug, Clone)]
pub struct GlassoConfig {
    /// ℓ₁ penalty λ. `0.0` selects the direct-inversion fast path.
    pub lambda: f64,
    /// Maximum outer sweeps over all columns.
    pub max_iter: usize,
    /// Convergence tolerance on the mean absolute change of `W`'s
    /// off-diagonal entries, relative to the mean absolute off-diagonal of
    /// `S`.
    pub tol: f64,
    /// Initial ridge added to the diagonal when the input covariance is
    /// (numerically) singular; escalated ×10 on repeated failure.
    pub ridge: f64,
}

impl Default for GlassoConfig {
    fn default() -> Self {
        GlassoConfig {
            lambda: 0.0,
            max_iter: 100,
            tol: 1e-4,
            ridge: 1e-6,
        }
    }
}

impl GlassoConfig {
    /// The escalated-retry variant of this configuration: tolerance relaxed
    /// ×10, initial ridge escalated ×100, same λ and sweep budget. This is
    /// rung 2 of the FDX recovery ladder (`fdx_core::resilience`) — loose
    /// enough to converge on inputs where the configured solve plateaus,
    /// tight enough that the recovered support is still meaningful.
    pub fn relaxed_retry(&self) -> GlassoConfig {
        GlassoConfig {
            lambda: self.lambda,
            max_iter: self.max_iter,
            tol: self.tol * 10.0,
            ridge: (self.ridge * 100.0).max(1e-8),
        }
    }
}

/// Output of [`graphical_lasso`].
#[derive(Debug, Clone)]
pub struct GlassoResult {
    /// The estimated sparse precision matrix `Θ`.
    pub theta: Matrix,
    /// The estimated covariance `W ≈ Θ⁻¹` maintained by the algorithm.
    pub w: Matrix,
    /// Outer sweeps performed.
    pub iterations: usize,
    /// Whether the `tol` criterion was met within `max_iter` sweeps.
    pub converged: bool,
    /// How many ×10 ridge escalations the λ = 0 direct-inversion path needed
    /// before Cholesky succeeded (0 for the λ > 0 solver, which regularizes
    /// through the penalty itself). Recovery bookkeeping: the FDX pipeline
    /// copies this into its `RunHealth` report.
    pub ridge_escalations: u32,
}

/// Estimates a sparse precision matrix from an empirical covariance `S`.
///
/// With `lambda == 0` this reduces to [`precision_from_covariance`] (exact
/// inverse with automatic ridge stabilization), matching the paper's default
/// sparsity setting. With `lambda > 0` it runs the Friedman et al. block
/// coordinate descent: for each column `j`, the off-diagonal block of `W` is
/// updated by solving the lasso subproblem
/// `min_β ½ βᵀ W₁₁ β − s₁₂ᵀ β + λ‖β‖₁`, and on convergence `Θ` is recovered
/// from the regression coefficients.
///
/// # Errors
///
/// Returns [`LinalgError`] if `S` is not square or cannot be stabilized into
/// a positive definite matrix.
pub fn graphical_lasso(s: &Matrix, cfg: &GlassoConfig) -> fdx_linalg::Result<GlassoResult> {
    if !s.is_square() {
        return Err(LinalgError::NotSquare { shape: s.shape() });
    }
    let _span = fdx_obs::Span::enter("fdx.glasso");
    let p = s.rows();
    if cfg.lambda <= 0.0 {
        let inv = precision_from_covariance_report(s, cfg.ridge)?;
        let w = spd_inverse(&inv.theta)?;
        let converged = !fdx_obs::faults::fire("glasso.force_no_converge");
        record_summary(s, &inv.theta, cfg.lambda, 0, converged);
        return Ok(GlassoResult {
            theta: inv.theta,
            w,
            iterations: 0,
            converged,
            ridge_escalations: inv.escalations,
        });
    }
    if p == 1 {
        let w00 = s[(0, 0)] + cfg.lambda;
        let theta = Matrix::from_diag(&[1.0 / w00]);
        record_summary(s, &theta, cfg.lambda, 0, true);
        return Ok(GlassoResult {
            theta,
            w: Matrix::from_diag(&[w00]),
            iterations: 0,
            converged: true,
            ridge_escalations: 0,
        });
    }

    // W = S with λ added on the diagonal (standard glasso initialization).
    let mut w = s.clone();
    w.add_diag_mut(cfg.lambda);
    // Regression coefficients per column, kept to reconstruct Θ at the end.
    let mut betas = vec![vec![0.0; p - 1]; p];

    // Scale for the convergence criterion: mean |off-diagonal of S|.
    let mut off_sum = 0.0;
    for i in 0..p {
        for j in 0..p {
            if i != j {
                off_sum += s[(i, j)].abs();
            }
        }
    }
    let scale = (off_sum / ((p * p - p) as f64)).max(1e-12);

    let mut iterations = 0;
    let mut converged = false;
    let mut others: Vec<usize> = Vec::with_capacity(p - 1);
    let mut s12 = vec![0.0; p - 1];
    while iterations < cfg.max_iter {
        iterations += 1;
        let sweep_span = fdx_obs::Span::enter("glasso.sweep");
        let mut total_change = 0.0;
        for j in 0..p {
            others.clear();
            others.extend((0..p).filter(|&i| i != j));
            let w11 = w.principal_submatrix(&others);
            for (t, &i) in others.iter().enumerate() {
                s12[t] = s[(i, j)];
            }
            let beta = &mut betas[j];
            lasso_coordinate_descent(&w11, &s12, cfg.lambda, beta, 200, cfg.tol * 1e-2);
            // w12 = W11 β.
            for (t, &i) in others.iter().enumerate() {
                let mut v = 0.0;
                for (u, &bu) in beta.iter().enumerate() {
                    if !fdx_linalg::is_exact_zero(bu) {
                        v += w11[(t, u)] * bu;
                    }
                }
                total_change += (w[(i, j)] - v).abs();
                w[(i, j)] = v;
                w[(j, i)] = v;
            }
        }
        let avg_change = total_change / ((p * p - p) as f64);
        drop(sweep_span);
        if fdx_obs::enabled() {
            record_sweep(s, &w, &betas, cfg.lambda, iterations, avg_change);
        }
        if avg_change < cfg.tol * scale {
            converged = true;
            break;
        }
    }

    if fdx_obs::faults::fire("glasso.force_no_converge") {
        converged = false;
    }
    let theta = recover_theta(&w, &betas);
    record_summary(s, &theta, cfg.lambda, iterations, converged);
    Ok(GlassoResult {
        theta,
        w,
        iterations,
        converged,
        ridge_escalations: 0,
    })
}

/// Recovers `Θ` from the per-column regressions:
/// `θ_jj = 1 / (w_jj − w12ᵀ β)`, `θ_12 = −β θ_jj`, then symmetrizes (the
/// two regressions touching an `(i, j)` pair can disagree slightly, as in
/// standard implementations).
fn recover_theta(w: &Matrix, betas: &[Vec<f64>]) -> Matrix {
    let p = w.rows();
    let mut theta = Matrix::zeros(p, p);
    let mut others: Vec<usize> = Vec::with_capacity(p.saturating_sub(1));
    for j in 0..p {
        others.clear();
        others.extend((0..p).filter(|&i| i != j));
        let beta = &betas[j];
        let mut w12_beta = 0.0;
        for (t, &i) in others.iter().enumerate() {
            w12_beta += w[(i, j)] * beta[t];
        }
        let denom = (w[(j, j)] - w12_beta).max(1e-12);
        let tjj = 1.0 / denom;
        theta[(j, j)] = tjj;
        for (t, &i) in others.iter().enumerate() {
            theta[(i, j)] = -beta[t] * tjj;
        }
    }
    theta.symmetrize_mut();
    theta
}

/// The primal objective `−log det Θ + tr(SΘ) + λ‖Θ‖₁` (`None` when `Θ` is
/// not positive definite).
fn primal_objective(s: &Matrix, theta: &Matrix, lambda: f64) -> Option<f64> {
    let chol = fdx_linalg::cholesky(theta).ok()?;
    let p = theta.rows();
    let mut log_det = 0.0;
    for i in 0..p {
        log_det += 2.0 * chol.l[(i, i)].max(1e-300).ln();
    }
    Some(-log_det + trace_product(s, theta) + lambda * l1_norm(theta))
}

/// The duality gap `tr(SΘ) − p + λ‖Θ‖₁`, which vanishes at the optimum of
/// the penalize-all-entries formulation this solver implements.
fn duality_gap(s: &Matrix, theta: &Matrix, lambda: f64) -> f64 {
    trace_product(s, theta) - theta.rows() as f64 + lambda * l1_norm(theta)
}

fn trace_product(s: &Matrix, theta: &Matrix) -> f64 {
    let p = s.rows();
    let mut tr = 0.0;
    for i in 0..p {
        for j in 0..p {
            tr += s[(i, j)] * theta[(j, i)];
        }
    }
    tr
}

fn l1_norm(m: &Matrix) -> f64 {
    let mut sum = 0.0;
    for i in 0..m.rows() {
        for j in 0..m.cols() {
            sum += m[(i, j)].abs();
        }
    }
    sum
}

/// Per-sweep convergence telemetry (only invoked while recording is on):
/// the objective value, duality gap, and active-set size of the current
/// iterate, as an ordered event series plus last-value gauges.
fn record_sweep(
    s: &Matrix,
    w: &Matrix,
    betas: &[Vec<f64>],
    lambda: f64,
    iteration: usize,
    avg_change: f64,
) {
    let theta = recover_theta(w, betas);
    let active_set: usize = betas
        .iter()
        .map(|b| b.iter().filter(|&&v| !fdx_linalg::is_exact_zero(v)).count())
        .sum();
    let objective = primal_objective(s, &theta, lambda).unwrap_or(f64::NAN);
    let gap = duality_gap(s, &theta, lambda);
    fdx_obs::counter_add("fdx.glasso.sweeps", 1);
    fdx_obs::gauge_set("fdx.glasso.objective", objective);
    fdx_obs::gauge_set("fdx.glasso.duality_gap", gap);
    fdx_obs::gauge_set("fdx.glasso.active_set", active_set as f64);
    fdx_obs::event(
        "fdx.glasso.sweep",
        &[
            ("iter", fdx_obs::Field::U(iteration as u64)),
            ("objective", fdx_obs::Field::F(objective)),
            ("duality_gap", fdx_obs::Field::F(gap)),
            ("active_set", fdx_obs::Field::U(active_set as u64)),
            ("avg_change", fdx_obs::Field::F(avg_change)),
        ],
    );
}

/// End-of-solve telemetry, emitted on every successful return path
/// (including the `λ = 0` direct-inversion fast path, where the gap
/// measures how exactly `Θ` inverts `S`).
fn record_summary(s: &Matrix, theta: &Matrix, lambda: f64, iterations: usize, converged: bool) {
    if !fdx_obs::enabled() {
        return;
    }
    let objective = primal_objective(s, theta, lambda).unwrap_or(f64::NAN);
    let gap = duality_gap(s, theta, lambda);
    fdx_obs::gauge_set("fdx.glasso.iterations", iterations as f64);
    fdx_obs::event(
        "fdx.glasso.summary",
        &[
            ("lambda", fdx_obs::Field::F(lambda)),
            ("iterations", fdx_obs::Field::U(iterations as u64)),
            ("converged", fdx_obs::Field::B(converged)),
            ("objective", fdx_obs::Field::F(objective)),
            ("duality_gap", fdx_obs::Field::F(gap)),
        ],
    );
}

/// A ridge-stabilized inverse together with its recovery bookkeeping.
#[derive(Debug, Clone)]
pub struct RidgedInverse {
    /// The (possibly ridged) precision estimate.
    pub theta: Matrix,
    /// Number of ×10 ridge escalations performed (0 = clean inverse).
    pub escalations: u32,
    /// The ridge that finally succeeded (0.0 when no ridge was needed).
    pub ridge_used: f64,
}

/// Inverts an empirical covariance with automatic ridge escalation.
///
/// Pair-difference covariance matrices from small samples (or with constant
/// columns) can be rank deficient; a ridge `εI` restores positive
/// definiteness with negligible effect on the recovered support. The ridge
/// escalates ×10 (up to a fixed number of attempts) until Cholesky succeeds.
pub fn precision_from_covariance(s: &Matrix, ridge: f64) -> fdx_linalg::Result<Matrix> {
    precision_from_covariance_report(s, ridge).map(|r| r.theta)
}

/// [`precision_from_covariance`] with the escalation count and final ridge
/// reported, so callers (the FDX recovery ladder) can record how much
/// regularization a degraded input needed.
pub fn precision_from_covariance_report(
    s: &Matrix,
    ridge: f64,
) -> fdx_linalg::Result<RidgedInverse> {
    let mut attempt = s.clone();
    attempt.symmetrize_mut();
    match spd_inverse(&attempt) {
        Ok(theta) => {
            return Ok(RidgedInverse {
                theta,
                escalations: 0,
                ridge_used: 0.0,
            })
        }
        Err(LinalgError::NotPositiveDefinite { .. }) => {}
        Err(e) => return Err(e),
    }
    let mut eps = ridge.max(1e-12);
    for attempt_no in 1..=12u32 {
        let mut reg = s.clone();
        reg.symmetrize_mut();
        reg.add_diag_mut(eps);
        match spd_inverse(&reg) {
            Ok(theta) => {
                fdx_obs::counter_add("fdx.glasso.ridge_escalations", attempt_no as u64);
                return Ok(RidgedInverse {
                    theta,
                    escalations: attempt_no,
                    ridge_used: eps,
                });
            }
            Err(LinalgError::NotPositiveDefinite { .. }) => eps *= 10.0,
            Err(e) => return Err(e),
        }
    }
    Err(LinalgError::NotPositiveDefinite {
        pivot: 0,
        value: eps,
    })
}

/// Meinshausen–Bühlmann neighborhood selection: lasso-regresses each
/// variable on all others and reports the union-symmetrized support as an
/// undirected adjacency matrix (entries are 0/1).
///
/// This regression-based estimator recovers the same conditional-independence
/// graph as the graphical lasso under standard conditions (§2.2's
/// "efficient regression methods" citation) and serves as a cross-check on
/// the support recovered from `Θ`.
pub fn neighborhood_selection(s: &Matrix, lambda: f64) -> fdx_linalg::Result<Matrix> {
    if !s.is_square() {
        return Err(LinalgError::NotSquare { shape: s.shape() });
    }
    let p = s.rows();
    let mut adj = Matrix::zeros(p, p);
    let mut others: Vec<usize> = Vec::with_capacity(p.saturating_sub(1));
    let mut s12 = vec![0.0; p.saturating_sub(1)];
    let mut beta = vec![0.0; p.saturating_sub(1)];
    for j in 0..p {
        others.clear();
        others.extend((0..p).filter(|&i| i != j));
        let v = s.principal_submatrix(&others);
        for (t, &i) in others.iter().enumerate() {
            s12[t] = s[(i, j)];
        }
        beta.iter_mut().for_each(|b| *b = 0.0);
        lasso_coordinate_descent(&v, &s12, lambda, &mut beta, 500, 1e-8);
        for (t, &i) in others.iter().enumerate() {
            if beta[t].abs() > 1e-10 {
                // OR-rule symmetrization.
                adj[(i, j)] = 1.0;
                adj[(j, i)] = 1.0;
            }
        }
    }
    Ok(adj)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &Matrix, b: &Matrix, tol: f64) -> bool {
        a.shape() == b.shape()
            && (0..a.rows()).all(|r| (0..a.cols()).all(|c| (a[(r, c)] - b[(r, c)]).abs() < tol))
    }

    #[test]
    fn lambda_zero_is_exact_inverse() {
        let s = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]);
        let r = graphical_lasso(&s, &GlassoConfig::default()).unwrap();
        let prod = s.matmul(&r.theta).unwrap();
        assert!(close(&prod, &Matrix::identity(2), 1e-8));
    }

    #[test]
    fn two_by_two_matches_analytic_solution() {
        // For p = 2 the glasso solution is W12 = soft(s12, λ).
        let s = Matrix::from_rows(&[&[1.0, 0.6], &[0.6, 1.0]]);
        let cfg = GlassoConfig {
            lambda: 0.2,
            ..Default::default()
        };
        let r = graphical_lasso(&s, &cfg).unwrap();
        assert!(
            (r.w[(0, 1)] - 0.4).abs() < 1e-3,
            "w12 = {}, want 0.4",
            r.w[(0, 1)]
        );
        // Penalty large enough to kill the edge entirely.
        let cfg = GlassoConfig {
            lambda: 0.7,
            ..Default::default()
        };
        let r = graphical_lasso(&s, &cfg).unwrap();
        assert!(r.theta[(0, 1)].abs() < 1e-6);
    }

    #[test]
    fn sparsity_monotone_in_lambda() {
        // Random-ish SPD matrix with mixed strength edges.
        let s = Matrix::from_rows(&[
            &[1.0, 0.5, 0.1, 0.02],
            &[0.5, 1.0, 0.3, 0.05],
            &[0.1, 0.3, 1.0, 0.4],
            &[0.02, 0.05, 0.4, 1.0],
        ]);
        let nnz = |lambda: f64| {
            let cfg = GlassoConfig {
                lambda,
                ..Default::default()
            };
            let r = graphical_lasso(&s, &cfg).unwrap();
            let mut count = 0;
            for i in 0..4 {
                for j in (i + 1)..4 {
                    if r.theta[(i, j)].abs() > 1e-8 {
                        count += 1;
                    }
                }
            }
            count
        };
        let n_small = nnz(0.01);
        let n_mid = nnz(0.2);
        let n_big = nnz(0.6);
        assert!(n_small >= n_mid, "{n_small} < {n_mid}");
        assert!(n_mid >= n_big, "{n_mid} < {n_big}");
        assert_eq!(n_big, 0);
    }

    #[test]
    fn theta_is_symmetric_and_pd() {
        let s = Matrix::from_rows(&[&[1.0, 0.4, 0.2], &[0.4, 1.0, 0.3], &[0.2, 0.3, 1.0]]);
        let cfg = GlassoConfig {
            lambda: 0.1,
            ..Default::default()
        };
        let r = graphical_lasso(&s, &cfg).unwrap();
        assert!(r.converged);
        assert!(r.theta.asymmetry() < 1e-12);
        assert!(fdx_linalg::cholesky(&r.theta).is_ok());
        for i in 0..3 {
            assert!(r.theta[(i, i)] > 0.0);
        }
    }

    #[test]
    fn ridge_rescues_singular_covariance() {
        // Rank-1 covariance (duplicated variable).
        let s = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let theta = precision_from_covariance(&s, 1e-6).unwrap();
        assert!(theta[(0, 0)].is_finite());
        // The inverse of the ridged matrix is strongly negatively coupled.
        assert!(theta[(0, 1)] < 0.0);
    }

    #[test]
    fn neighborhood_selection_finds_support() {
        // Chain structure 0—1—2: Σ⁻¹ tridiagonal.
        let theta_true =
            Matrix::from_rows(&[&[1.5, -0.6, 0.0], &[-0.6, 1.8, -0.6], &[0.0, -0.6, 1.5]]);
        let sigma = spd_inverse(&theta_true).unwrap();
        let adj = neighborhood_selection(&sigma, 0.02).unwrap();
        assert_eq!(adj[(0, 1)], 1.0);
        assert_eq!(adj[(1, 2)], 1.0);
        assert_eq!(
            adj[(0, 2)],
            0.0,
            "conditional independence must be detected"
        );
    }

    #[test]
    fn single_variable_case() {
        let s = Matrix::from_diag(&[2.0]);
        let cfg = GlassoConfig {
            lambda: 0.5,
            ..Default::default()
        };
        let r = graphical_lasso(&s, &cfg).unwrap();
        assert!((r.theta[(0, 0)] - 1.0 / 2.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_square() {
        let s = Matrix::zeros(2, 3);
        assert!(graphical_lasso(&s, &GlassoConfig::default()).is_err());
        assert!(neighborhood_selection(&s, 0.1).is_err());
    }

    #[test]
    fn relaxed_retry_loosens_tolerance_and_ridge() {
        let cfg = GlassoConfig {
            lambda: 0.05,
            ..Default::default()
        };
        let retry = cfg.relaxed_retry();
        assert_eq!(retry.lambda, cfg.lambda);
        assert_eq!(retry.max_iter, cfg.max_iter);
        assert!(retry.tol > cfg.tol);
        assert!(retry.ridge > cfg.ridge);
    }

    #[test]
    fn ridge_escalations_are_reported() {
        // Clean SPD input: no escalation.
        let s = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]);
        let r = precision_from_covariance_report(&s, 1e-6).unwrap();
        assert_eq!(r.escalations, 0);
        assert_eq!(r.ridge_used, 0.0);
        // Rank-1 input: at least one escalation, and the plain wrapper
        // returns the identical matrix.
        let singular = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let r = precision_from_covariance_report(&singular, 1e-6).unwrap();
        assert!(r.escalations >= 1);
        assert!(r.ridge_used > 0.0);
        let plain = precision_from_covariance(&singular, 1e-6).unwrap();
        assert_eq!(plain[(0, 1)], r.theta[(0, 1)]);
        // The glasso fast path surfaces the count.
        let g = graphical_lasso(&singular, &GlassoConfig::default()).unwrap();
        assert_eq!(g.ridge_escalations, r.escalations);
    }

    #[test]
    fn force_no_converge_fault_flips_the_flag() {
        let s = Matrix::from_rows(&[&[1.0, 0.4], &[0.4, 1.0]]);
        let clean = graphical_lasso(&s, &GlassoConfig::default()).unwrap();
        assert!(clean.converged);
        let faulted = {
            let _f = fdx_obs::faults::arm("glasso.force_no_converge");
            graphical_lasso(&s, &GlassoConfig::default()).unwrap()
        };
        assert!(
            !faulted.converged,
            "armed fault must report non-convergence"
        );
        // Θ itself is untouched: the fault only lies about convergence.
        assert_eq!(faulted.theta[(0, 1)], clean.theta[(0, 1)]);
        // λ > 0 path too.
        let cfg = GlassoConfig {
            lambda: 0.1,
            ..Default::default()
        };
        let _f = fdx_obs::faults::arm("glasso.force_no_converge");
        assert!(!graphical_lasso(&s, &cfg).unwrap().converged);
    }
}
