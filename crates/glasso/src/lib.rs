//! Sparse inverse-covariance estimation for the FDX reproduction.
//!
//! FDX's structure learning (paper §4.2) estimates the inverse covariance
//! `Θ = Σ⁻¹` of the pair-difference samples by solving
//!
//! ```text
//! min_{Θ ≻ 0}  −log det Θ + tr(S Θ) + λ‖Θ‖₁
//! ```
//!
//! The paper uses **graphical lasso** (Friedman, Hastie, Tibshirani 2008)
//! "as it is known to scale favorably to instances with a large number of
//! variables". This crate implements:
//!
//! * [`graphical_lasso`] — block coordinate descent over columns of the
//!   working covariance `W`, with a coordinate-descent lasso inner solver,
//! * [`precision_from_covariance`] — the `λ = 0` fast path (ridge-stabilized
//!   direct inversion), which is FDX's default "sparsity 0" setting in the
//!   paper's Table 8,
//! * [`neighborhood_selection`] — the Meinshausen–Bühlmann regression
//!   alternative (paper §2.2 cites both optimization- and regression-based
//!   estimators), used for cross-checking the recovered support.
//!
//! The λ > 0 solver applies **exact connected-component screening**
//! ([`screen_components`], Witten et al. 2011 / Mazumder & Hastie 2012)
//! before descending: components of the `|S_ij| > λ` graph are solved
//! independently — and in parallel via `fdx-par`, with bit-identical
//! results at any thread count — then reassembled block-diagonally.

mod lasso;
mod screen;

pub use lasso::lasso_coordinate_descent;
pub use screen::components as screen_components;

use fdx_linalg::{spd_inverse, LinalgError, Matrix};

/// A previous iterate to resume from: the recovered precision `Θ` and the
/// working covariance `W` of an earlier (possibly unconverged) solve on the
/// same `S`. See [`GlassoConfig::warm_start`].
#[derive(Debug, Clone)]
pub struct WarmStart {
    /// Previous precision estimate (regression coefficients are rebuilt
    /// from its columns: `β_j = −θ_{·j} / θ_jj`).
    pub theta: Matrix,
    /// Previous working covariance (its off-diagonal is reused; the
    /// diagonal is reset to `s_jj + λ`, which the glasso solution fixes).
    pub w: Matrix,
}

/// Configuration for [`graphical_lasso`].
#[derive(Debug, Clone)]
pub struct GlassoConfig {
    /// ℓ₁ penalty λ. `0.0` selects the direct-inversion fast path.
    pub lambda: f64,
    /// Maximum outer sweeps over all columns.
    pub max_iter: usize,
    /// Convergence tolerance on the mean absolute change of `W`'s
    /// off-diagonal entries, relative to the mean absolute off-diagonal of
    /// `S`.
    pub tol: f64,
    /// Initial ridge added to the diagonal when the input covariance is
    /// (numerically) singular; escalated ×10 on repeated failure.
    pub ridge: f64,
    /// Connected-component screening (Witten/Mazumder–Hastie): partition
    /// the `|S_ij| > λ` graph and solve each component independently (and
    /// in parallel). Exact — the optimum is unchanged. On by default; the
    /// flag exists so equivalence tests can pin the unscreened solver.
    pub screen: bool,
    /// Worker threads for per-component / per-column parallel solves.
    /// `None` resolves through `FDX_THREADS` → hardware parallelism
    /// (`fdx_par::resolve_threads`). Results are bit-identical for any
    /// thread count.
    pub threads: Option<usize>,
    /// Optional previous iterate to warm-start from (the resilience
    /// ladder's relaxed retry resumes from the failed run instead of from
    /// cold). Ignored by the `λ = 0` direct path and by warm iterates
    /// whose shape does not match `S`.
    pub warm_start: Option<WarmStart>,
}

impl Default for GlassoConfig {
    fn default() -> Self {
        GlassoConfig {
            lambda: 0.0,
            max_iter: 100,
            tol: 1e-4,
            ridge: 1e-6,
            screen: true,
            threads: None,
            warm_start: None,
        }
    }
}

impl GlassoConfig {
    /// The escalated-retry variant of this configuration: tolerance relaxed
    /// ×10, initial ridge escalated ×100, same λ and sweep budget. This is
    /// rung 2 of the FDX recovery ladder (`fdx_core::resilience`) — loose
    /// enough to converge on inputs where the configured solve plateaus,
    /// tight enough that the recovered support is still meaningful.
    /// Screening/threading carry over; pair with [`GlassoConfig::warm_start`]
    /// to resume from the failed iterate.
    pub fn relaxed_retry(&self) -> GlassoConfig {
        GlassoConfig {
            tol: self.tol * 10.0,
            ridge: (self.ridge * 100.0).max(1e-8),
            ..self.clone()
        }
    }
}

/// Output of [`graphical_lasso`].
#[derive(Debug, Clone)]
pub struct GlassoResult {
    /// The estimated sparse precision matrix `Θ`.
    pub theta: Matrix,
    /// The estimated covariance `W ≈ Θ⁻¹` maintained by the algorithm.
    pub w: Matrix,
    /// Outer sweeps performed (the maximum across components when
    /// screening split the problem).
    pub iterations: usize,
    /// Whether the `tol` criterion was met within `max_iter` sweeps (all
    /// components, when screened).
    pub converged: bool,
    /// How many ×10 ridge escalations the λ = 0 direct-inversion path needed
    /// before Cholesky succeeded (0 for the λ > 0 solver, which regularizes
    /// through the penalty itself). Recovery bookkeeping: the FDX pipeline
    /// copies this into its `RunHealth` report.
    pub ridge_escalations: u32,
    /// Connected components of the screened `|S_ij| > λ` graph (1 when
    /// screening is off, trivial, or λ = 0).
    pub components: usize,
    /// Size of the largest screened component — the serial bottleneck of
    /// the parallel solve.
    pub largest_component: usize,
}

/// Estimates a sparse precision matrix from an empirical covariance `S`.
///
/// With `lambda == 0` this reduces to [`precision_from_covariance`] (exact
/// inverse with automatic ridge stabilization), matching the paper's default
/// sparsity setting. With `lambda > 0` it runs the Friedman et al. block
/// coordinate descent: for each column `j`, the off-diagonal block of `W` is
/// updated by solving the lasso subproblem
/// `min_β ½ βᵀ W₁₁ β − s₁₂ᵀ β + λ‖β‖₁`, and on convergence `Θ` is recovered
/// from the regression coefficients.
///
/// # Errors
///
/// Returns [`LinalgError`] if `S` is not square or cannot be stabilized into
/// a positive definite matrix.
pub fn graphical_lasso(s: &Matrix, cfg: &GlassoConfig) -> fdx_linalg::Result<GlassoResult> {
    if !s.is_square() {
        return Err(LinalgError::NotSquare { shape: s.shape() });
    }
    let _span = fdx_obs::Span::enter("fdx.glasso");
    let p = s.rows();
    if cfg.lambda <= 0.0 {
        let inv = precision_from_covariance_report(s, cfg.ridge)?;
        let w = spd_inverse(&inv.theta)?;
        let converged = !fdx_obs::faults::fire("glasso.force_no_converge");
        record_components(1, p);
        record_summary(s, &inv.theta, cfg.lambda, 0, converged);
        return Ok(GlassoResult {
            theta: inv.theta,
            w,
            iterations: 0,
            converged,
            ridge_escalations: inv.escalations,
            components: 1,
            largest_component: p,
        });
    }
    if p == 1 {
        let w00 = s[(0, 0)] + cfg.lambda;
        let theta = Matrix::from_diag(&[1.0 / w00]);
        record_components(1, 1);
        record_summary(s, &theta, cfg.lambda, 0, true);
        return Ok(GlassoResult {
            theta,
            w: Matrix::from_diag(&[w00]),
            iterations: 0,
            converged: true,
            ridge_escalations: 0,
            components: 1,
            largest_component: 1,
        });
    }

    let comps = if cfg.screen {
        screen::components(s, cfg.lambda)
    } else {
        vec![(0..p).collect()]
    };
    let n_components = comps.len();
    let largest = comps.iter().map(Vec::len).max().unwrap_or(0);
    record_components(n_components, largest);

    if n_components == 1 {
        // Single component: run on the caller thread with full per-sweep
        // telemetry — byte-for-byte the pre-screening solver.
        let solve = solve_block(s, cfg, cfg.warm_start.as_ref(), false);
        let mut converged = solve.converged;
        if fdx_obs::faults::fire("glasso.force_no_converge") {
            converged = false;
        }
        let theta = recover_theta(&solve.w, &solve.betas);
        record_summary(s, &theta, cfg.lambda, solve.iterations, converged);
        return Ok(GlassoResult {
            theta,
            w: solve.w,
            iterations: solve.iterations,
            converged,
            ridge_escalations: 0,
            components: 1,
            largest_component: p,
        });
    }

    // Multiple components: each block is an independent glasso subproblem
    // (screening theorem), solved in parallel. Worker solves are telemetry
    // quiet — obs spans are thread-local, so per-sweep events from workers
    // would fragment the trace nondeterministically.
    let threads = fdx_par::resolve_threads(cfg.threads);
    let solved = fdx_par::par_map_indexed(&comps, threads, |_, comp| solve_component(s, cfg, comp));

    let mut theta = Matrix::zeros(p, p);
    let mut w = Matrix::zeros(p, p);
    let mut iterations = 0;
    let mut converged = true;
    for (comp, block) in comps.iter().zip(&solved) {
        iterations = iterations.max(block.iterations);
        converged &= block.converged;
        for (a, &i) in comp.iter().enumerate() {
            for (b, &j) in comp.iter().enumerate() {
                theta[(i, j)] = block.theta[(a, b)];
                w[(i, j)] = block.w[(a, b)];
            }
        }
    }
    if fdx_obs::faults::fire("glasso.force_no_converge") {
        converged = false;
    }
    record_summary(s, &theta, cfg.lambda, iterations, converged);
    Ok(GlassoResult {
        theta,
        w,
        iterations,
        converged,
        ridge_escalations: 0,
        components: n_components,
        largest_component: largest,
    })
}

/// Screening gauges, exported into `--metrics` run summaries so speedups
/// can be attributed to component splits (Figure-6-style runs).
fn record_components(components: usize, largest: usize) {
    if fdx_obs::enabled() {
        fdx_obs::gauge_set("fdx.glasso.components", components as f64);
        fdx_obs::gauge_set("fdx.glasso.largest_component", largest as f64);
    }
}

/// One component's solved block in its local (compacted) index space.
struct ComponentSolve {
    theta: Matrix,
    w: Matrix,
    iterations: usize,
    converged: bool,
}

/// Solves the glasso subproblem restricted to `comp` (sorted global
/// indices). Pure function of `(s, cfg, comp)` — safe to run on any worker
/// thread without affecting determinism.
fn solve_component(s: &Matrix, cfg: &GlassoConfig, comp: &[usize]) -> ComponentSolve {
    if let [i] = comp {
        // Singleton: W = s_ii + λ, Θ = 1/(s_ii + λ) — exactly what the full
        // solver converges to for an unconnected variable.
        let w00 = s[(*i, *i)] + cfg.lambda;
        return ComponentSolve {
            theta: Matrix::from_diag(&[1.0 / w00]),
            w: Matrix::from_diag(&[w00]),
            iterations: 0,
            converged: true,
        };
    }
    let sub = s.principal_submatrix(comp);
    let warm = cfg.warm_start.as_ref().and_then(|ws| {
        if ws.theta.shape() == s.shape() && ws.w.shape() == s.shape() {
            Some(WarmStart {
                theta: ws.theta.principal_submatrix(comp),
                w: ws.w.principal_submatrix(comp),
            })
        } else {
            None
        }
    });
    let solve = solve_block(&sub, cfg, warm.as_ref(), true);
    let theta = recover_theta(&solve.w, &solve.betas);
    ComponentSolve {
        theta,
        w: solve.w,
        iterations: solve.iterations,
        converged: solve.converged,
    }
}

/// Raw output of the block coordinate-descent loop on one (sub)problem.
struct BlockSolve {
    w: Matrix,
    betas: Vec<Vec<f64>>,
    iterations: usize,
    converged: bool,
}

/// Reconstructs per-column regression coefficients from a warm-start
/// precision matrix: `β_j = −θ_{·j} / θ_jj` (the glasso parameterization).
fn betas_from_theta(theta: &Matrix) -> Vec<Vec<f64>> {
    let p = theta.rows();
    (0..p)
        .map(|j| {
            let tjj = theta[(j, j)];
            (0..p)
                .filter(|&i| i != j)
                .map(|i| if tjj > 0.0 { -theta[(i, j)] / tjj } else { 0.0 })
                .collect()
        })
        .collect()
}

/// The Friedman–Hastie–Tibshirani block coordinate descent over columns of
/// the working covariance, on one connected component (or the whole
/// problem when screening found a single component). `quiet` suppresses
/// per-sweep spans/telemetry for worker-thread solves.
fn solve_block(
    s: &Matrix,
    cfg: &GlassoConfig,
    warm: Option<&WarmStart>,
    quiet: bool,
) -> BlockSolve {
    let p = s.rows();
    let warm = warm.filter(|ws| ws.theta.shape() == (p, p) && ws.w.shape() == (p, p));

    // W = S with λ added on the diagonal (standard glasso initialization);
    // with a warm start, resume from the previous off-diagonal iterate (the
    // solution's diagonal is fixed at s_jj + λ either way).
    let mut w = match warm {
        Some(ws) => {
            let mut w = ws.w.clone();
            for j in 0..p {
                w[(j, j)] = s[(j, j)] + cfg.lambda;
            }
            w
        }
        None => {
            let mut w = s.clone();
            w.add_diag_mut(cfg.lambda);
            w
        }
    };
    // Regression coefficients per column, kept to reconstruct Θ at the end.
    let mut betas = match warm {
        Some(ws) => betas_from_theta(&ws.theta),
        None => vec![vec![0.0; p - 1]; p],
    };

    // Scale for the convergence criterion: mean |off-diagonal of S|.
    let mut off_sum = 0.0;
    for i in 0..p {
        for j in 0..p {
            if i != j {
                off_sum += s[(i, j)].abs();
            }
        }
    }
    let scale = (off_sum / ((p * p - p) as f64)).max(1e-12);

    let mut iterations = 0;
    let mut converged = false;
    let mut others: Vec<usize> = Vec::with_capacity(p - 1);
    let mut s12 = vec![0.0; p - 1];
    while iterations < cfg.max_iter {
        iterations += 1;
        let sweep_span = (!quiet).then(|| fdx_obs::Span::enter("glasso.sweep"));
        let mut total_change = 0.0;
        for j in 0..p {
            others.clear();
            others.extend((0..p).filter(|&i| i != j));
            let w11 = w.principal_submatrix(&others);
            for (t, &i) in others.iter().enumerate() {
                s12[t] = s[(i, j)];
            }
            let beta = &mut betas[j];
            lasso_coordinate_descent(&w11, &s12, cfg.lambda, beta, 200, cfg.tol * 1e-2);
            // w12 = W11 β.
            for (t, &i) in others.iter().enumerate() {
                let mut v = 0.0;
                for (u, &bu) in beta.iter().enumerate() {
                    if !fdx_linalg::is_exact_zero(bu) {
                        v += w11[(t, u)] * bu;
                    }
                }
                total_change += (w[(i, j)] - v).abs();
                w[(i, j)] = v;
                w[(j, i)] = v;
            }
        }
        let avg_change = total_change / ((p * p - p) as f64);
        drop(sweep_span);
        if !quiet && fdx_obs::enabled() {
            record_sweep(s, &w, &betas, cfg.lambda, iterations, avg_change);
        }
        if avg_change < cfg.tol * scale {
            converged = true;
            break;
        }
    }
    BlockSolve {
        w,
        betas,
        iterations,
        converged,
    }
}

/// Recovers `Θ` from the per-column regressions:
/// `θ_jj = 1 / (w_jj − w12ᵀ β)`, `θ_12 = −β θ_jj`, then symmetrizes (the
/// two regressions touching an `(i, j)` pair can disagree slightly, as in
/// standard implementations).
fn recover_theta(w: &Matrix, betas: &[Vec<f64>]) -> Matrix {
    let p = w.rows();
    let mut theta = Matrix::zeros(p, p);
    let mut others: Vec<usize> = Vec::with_capacity(p.saturating_sub(1));
    for j in 0..p {
        others.clear();
        others.extend((0..p).filter(|&i| i != j));
        let beta = &betas[j];
        let mut w12_beta = 0.0;
        for (t, &i) in others.iter().enumerate() {
            w12_beta += w[(i, j)] * beta[t];
        }
        let denom = (w[(j, j)] - w12_beta).max(1e-12);
        let tjj = 1.0 / denom;
        theta[(j, j)] = tjj;
        for (t, &i) in others.iter().enumerate() {
            theta[(i, j)] = -beta[t] * tjj;
        }
    }
    theta.symmetrize_mut();
    theta
}

/// The primal objective `−log det Θ + tr(SΘ) + λ‖Θ‖₁` (`None` when `Θ` is
/// not positive definite).
fn primal_objective(s: &Matrix, theta: &Matrix, lambda: f64) -> Option<f64> {
    let chol = fdx_linalg::cholesky(theta).ok()?;
    let p = theta.rows();
    let mut log_det = 0.0;
    for i in 0..p {
        log_det += 2.0 * chol.l[(i, i)].max(1e-300).ln();
    }
    Some(-log_det + trace_product(s, theta) + lambda * l1_norm(theta))
}

/// The duality gap `tr(SΘ) − p + λ‖Θ‖₁`, which vanishes at the optimum of
/// the penalize-all-entries formulation this solver implements.
fn duality_gap(s: &Matrix, theta: &Matrix, lambda: f64) -> f64 {
    trace_product(s, theta) - theta.rows() as f64 + lambda * l1_norm(theta)
}

fn trace_product(s: &Matrix, theta: &Matrix) -> f64 {
    let p = s.rows();
    let mut tr = 0.0;
    for i in 0..p {
        for j in 0..p {
            tr += s[(i, j)] * theta[(j, i)];
        }
    }
    tr
}

fn l1_norm(m: &Matrix) -> f64 {
    let mut sum = 0.0;
    for i in 0..m.rows() {
        for j in 0..m.cols() {
            sum += m[(i, j)].abs();
        }
    }
    sum
}

/// Per-sweep convergence telemetry (only invoked while recording is on):
/// the objective value, duality gap, and active-set size of the current
/// iterate, as an ordered event series plus last-value gauges.
fn record_sweep(
    s: &Matrix,
    w: &Matrix,
    betas: &[Vec<f64>],
    lambda: f64,
    iteration: usize,
    avg_change: f64,
) {
    let theta = recover_theta(w, betas);
    let active_set: usize = betas
        .iter()
        .map(|b| b.iter().filter(|&&v| !fdx_linalg::is_exact_zero(v)).count())
        .sum();
    let objective = primal_objective(s, &theta, lambda).unwrap_or(f64::NAN);
    let gap = duality_gap(s, &theta, lambda);
    fdx_obs::counter_add("fdx.glasso.sweeps", 1);
    fdx_obs::gauge_set("fdx.glasso.objective", objective);
    fdx_obs::gauge_set("fdx.glasso.duality_gap", gap);
    fdx_obs::gauge_set("fdx.glasso.active_set", active_set as f64);
    fdx_obs::event(
        "fdx.glasso.sweep",
        &[
            ("iter", fdx_obs::Field::U(iteration as u64)),
            ("objective", fdx_obs::Field::F(objective)),
            ("duality_gap", fdx_obs::Field::F(gap)),
            ("active_set", fdx_obs::Field::U(active_set as u64)),
            ("avg_change", fdx_obs::Field::F(avg_change)),
        ],
    );
}

/// End-of-solve telemetry, emitted on every successful return path
/// (including the `λ = 0` direct-inversion fast path, where the gap
/// measures how exactly `Θ` inverts `S`).
fn record_summary(s: &Matrix, theta: &Matrix, lambda: f64, iterations: usize, converged: bool) {
    if !fdx_obs::enabled() {
        return;
    }
    let objective = primal_objective(s, theta, lambda).unwrap_or(f64::NAN);
    let gap = duality_gap(s, theta, lambda);
    fdx_obs::gauge_set("fdx.glasso.iterations", iterations as f64);
    fdx_obs::event(
        "fdx.glasso.summary",
        &[
            ("lambda", fdx_obs::Field::F(lambda)),
            ("iterations", fdx_obs::Field::U(iterations as u64)),
            ("converged", fdx_obs::Field::B(converged)),
            ("objective", fdx_obs::Field::F(objective)),
            ("duality_gap", fdx_obs::Field::F(gap)),
        ],
    );
}

/// A ridge-stabilized inverse together with its recovery bookkeeping.
#[derive(Debug, Clone)]
pub struct RidgedInverse {
    /// The (possibly ridged) precision estimate.
    pub theta: Matrix,
    /// Number of ×10 ridge escalations performed (0 = clean inverse).
    pub escalations: u32,
    /// The ridge that finally succeeded (0.0 when no ridge was needed).
    pub ridge_used: f64,
}

/// Inverts an empirical covariance with automatic ridge escalation.
///
/// Pair-difference covariance matrices from small samples (or with constant
/// columns) can be rank deficient; a ridge `εI` restores positive
/// definiteness with negligible effect on the recovered support. The ridge
/// escalates ×10 (up to a fixed number of attempts) until Cholesky succeeds.
pub fn precision_from_covariance(s: &Matrix, ridge: f64) -> fdx_linalg::Result<Matrix> {
    precision_from_covariance_report(s, ridge).map(|r| r.theta)
}

/// [`precision_from_covariance`] with the escalation count and final ridge
/// reported, so callers (the FDX recovery ladder) can record how much
/// regularization a degraded input needed.
pub fn precision_from_covariance_report(
    s: &Matrix,
    ridge: f64,
) -> fdx_linalg::Result<RidgedInverse> {
    let mut attempt = s.clone();
    attempt.symmetrize_mut();
    match spd_inverse(&attempt) {
        Ok(theta) => {
            return Ok(RidgedInverse {
                theta,
                escalations: 0,
                ridge_used: 0.0,
            })
        }
        Err(LinalgError::NotPositiveDefinite { .. }) => {}
        Err(e) => return Err(e),
    }
    let mut eps = ridge.max(1e-12);
    for attempt_no in 1..=12u32 {
        let mut reg = s.clone();
        reg.symmetrize_mut();
        reg.add_diag_mut(eps);
        match spd_inverse(&reg) {
            Ok(theta) => {
                fdx_obs::counter_add("fdx.glasso.ridge_escalations", attempt_no as u64);
                return Ok(RidgedInverse {
                    theta,
                    escalations: attempt_no,
                    ridge_used: eps,
                });
            }
            Err(LinalgError::NotPositiveDefinite { .. }) => eps *= 10.0,
            Err(e) => return Err(e),
        }
    }
    Err(LinalgError::NotPositiveDefinite {
        pivot: 0,
        value: eps,
    })
}

/// Meinshausen–Bühlmann neighborhood selection: lasso-regresses each
/// variable on all others and reports the union-symmetrized support as an
/// undirected adjacency matrix (entries are 0/1).
///
/// This regression-based estimator recovers the same conditional-independence
/// graph as the graphical lasso under standard conditions (§2.2's
/// "efficient regression methods" citation) and serves as a cross-check on
/// the support recovered from `Θ`.
pub fn neighborhood_selection(s: &Matrix, lambda: f64) -> fdx_linalg::Result<Matrix> {
    neighborhood_selection_threads(s, lambda, None)
}

/// [`neighborhood_selection`] with an explicit thread request: the
/// per-column lassos are independent, so they fan out through `fdx-par`
/// and the supports are reduced back in column order — the recovered
/// adjacency is identical at every thread count.
pub fn neighborhood_selection_threads(
    s: &Matrix,
    lambda: f64,
    threads: Option<usize>,
) -> fdx_linalg::Result<Matrix> {
    if !s.is_square() {
        return Err(LinalgError::NotSquare { shape: s.shape() });
    }
    let p = s.rows();
    let columns: Vec<usize> = (0..p).collect();
    let supports = fdx_par::par_map_indexed(
        &columns,
        fdx_par::resolve_threads(threads),
        |_, &j| -> Vec<usize> {
            let others: Vec<usize> = (0..p).filter(|&i| i != j).collect();
            let v = s.principal_submatrix(&others);
            let s12: Vec<f64> = others.iter().map(|&i| s[(i, j)]).collect();
            let mut beta = vec![0.0; p.saturating_sub(1)];
            lasso_coordinate_descent(&v, &s12, lambda, &mut beta, 500, 1e-8);
            others
                .iter()
                .zip(&beta)
                .filter(|(_, b)| b.abs() > 1e-10)
                .map(|(&i, _)| i)
                .collect()
        },
    );
    let mut adj = Matrix::zeros(p, p);
    for (j, support) in supports.iter().enumerate() {
        for &i in support {
            // OR-rule symmetrization.
            adj[(i, j)] = 1.0;
            adj[(j, i)] = 1.0;
        }
    }
    Ok(adj)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &Matrix, b: &Matrix, tol: f64) -> bool {
        a.shape() == b.shape()
            && (0..a.rows()).all(|r| (0..a.cols()).all(|c| (a[(r, c)] - b[(r, c)]).abs() < tol))
    }

    #[test]
    fn lambda_zero_is_exact_inverse() {
        let s = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]);
        let r = graphical_lasso(&s, &GlassoConfig::default()).unwrap();
        let prod = s.matmul(&r.theta).unwrap();
        assert!(close(&prod, &Matrix::identity(2), 1e-8));
    }

    #[test]
    fn two_by_two_matches_analytic_solution() {
        // For p = 2 the glasso solution is W12 = soft(s12, λ).
        let s = Matrix::from_rows(&[&[1.0, 0.6], &[0.6, 1.0]]);
        let cfg = GlassoConfig {
            lambda: 0.2,
            ..Default::default()
        };
        let r = graphical_lasso(&s, &cfg).unwrap();
        assert!(
            (r.w[(0, 1)] - 0.4).abs() < 1e-3,
            "w12 = {}, want 0.4",
            r.w[(0, 1)]
        );
        // Penalty large enough to kill the edge entirely.
        let cfg = GlassoConfig {
            lambda: 0.7,
            ..Default::default()
        };
        let r = graphical_lasso(&s, &cfg).unwrap();
        assert!(r.theta[(0, 1)].abs() < 1e-6);
    }

    #[test]
    fn sparsity_monotone_in_lambda() {
        // Random-ish SPD matrix with mixed strength edges.
        let s = Matrix::from_rows(&[
            &[1.0, 0.5, 0.1, 0.02],
            &[0.5, 1.0, 0.3, 0.05],
            &[0.1, 0.3, 1.0, 0.4],
            &[0.02, 0.05, 0.4, 1.0],
        ]);
        let nnz = |lambda: f64| {
            let cfg = GlassoConfig {
                lambda,
                ..Default::default()
            };
            let r = graphical_lasso(&s, &cfg).unwrap();
            let mut count = 0;
            for i in 0..4 {
                for j in (i + 1)..4 {
                    if r.theta[(i, j)].abs() > 1e-8 {
                        count += 1;
                    }
                }
            }
            count
        };
        let n_small = nnz(0.01);
        let n_mid = nnz(0.2);
        let n_big = nnz(0.6);
        assert!(n_small >= n_mid, "{n_small} < {n_mid}");
        assert!(n_mid >= n_big, "{n_mid} < {n_big}");
        assert_eq!(n_big, 0);
    }

    #[test]
    fn theta_is_symmetric_and_pd() {
        let s = Matrix::from_rows(&[&[1.0, 0.4, 0.2], &[0.4, 1.0, 0.3], &[0.2, 0.3, 1.0]]);
        let cfg = GlassoConfig {
            lambda: 0.1,
            ..Default::default()
        };
        let r = graphical_lasso(&s, &cfg).unwrap();
        assert!(r.converged);
        assert!(r.theta.asymmetry() < 1e-12);
        assert!(fdx_linalg::cholesky(&r.theta).is_ok());
        for i in 0..3 {
            assert!(r.theta[(i, i)] > 0.0);
        }
    }

    #[test]
    fn ridge_rescues_singular_covariance() {
        // Rank-1 covariance (duplicated variable).
        let s = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let theta = precision_from_covariance(&s, 1e-6).unwrap();
        assert!(theta[(0, 0)].is_finite());
        // The inverse of the ridged matrix is strongly negatively coupled.
        assert!(theta[(0, 1)] < 0.0);
    }

    #[test]
    fn neighborhood_selection_finds_support() {
        // Chain structure 0—1—2: Σ⁻¹ tridiagonal.
        let theta_true =
            Matrix::from_rows(&[&[1.5, -0.6, 0.0], &[-0.6, 1.8, -0.6], &[0.0, -0.6, 1.5]]);
        let sigma = spd_inverse(&theta_true).unwrap();
        let adj = neighborhood_selection(&sigma, 0.02).unwrap();
        assert_eq!(adj[(0, 1)], 1.0);
        assert_eq!(adj[(1, 2)], 1.0);
        assert_eq!(
            adj[(0, 2)],
            0.0,
            "conditional independence must be detected"
        );
    }

    #[test]
    fn single_variable_case() {
        let s = Matrix::from_diag(&[2.0]);
        let cfg = GlassoConfig {
            lambda: 0.5,
            ..Default::default()
        };
        let r = graphical_lasso(&s, &cfg).unwrap();
        assert!((r.theta[(0, 0)] - 1.0 / 2.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_square() {
        let s = Matrix::zeros(2, 3);
        assert!(graphical_lasso(&s, &GlassoConfig::default()).is_err());
        assert!(neighborhood_selection(&s, 0.1).is_err());
    }

    #[test]
    fn relaxed_retry_loosens_tolerance_and_ridge() {
        let cfg = GlassoConfig {
            lambda: 0.05,
            ..Default::default()
        };
        let retry = cfg.relaxed_retry();
        assert_eq!(retry.lambda, cfg.lambda);
        assert_eq!(retry.max_iter, cfg.max_iter);
        assert!(retry.tol > cfg.tol);
        assert!(retry.ridge > cfg.ridge);
    }

    #[test]
    fn ridge_escalations_are_reported() {
        // Clean SPD input: no escalation.
        let s = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]);
        let r = precision_from_covariance_report(&s, 1e-6).unwrap();
        assert_eq!(r.escalations, 0);
        assert_eq!(r.ridge_used, 0.0);
        // Rank-1 input: at least one escalation, and the plain wrapper
        // returns the identical matrix.
        let singular = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let r = precision_from_covariance_report(&singular, 1e-6).unwrap();
        assert!(r.escalations >= 1);
        assert!(r.ridge_used > 0.0);
        let plain = precision_from_covariance(&singular, 1e-6).unwrap();
        assert_eq!(plain[(0, 1)], r.theta[(0, 1)]);
        // The glasso fast path surfaces the count.
        let g = graphical_lasso(&singular, &GlassoConfig::default()).unwrap();
        assert_eq!(g.ridge_escalations, r.escalations);
    }

    #[test]
    fn screening_reports_components() {
        // Two 2-blocks with zero cross coupling.
        let s = Matrix::from_rows(&[
            &[1.0, 0.5, 0.0, 0.0],
            &[0.5, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.4],
            &[0.0, 0.0, 0.4, 1.0],
        ]);
        let cfg = GlassoConfig {
            lambda: 0.1,
            ..Default::default()
        };
        let r = graphical_lasso(&s, &cfg).unwrap();
        assert_eq!(r.components, 2);
        assert_eq!(r.largest_component, 2);
        assert!(r.converged);
        // Dense case reports a single component spanning everything.
        let dense = Matrix::from_rows(&[&[1.0, 0.4], &[0.4, 1.0]]);
        let r = graphical_lasso(&dense, &cfg).unwrap();
        assert_eq!((r.components, r.largest_component), (1, 2));
    }

    #[test]
    fn screened_matches_unscreened_on_block_diagonal() {
        let s = Matrix::from_rows(&[
            &[1.0, 0.45, 0.0, 0.0],
            &[0.45, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.35],
            &[0.0, 0.0, 0.35, 1.0],
        ]);
        let tight = GlassoConfig {
            lambda: 0.1,
            tol: 1e-300, // stop only at an exact fixed point
            max_iter: 200,
            ..Default::default()
        };
        let screened = graphical_lasso(&s, &tight).unwrap();
        let unscreened = graphical_lasso(
            &s,
            &GlassoConfig {
                screen: false,
                ..tight.clone()
            },
        )
        .unwrap();
        assert_eq!(screened.components, 2);
        assert_eq!(unscreened.components, 1);
        assert!(close(&screened.theta, &unscreened.theta, 1e-12));
        assert!(close(&screened.w, &unscreened.w, 1e-12));
    }

    #[test]
    fn parallel_solve_is_bit_identical_across_thread_counts() {
        let s = Matrix::from_rows(&[
            &[1.0, 0.45, 0.0, 0.0, 0.0],
            &[0.45, 1.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.35, 0.2],
            &[0.0, 0.0, 0.35, 1.0, 0.25],
            &[0.0, 0.0, 0.2, 0.25, 1.0],
        ]);
        let base = GlassoConfig {
            lambda: 0.1,
            threads: Some(1),
            ..Default::default()
        };
        let one = graphical_lasso(&s, &base).unwrap();
        for threads in [2, 4, 8] {
            let cfg = GlassoConfig {
                threads: Some(threads),
                ..base.clone()
            };
            let many = graphical_lasso(&s, &cfg).unwrap();
            for i in 0..5 {
                for j in 0..5 {
                    assert_eq!(
                        one.theta[(i, j)].to_bits(),
                        many.theta[(i, j)].to_bits(),
                        "threads={threads} theta[{i},{j}]"
                    );
                    assert_eq!(one.w[(i, j)].to_bits(), many.w[(i, j)].to_bits());
                }
            }
        }
    }

    #[test]
    fn warm_start_resumes_from_previous_iterate() {
        let s = Matrix::from_rows(&[&[1.0, 0.4, 0.2], &[0.4, 1.0, 0.3], &[0.2, 0.3, 1.0]]);
        let cfg = GlassoConfig {
            lambda: 0.05,
            ..Default::default()
        };
        let cold = graphical_lasso(&s, &cfg).unwrap();
        assert!(cold.converged);
        let warm_cfg = GlassoConfig {
            warm_start: Some(WarmStart {
                theta: cold.theta.clone(),
                w: cold.w.clone(),
            }),
            ..cfg.clone()
        };
        let warm = graphical_lasso(&s, &warm_cfg).unwrap();
        assert!(warm.converged);
        assert!(
            warm.iterations <= 2,
            "restart from the solution should converge immediately, took {}",
            warm.iterations
        );
        // Agreement is bounded by the solver tolerance (tol = 1e-4), not
        // machine precision: the restart takes one polishing sweep.
        assert!(close(&warm.theta, &cold.theta, 1e-3));
        // A mismatched warm-start shape is ignored, not an error.
        let stale = GlassoConfig {
            warm_start: Some(WarmStart {
                theta: Matrix::identity(2),
                w: Matrix::identity(2),
            }),
            ..cfg
        };
        let r = graphical_lasso(&s, &stale).unwrap();
        assert!(close(&r.theta, &cold.theta, 1e-6));
    }

    #[test]
    fn neighborhood_selection_threads_match_sequential() {
        let theta_true =
            Matrix::from_rows(&[&[1.5, -0.6, 0.0], &[-0.6, 1.8, -0.6], &[0.0, -0.6, 1.5]]);
        let sigma = spd_inverse(&theta_true).unwrap();
        let seq = neighborhood_selection_threads(&sigma, 0.02, Some(1)).unwrap();
        for threads in [2, 4] {
            let par = neighborhood_selection_threads(&sigma, 0.02, Some(threads)).unwrap();
            assert!(close(&seq, &par, 1e-15), "threads={threads}");
        }
    }

    #[test]
    fn force_no_converge_fault_flips_the_flag() {
        let s = Matrix::from_rows(&[&[1.0, 0.4], &[0.4, 1.0]]);
        let clean = graphical_lasso(&s, &GlassoConfig::default()).unwrap();
        assert!(clean.converged);
        let faulted = {
            let _f = fdx_obs::faults::arm("glasso.force_no_converge");
            graphical_lasso(&s, &GlassoConfig::default()).unwrap()
        };
        assert!(
            !faulted.converged,
            "armed fault must report non-convergence"
        );
        // Θ itself is untouched: the fault only lies about convergence.
        assert_eq!(faulted.theta[(0, 1)], clean.theta[(0, 1)]);
        // λ > 0 path too.
        let cfg = GlassoConfig {
            lambda: 0.1,
            ..Default::default()
        };
        let _f = fdx_obs::faults::arm("glasso.force_no_converge");
        assert!(!graphical_lasso(&s, &cfg).unwrap().converged);
    }
}
