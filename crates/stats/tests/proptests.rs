//! Property-based tests for the statistical estimators.

use fdx_data::{Column, Dataset, Schema, Value};
use fdx_stats::{
    chi_squared, chi_squared_p_value, conditional_entropy, entropy, entropy_of_counts,
    expected_mutual_information, group_ids, mutual_information,
};
use proptest::prelude::*;

fn dataset(rows: usize) -> impl Strategy<Value = Dataset> {
    proptest::collection::vec((0u32..4, 0u32..4), rows).prop_map(|pairs| {
        let schema = Schema::from_names(&["x", "y"]);
        let dict: Vec<Value> = (0..4).map(|v| Value::Int(v)).collect();
        let cx = Column::from_codes(pairs.iter().map(|p| p.0).collect(), dict.clone());
        let cy = Column::from_codes(pairs.iter().map(|p| p.1).collect(), dict);
        Dataset::new(schema, vec![cx, cy])
    })
}

proptest! {
    #[test]
    fn entropy_bounds(ds in dataset(40)) {
        let hx = entropy(&ds, &[0]);
        // 0 <= H <= ln(domain size).
        prop_assert!(hx >= 0.0);
        prop_assert!(hx <= 4f64.ln() + 1e-12);
    }

    #[test]
    fn joint_entropy_subadditive(ds in dataset(40)) {
        let hx = entropy(&ds, &[0]);
        let hy = entropy(&ds, &[1]);
        let hxy = entropy(&ds, &[0, 1]);
        prop_assert!(hxy <= hx + hy + 1e-9);
        prop_assert!(hxy + 1e-9 >= hx.max(hy));
    }

    #[test]
    fn mi_nonnegative_and_bounded(ds in dataset(40)) {
        let mi = mutual_information(&ds, 1, &[0]);
        prop_assert!(mi >= 0.0);
        prop_assert!(mi <= entropy(&ds, &[1]) + 1e-9);
    }

    #[test]
    fn conditioning_reduces_entropy(ds in dataset(40)) {
        let h = entropy(&ds, &[1]);
        let hc = conditional_entropy(&ds, 1, &[0]);
        prop_assert!(hc <= h + 1e-9);
        prop_assert!(hc >= 0.0);
    }

    #[test]
    fn emi_nonnegative_and_below_min_entropy(
        a in proptest::collection::vec(1usize..8, 2..5),
        b in proptest::collection::vec(1usize..8, 2..5),
    ) {
        // Make the marginals consistent (equal totals).
        let n: usize = a.iter().sum::<usize>().max(b.iter().sum());
        let mut a = a;
        let mut b = b;
        let fix = |v: &mut Vec<usize>, n: usize| {
            let s: usize = v.iter().sum();
            if s < n { v.push(n - s); }
        };
        fix(&mut a, n);
        fix(&mut b, n);
        let emi = expected_mutual_information(&a, &b, n);
        prop_assert!(emi >= 0.0);
        let ha = entropy_of_counts(&a, n);
        let hb = entropy_of_counts(&b, n);
        prop_assert!(emi <= ha.min(hb) + 1e-9, "emi {} vs H {} {}", emi, ha, hb);
    }

    #[test]
    fn chi_squared_p_value_in_unit_interval(x in 0.0..200.0f64, dof in 0usize..12) {
        let p = chi_squared_p_value(x, dof);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn chi_squared_statistic_nonnegative(ds in dataset(50)) {
        let gx = group_ids(&ds, &[0]);
        let gy = group_ids(&ds, &[1]);
        let r = chi_squared(&gx, &gy);
        prop_assert!(r.statistic >= -1e-9);
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        prop_assert!((0.0..=1.0).contains(&r.cramers_v));
    }

    #[test]
    fn group_ids_partition_rows(ds in dataset(30)) {
        let g = group_ids(&ds, &[0, 1]);
        prop_assert_eq!(g.ids.len(), 30);
        prop_assert!(g.ids.iter().all(|&i| (i as usize) < g.count));
        prop_assert_eq!(g.sizes().iter().sum::<usize>(), 30);
    }
}
