use crate::groups::{joint_counts, GroupIds};

/// Result of a chi-squared test of independence on a contingency table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    /// The chi-squared statistic.
    pub statistic: f64,
    /// Degrees of freedom `(|X|−1)(|Y|−1)`.
    pub dof: usize,
    /// Upper-tail p-value `P(χ²_dof ≥ statistic)`.
    pub p_value: f64,
    /// Cramér's V effect size in `[0, 1]`.
    pub cramers_v: f64,
}

/// Pearson chi-squared test of independence between two group assignments.
///
/// This is the correlation detector CORDS runs on sampled column pairs
/// (Ilyas et al. 2004): a small p-value flags dependent columns, and the
/// paper's critique (§2.1, §5) is that such *marginal* dependence is not the
/// conditional independence structure true FDs induce.
pub fn chi_squared(x: &GroupIds, y: &GroupIds) -> ChiSquared {
    let n = x.ids.len();
    assert_eq!(n, y.ids.len());
    let ax = x.sizes();
    let by = y.sizes();
    let joint = joint_counts(x, y);
    let nf = n as f64;
    let mut stat = 0.0;
    // Group ids are dense u32s, so pairing each size with its id up front
    // keeps the inner loop free of narrowing casts.
    for (i, &ai) in (0u32..).zip(&ax) {
        if ai == 0 {
            continue;
        }
        for (j, &bj) in (0u32..).zip(&by) {
            if bj == 0 {
                continue;
            }
            let expected = ai as f64 * bj as f64 / nf;
            let observed = joint.get(&(i, j)).copied().unwrap_or(0) as f64;
            let d = observed - expected;
            stat += d * d / expected;
        }
    }
    let rx = ax.iter().filter(|&&c| c > 0).count();
    let ry = by.iter().filter(|&&c| c > 0).count();
    let dof = rx.saturating_sub(1) * ry.saturating_sub(1);
    let p_value = chi_squared_p_value(stat, dof);
    let denom = nf * (rx.min(ry).saturating_sub(1)) as f64;
    let cramers_v = if denom > 0.0 {
        (stat / denom).sqrt().min(1.0)
    } else {
        0.0
    };
    ChiSquared {
        statistic: stat,
        dof,
        p_value,
        cramers_v,
    }
}

/// Upper-tail p-value of the chi-squared distribution with `dof` degrees of
/// freedom: the regularized upper incomplete gamma `Q(dof/2, x/2)`.
pub fn chi_squared_p_value(x: f64, dof: usize) -> f64 {
    if dof == 0 {
        return 1.0;
    }
    if x <= 0.0 {
        return 1.0;
    }
    regularized_gamma_q(dof as f64 / 2.0, x / 2.0)
}

/// Regularized upper incomplete gamma `Q(a, x)` via the standard
/// series/continued-fraction split (Numerical Recipes §6.2).
fn regularized_gamma_q(a: f64, x: f64) -> f64 {
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_continued_fraction(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut sum = 1.0 / a;
    let mut term = sum;
    let mut ap = a;
    for _ in 0..500 {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    (sum * (-x + a * x.ln() - ln_gamma(a)).exp()).clamp(0.0, 1.0)
}

fn gamma_q_continued_fraction(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    ((-x + a * x.ln() - ln_gamma(a)).exp() * h).clamp(0.0, 1.0)
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0`.
fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_7e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for g in G {
        y += 1.0;
        ser += g / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group_ids;
    use fdx_data::Dataset;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn p_value_reference_points() {
        // χ²(1): P(X ≥ 3.841) ≈ 0.05; χ²(2): P(X ≥ 5.991) ≈ 0.05.
        assert!((chi_squared_p_value(3.841, 1) - 0.05).abs() < 2e-3);
        assert!((chi_squared_p_value(5.991, 2) - 0.05).abs() < 2e-3);
        // Q(a, 0) = 1.
        assert_eq!(chi_squared_p_value(0.0, 3), 1.0);
        // Extreme statistic → ~0.
        assert!(chi_squared_p_value(500.0, 2) < 1e-10);
    }

    #[test]
    fn independent_columns_high_p() {
        // A 2×2 table that exactly matches independence.
        let ds = Dataset::from_string_rows(
            &["a", "b"],
            &[&["x", "0"], &["x", "1"], &["y", "0"], &["y", "1"]],
        );
        let r = chi_squared(&group_ids(&ds, &[0]), &group_ids(&ds, &[1]));
        assert!(r.statistic.abs() < 1e-12);
        assert!(r.p_value > 0.99);
        assert_eq!(r.dof, 1);
        assert!(r.cramers_v < 1e-6);
    }

    #[test]
    fn dependent_columns_low_p() {
        // Perfect dependence, 20 rows.
        let rows: Vec<[&str; 2]> = (0..20)
            .map(|i| if i % 2 == 0 { ["x", "0"] } else { ["y", "1"] })
            .collect();
        let refs: Vec<&[&str]> = rows.iter().map(|r| &r[..]).collect();
        let ds = Dataset::from_string_rows(&["a", "b"], &refs);
        let r = chi_squared(&group_ids(&ds, &[0]), &group_ids(&ds, &[1]));
        assert!(r.p_value < 1e-4, "p = {}", r.p_value);
        assert!((r.cramers_v - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_column_is_degenerate() {
        let ds = Dataset::from_string_rows(&["a", "b"], &[&["x", "0"], &["x", "1"]]);
        let r = chi_squared(&group_ids(&ds, &[0]), &group_ids(&ds, &[1]));
        assert_eq!(r.dof, 0);
        assert_eq!(r.p_value, 1.0);
    }
}
