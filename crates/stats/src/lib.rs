//! Statistical estimators for the FDX reproduction.
//!
//! Three families of estimators back the systems in this workspace:
//!
//! * **Covariance** ([`covariance`], [`second_moment`], [`correlation`]) —
//!   FDX estimates the inverse covariance of its pair-difference samples
//!   (paper §4.2); the robustness argument of §4.3 rests on the difference
//!   between mean-estimated covariance and the zero-mean second moment.
//! * **Information theory** ([`entropy`], [`mutual_information`],
//!   [`fraction_of_information`], [`expected_mutual_information`]) — the
//!   measures behind the RFI baseline (Mandros et al.) and the paper's §2
//!   explanation of why entropy-style scores overfit.
//! * **Contingency analysis** ([`chi_squared`], [`chi_squared_p_value`]) —
//!   the statistics CORDS uses to find correlations and soft FDs.
//!
//! Grouping utilities ([`group_ids`], [`joint_counts`]) convert attribute
//! sets over a [`fdx_data::Dataset`] into the compact integer partitions the
//! estimators consume.
//!
//! For out-of-core ingestion, [`StreamStats`] accumulates the pair
//! transform's sufficient statistics chunk by chunk with an exact,
//! associative merge (see `fdx_data::ingest`).

mod bitpack;
mod chi2;
mod covariance;
mod entropy;
mod groups;
mod stream;

pub use bitpack::{pack_adjacent_agreement, pack_pair_agreement};
pub use chi2::{chi_squared, chi_squared_p_value, ChiSquared};
pub use covariance::{correlation, covariance, second_moment, standardize_columns};
pub use entropy::{
    conditional_entropy, entropy, entropy_of_counts, expected_mutual_information,
    fraction_of_information, mutual_information, reliable_fraction_of_information,
};
pub use groups::{group_ids, joint_counts, refine_groups, stable_sort_by_codes, GroupIds};
pub use stream::{chunk_seed, StreamStats};
