//! One-pass streaming accumulator for pair-difference statistics.
//!
//! Out-of-core ingestion (`fdx_data::ingest`) delivers a relation as
//! fixed-row chunks; this module accumulates the sufficient statistics of
//! the paper's pair transform (§4.2) chunk by chunk, without ever holding
//! more than one chunk of rows. Each chunk contributes one sort+shift pair
//! block per attribute — the chunk's rows are shuffled (ChaCha8, seeded
//! per chunk via [`chunk_seed`]), stably sorted by the attribute's codes,
//! and every row is paired with its successor under a circular shift —
//! exactly the resident transform's pairing applied to the chunk. Guo &
//! Rekatsinas's sparse-regression formulation treats FD discovery as
//! estimation over *sampled* tuple pairs, which is what licenses per-chunk
//! pairing as a degradation rung: the chunked statistic is a pair
//! subsample of the resident one, not an approximation of a different
//! quantity.
//!
//! All counters are `u64` counts, so [`StreamStats::merge`] is **exact and
//! associative**: merging chunk statistics in any grouping yields
//! bit-identical state. On a single chunk the accumulator replicates the
//! resident path operation for operation (same shuffle stream, same stable
//! sort, same bit-packed AND+popcount), which the `fdx_core` transform
//! tests pin against `pair_transform` field by field.

use fdx_linalg::{BitMatrix, Matrix};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::bitpack::pack_adjacent_agreement;
use crate::groups::stable_sort_by_codes;

/// Derives the shuffle seed for chunk `chunk_index` from the run seed.
///
/// Chunk 0 uses the run seed itself, so a single-chunk stream shuffles
/// identically to the resident `pair_transform`.
pub fn chunk_seed(seed: u64, chunk_index: u64) -> u64 {
    seed ^ chunk_index.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Streaming sufficient statistics of the pair transform.
///
/// Holds the same aggregates as the resident path — co-agreement counts,
/// per-attribute agreement counts, and per-sort-block totals for pooled
/// within-block centering — as exact integer counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamStats {
    k: usize,
    seed: u64,
    /// Treat NULL = NULL as agreement (the resident `NullPolicy` knob).
    nulls_equal: bool,
    /// Upper-triangular (including diagonal) co-agreement counts, row-major.
    co_counts: Vec<u64>,
    ones: Vec<u64>,
    /// `block_ones[blk * k + a]`: agreements on attribute `a` among pairs
    /// produced while sorted by attribute `blk`, pooled across chunks.
    block_ones: Vec<u64>,
    /// Pairs contributed by each sort block, pooled across chunks.
    block_sizes: Vec<u64>,
    n_samples: u64,
    chunks: u64,
}

impl StreamStats {
    /// Empty statistics over `k` attributes.
    pub fn new(k: usize, seed: u64, nulls_equal: bool) -> StreamStats {
        StreamStats {
            k,
            seed,
            nulls_equal,
            co_counts: vec![0; k * k],
            ones: vec![0; k],
            block_ones: vec![0; k * k],
            block_sizes: vec![0; k],
            n_samples: 0,
            chunks: 0,
        }
    }

    /// Number of attributes `k`.
    pub fn num_attributes(&self) -> usize {
        self.k
    }

    /// Pair samples accumulated so far.
    pub fn num_samples(&self) -> u64 {
        self.n_samples
    }

    /// Chunks accumulated so far.
    pub fn num_chunks(&self) -> u64 {
        self.chunks
    }

    /// Raw co-agreement counts (row-major `k × k`, upper triangle).
    pub fn co_counts(&self) -> &[u64] {
        &self.co_counts
    }

    /// Raw per-attribute agreement counts.
    pub fn ones(&self) -> &[u64] {
        &self.ones
    }

    /// Raw per-block agreement counts (`block_ones[blk * k + a]`).
    pub fn block_ones(&self) -> &[u64] {
        &self.block_ones
    }

    /// Pairs contributed by each sort block.
    pub fn block_sizes(&self) -> &[u64] {
        &self.block_sizes
    }

    /// Accumulates one chunk given as per-attribute code slices (all of
    /// equal length; `chunk_index` is the 0-based position of the chunk in
    /// the stream). Chunks of fewer than 2 rows contribute nothing.
    ///
    /// # Panics
    ///
    /// Panics if `columns.len() != k` or the columns have unequal lengths.
    pub fn accumulate_chunk(&mut self, columns: &[&[u32]], chunk_index: u64) {
        let k = self.k;
        assert_eq!(columns.len(), k, "chunk has wrong attribute count");
        let m = columns.first().map_or(0, |c| c.len());
        for col in columns {
            assert_eq!(col.len(), m, "chunk columns of unequal length");
        }
        if m < 2 {
            return;
        }

        let mut shuffled: Vec<usize> = (0..m).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(chunk_seed(self.seed, chunk_index));
        shuffled.shuffle(&mut rng);

        let mut bits = BitMatrix::zeros(k, m);
        let mut gathered = vec![0u32; m + 1];
        let mut order: Vec<usize> = Vec::with_capacity(m);
        for attr in 0..k {
            // Stable sort of the shuffled order by this attribute's codes
            // (counting sort, same permutation as `sort_by_key`), then
            // circular-shift pairing — the resident Algorithm 2 block.
            stable_sort_by_codes(&shuffled, columns[attr], &mut order);

            // Gather each attribute into the block's sort order once with a
            // wrap sentinel, then pack adjacent-agreement bits word at a
            // time; the packer assigns every word, so the bit-matrix is
            // reused across sort blocks without clearing.
            for (a, codes) in columns.iter().enumerate() {
                for (g, &r) in gathered[..m].iter_mut().zip(&order) {
                    *g = codes[r];
                }
                gathered[m] = gathered[0];
                pack_adjacent_agreement(&gathered, m, self.nulls_equal, bits.row_mut(a));
            }
            let pops = bits.row_popcounts();
            for a in 0..k {
                self.ones[a] += pops[a];
                self.block_ones[attr * k + a] += pops[a];
            }
            // The Gram diagonal is each row's popcount, so `co_counts`'
            // diagonal receives the same `ones` increment as before.
            bits.gram_accumulate(BitMatrix::DEFAULT_BLOCK_WORDS, &mut self.co_counts);
            self.block_sizes[attr] += m as u64;
            self.n_samples += m as u64;
        }
        self.chunks += 1;
    }

    /// Exact, associative merge: element-wise integer addition of every
    /// counter. `merge(a, merge(b, c)) == merge(merge(a, b), c)`
    /// bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if the two sides disagree on `k`, seed, or null handling —
    /// those statistics describe different experiments.
    pub fn merge(&mut self, other: &StreamStats) {
        assert_eq!(self.k, other.k, "merge across attribute counts");
        assert_eq!(self.seed, other.seed, "merge across seeds");
        assert_eq!(
            self.nulls_equal, other.nulls_equal,
            "merge across null policies"
        );
        for (a, b) in self.co_counts.iter_mut().zip(&other.co_counts) {
            *a += b;
        }
        for (a, b) in self.ones.iter_mut().zip(&other.ones) {
            *a += b;
        }
        for (a, b) in self.block_ones.iter_mut().zip(&other.block_ones) {
            *a += b;
        }
        for (a, b) in self.block_sizes.iter_mut().zip(&other.block_sizes) {
            *a += b;
        }
        self.n_samples += other.n_samples;
        self.chunks += other.chunks;
    }

    /// Per-attribute empirical agreement rate `P(z[a] = 1)`.
    pub fn agreement_rates(&self) -> Vec<f64> {
        let n = self.n_samples.max(1) as f64;
        self.ones.iter().map(|&o| o as f64 / n).collect()
    }

    /// Pooled **within-block** covariance of the accumulated pair samples
    /// — the resident path's stratification-corrected `S`, with blocks
    /// pooled across chunks.
    pub fn covariance(&self) -> Matrix {
        let n = self.n_samples.max(1) as f64;
        let k = self.k;
        let mut s = Matrix::zeros(k, k);
        for a in 0..k {
            for b in a..k {
                let mut c = self.co_counts[a * k + b] as f64;
                for blk in 0..k {
                    let m = self.block_sizes[blk];
                    if m > 0 {
                        let oa = self.block_ones[blk * k + a] as f64;
                        let ob = self.block_ones[blk * k + b] as f64;
                        c -= oa * ob / m as f64;
                    }
                }
                let v = c / n;
                s[(a, b)] = v;
                s[(b, a)] = v;
            }
        }
        s
    }

    /// Naive pooled covariance (single global mean, no block centering).
    pub fn pooled_covariance(&self) -> Matrix {
        let n = self.n_samples.max(1) as f64;
        let p = self.agreement_rates();
        let mut s = Matrix::zeros(self.k, self.k);
        for a in 0..self.k {
            for b in a..self.k {
                let c = self.co_counts[a * self.k + b] as f64 / n;
                let v = c - p[a] * p[b];
                s[(a, b)] = v;
                s[(b, a)] = v;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::covariance;
    use fdx_data::NULL_CODE;

    /// Three categorical columns with a planted zip→city dependency.
    fn columns(rows: usize) -> Vec<Vec<u32>> {
        let mut zip = Vec::new();
        let mut city = Vec::new();
        let mut noise = Vec::new();
        for i in 0..rows {
            let z = (i % 16) as u32;
            zip.push(z);
            city.push(z / 2);
            noise.push(((i * 7 + 3) % 5) as u32);
        }
        vec![zip, city, noise]
    }

    fn slices(cols: &[Vec<u32>]) -> Vec<&[u32]> {
        cols.iter().map(Vec::as_slice).collect()
    }

    #[test]
    fn sample_counts_per_chunk() {
        let cols = columns(50);
        let mut s = StreamStats::new(3, 42, false);
        s.accumulate_chunk(&slices(&cols), 0);
        assert_eq!(s.num_samples(), 50 * 3);
        assert_eq!(s.num_chunks(), 1);
        s.accumulate_chunk(&slices(&cols), 1);
        assert_eq!(s.num_samples(), 2 * 50 * 3);
        assert_eq!(s.num_chunks(), 2);
    }

    #[test]
    fn tiny_chunks_contribute_nothing() {
        let mut s = StreamStats::new(2, 1, false);
        s.accumulate_chunk(&[&[], &[]], 0);
        s.accumulate_chunk(&[&[3], &[4]], 1);
        assert_eq!(s.num_samples(), 0);
    }

    #[test]
    fn merge_is_exact_and_associative() {
        let cols = columns(64);
        let views = slices(&cols);
        let chunks: Vec<(u64, Vec<&[u32]>)> = (0..4)
            .map(|c| {
                let lo = c * 16;
                (
                    c as u64,
                    views.iter().map(|v| &v[lo..lo + 16]).collect::<Vec<_>>(),
                )
            })
            .collect();

        // One accumulator fed sequentially.
        let mut seq = StreamStats::new(3, 7, false);
        for (idx, view) in &chunks {
            seq.accumulate_chunk(view, *idx);
        }

        // Per-chunk accumulators merged left-to-right.
        let partials: Vec<StreamStats> = chunks
            .iter()
            .map(|(idx, view)| {
                let mut p = StreamStats::new(3, 7, false);
                p.accumulate_chunk(view, *idx);
                p
            })
            .collect();
        let mut left = StreamStats::new(3, 7, false);
        for p in &partials {
            left.merge(p);
        }

        // Merged in a different grouping: (0+1) + (2+3).
        let mut ab = partials[0].clone();
        ab.merge(&partials[1]);
        let mut cd = partials[2].clone();
        cd.merge(&partials[3]);
        let mut grouped = ab.clone();
        grouped.merge(&cd);

        assert_eq!(seq, left, "sequential == merged");
        assert_eq!(left, grouped, "merge grouping must not matter");
    }

    #[test]
    fn deterministic_per_seed_and_chunk() {
        let cols = columns(40);
        let mut a = StreamStats::new(3, 5, false);
        let mut b = StreamStats::new(3, 5, false);
        a.accumulate_chunk(&slices(&cols), 0);
        b.accumulate_chunk(&slices(&cols), 0);
        assert_eq!(a, b);
        // A different chunk index shuffles differently but keeps totals.
        let mut c = StreamStats::new(3, 5, false);
        c.accumulate_chunk(&slices(&cols), 9);
        assert_eq!(a.num_samples(), c.num_samples());
        assert_eq!(a.block_sizes(), c.block_sizes());
    }

    #[test]
    fn planted_fd_shows_positive_covariance() {
        let cols = columns(200);
        let mut s = StreamStats::new(3, 42, false);
        for (idx, chunk) in cols[0].chunks(50).enumerate() {
            let view: Vec<&[u32]> = (0..3)
                .map(|a| &cols[a][idx * 50..idx * 50 + chunk.len()])
                .collect();
            s.accumulate_chunk(&view, idx as u64);
        }
        let cov = s.covariance();
        assert!(
            cov[(0, 1)] > 0.0,
            "zip→city should co-agree: {:?}",
            cov[(0, 1)]
        );
        assert!(cov[(0, 1)] > cov[(0, 2)], "dependency beats noise");
    }

    #[test]
    fn pooled_covariance_matches_materialized_samples() {
        // Materialize the exact same pairs densely and compare the plain
        // covariance with the streaming pooled covariance.
        let cols = columns(30);
        let k = 3;
        let mut s = StreamStats::new(k, 11, false);
        s.accumulate_chunk(&slices(&cols), 0);

        let m = 30;
        let mut shuffled: Vec<usize> = (0..m).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(chunk_seed(11, 0));
        shuffled.shuffle(&mut rng);
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for attr in 0..k {
            let mut order = shuffled.clone();
            order.sort_by_key(|&r| cols[attr][r]);
            for r in 0..m {
                let (i, j) = (order[r], order[(r + 1) % m]);
                rows.push(
                    (0..k)
                        .map(|a| if cols[a][i] == cols[a][j] { 1.0 } else { 0.0 })
                        .collect(),
                );
            }
        }
        let mut mat = Matrix::zeros(rows.len(), k);
        for (r, row) in rows.iter().enumerate() {
            for (a, &v) in row.iter().enumerate() {
                mat[(r, a)] = v;
            }
        }
        let dense = covariance(&mat);
        let stream = s.pooled_covariance();
        for a in 0..k {
            for b in 0..k {
                assert!(
                    (dense[(a, b)] - stream[(a, b)]).abs() < 1e-12,
                    "({a},{b}): {} vs {}",
                    dense[(a, b)],
                    stream[(a, b)]
                );
            }
        }
    }

    #[test]
    fn null_handling_toggles_agreement() {
        let with_nulls = vec![vec![NULL_CODE, NULL_CODE, 1, NULL_CODE], vec![0, 0, 1, 0]];
        let views = slices(&with_nulls);
        let mut never = StreamStats::new(2, 3, false);
        never.accumulate_chunk(&views, 0);
        let mut eq = StreamStats::new(2, 3, true);
        eq.accumulate_chunk(&views, 0);
        assert!(eq.ones()[0] > never.ones()[0]);
    }

    #[test]
    #[should_panic(expected = "merge across seeds")]
    fn merge_rejects_mismatched_experiments() {
        let mut a = StreamStats::new(2, 1, false);
        let b = StreamStats::new(2, 2, false);
        a.merge(&b);
    }
}
