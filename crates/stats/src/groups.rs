use std::collections::{BTreeMap, HashMap};

use fdx_data::{AttrId, Dataset};

/// Compact group assignment for the rows of a dataset under a set of
/// attributes: rows with identical value combinations share a group id.
///
/// This is the common substrate for entropy estimation (groups are the cells
/// of the empirical distribution) and for TANE-style partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupIds {
    /// Group id per row, densely numbered from 0.
    pub ids: Vec<u32>,
    /// Number of distinct groups.
    pub count: usize,
}

impl GroupIds {
    /// Size of each group, indexed by group id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &g in &self.ids {
            sizes[g as usize] += 1;
        }
        sizes
    }
}

/// Assigns a dense group id to every row according to its value combination
/// over `attrs`. Null cells participate as their own (shared) value, so two
/// rows that are both null in an attribute agree on it — the convention the
/// information-theoretic baselines use.
pub fn group_ids(ds: &Dataset, attrs: &[AttrId]) -> GroupIds {
    assert!(
        !attrs.is_empty(),
        "group_ids requires at least one attribute"
    );
    let n = ds.nrows();
    if attrs.len() == 1 {
        // Fast path: dictionary codes are already dense group ids; remap
        // nulls to a fresh id.
        let codes = ds.column(attrs[0]).codes();
        // fdx-allow: L005 distinct counts are bounded by the u32 dictionary code space
        let distinct = ds.column(attrs[0]).distinct_count() as u32;
        let mut ids = Vec::with_capacity(n);
        let mut saw_null = false;
        for &c in codes {
            if c == fdx_data::NULL_CODE {
                saw_null = true;
                ids.push(distinct);
            } else {
                ids.push(c);
            }
        }
        // Compact: ids may skip values if some dictionary entries don't occur
        // (possible after gather); renumber densely.
        return renumber(ids, distinct as usize + usize::from(saw_null));
    }
    let mut map: HashMap<Vec<u32>, u32> = HashMap::new();
    let mut ids = Vec::with_capacity(n);
    let mut key = Vec::with_capacity(attrs.len());
    for r in 0..n {
        key.clear();
        for &a in attrs {
            key.push(ds.code(r, a));
        }
        // fdx-allow: L005 group count is bounded by row count, which fits u32 codes
        let next = map.len() as u32;
        let id = *map.entry(key.clone()).or_insert(next);
        ids.push(id);
    }
    let count = map.len();
    GroupIds { ids, count }
}

fn renumber(ids: Vec<u32>, upper_bound: usize) -> GroupIds {
    let mut remap = vec![u32::MAX; upper_bound + 1];
    let mut next = 0u32;
    let mut out = Vec::with_capacity(ids.len());
    for g in ids {
        let slot = &mut remap[g as usize];
        if *slot == u32::MAX {
            *slot = next;
            next += 1;
        }
        out.push(*slot);
    }
    GroupIds {
        ids: out,
        count: next as usize,
    }
}

/// Joint contingency counts over two group assignments: `counts[(gx, gy)]`
/// is the number of rows in X-group `gx` and Y-group `gy`.
///
/// Returns a `BTreeMap` so iterating the cells visits them in sorted
/// `(gx, gy)` order: the mutual-information accumulation in `entropy.rs`
/// sums floats over these cells, and a hash-ordered walk would make the
/// rounding (and therefore the cached MI scores) run-dependent.
pub fn joint_counts(x: &GroupIds, y: &GroupIds) -> BTreeMap<(u32, u32), usize> {
    assert_eq!(x.ids.len(), y.ids.len());
    let mut counts = BTreeMap::new();
    for (&gx, &gy) in x.ids.iter().zip(&y.ids) {
        *counts.entry((gx, gy)).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdx_data::Dataset;

    fn ds() -> Dataset {
        Dataset::from_string_rows(
            &["a", "b"],
            &[
                &["x", "1"],
                &["y", "1"],
                &["x", "2"],
                &["x", "1"],
                &["", "2"],
            ],
        )
    }

    #[test]
    fn single_attribute_groups() {
        let g = group_ids(&ds(), &[0]);
        assert_eq!(g.count, 3); // x, y, null
        assert_eq!(g.ids[0], g.ids[2]);
        assert_eq!(g.ids[0], g.ids[3]);
        assert_ne!(g.ids[0], g.ids[1]);
        assert_ne!(g.ids[4], g.ids[0]);
        assert_eq!(g.sizes().iter().sum::<usize>(), 5);
    }

    #[test]
    fn pair_groups() {
        let g = group_ids(&ds(), &[0, 1]);
        // (x,1) (y,1) (x,2) (x,1) (null,2) → 4 groups.
        assert_eq!(g.count, 4);
        assert_eq!(g.ids[0], g.ids[3]);
        assert_ne!(g.ids[0], g.ids[1]);
    }

    #[test]
    fn joint_counts_tally() {
        let d = ds();
        let gx = group_ids(&d, &[0]);
        let gy = group_ids(&d, &[1]);
        let j = joint_counts(&gx, &gy);
        let total: usize = j.values().sum();
        assert_eq!(total, 5);
        // (x, 1) occurs twice.
        assert_eq!(j[&(gx.ids[0], gy.ids[0])], 2);
    }

    #[test]
    fn renumber_compacts_after_gather() {
        let d = ds().gather(&[1, 4]); // rows y(1), null(2)
        let g = group_ids(&d, &[0]);
        assert_eq!(g.count, 2);
        assert!(g.ids.iter().all(|&i| i < 2));
    }
}
