use std::collections::{BTreeMap, HashMap};

use fdx_data::{AttrId, Dataset, NULL_CODE};

/// Compact group assignment for the rows of a dataset under a set of
/// attributes: rows with identical value combinations share a group id.
///
/// This is the common substrate for entropy estimation (groups are the cells
/// of the empirical distribution) and for TANE-style partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupIds {
    /// Group id per row, densely numbered from 0.
    pub ids: Vec<u32>,
    /// Number of distinct groups.
    pub count: usize,
}

impl GroupIds {
    /// Size of each group, indexed by group id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &g in &self.ids {
            sizes[g as usize] += 1;
        }
        sizes
    }

    /// Number of within-group row pairs: `Σ_g |g|·(|g|−1)/2`.
    ///
    /// This is the quantity Equation 2's validation scores are built from
    /// (pairs agreeing on the grouping attributes), computed without
    /// materializing the per-group size vector for the caller.
    pub fn pair_count(&self) -> u64 {
        let mut sizes = vec![0u64; self.count];
        for &g in &self.ids {
            sizes[g as usize] += 1;
        }
        sizes.iter().map(|&c| c * c.saturating_sub(1) / 2).sum()
    }
}

/// Assigns a dense group id to every row according to its value combination
/// over `attrs`. Null cells participate as their own (shared) value, so two
/// rows that are both null in an attribute agree on it — the convention the
/// information-theoretic baselines use.
pub fn group_ids(ds: &Dataset, attrs: &[AttrId]) -> GroupIds {
    assert!(
        !attrs.is_empty(),
        "group_ids requires at least one attribute"
    );
    let n = ds.nrows();
    if attrs.len() == 1 {
        // Fast path: dictionary codes are already dense group ids; remap
        // nulls to a fresh id.
        let codes = ds.column(attrs[0]).codes();
        // fdx-allow: L005 distinct counts are bounded by the u32 dictionary code space
        let distinct = ds.column(attrs[0]).distinct_count() as u32;
        let mut ids = Vec::with_capacity(n);
        let mut saw_null = false;
        for &c in codes {
            if c == fdx_data::NULL_CODE {
                saw_null = true;
                ids.push(distinct);
            } else {
                ids.push(c);
            }
        }
        // Compact: ids may skip values if some dictionary entries don't occur
        // (possible after gather); renumber densely.
        return renumber(ids, distinct as usize + usize::from(saw_null));
    }
    let mut map: HashMap<Vec<u32>, u32> = HashMap::new();
    let mut ids = Vec::with_capacity(n);
    let mut key = Vec::with_capacity(attrs.len());
    for r in 0..n {
        key.clear();
        for &a in attrs {
            key.push(ds.code(r, a));
        }
        // fdx-allow: L005 group count is bounded by row count, which fits u32 codes
        let next = map.len() as u32;
        let id = *map.entry(key.clone()).or_insert(next);
        ids.push(id);
    }
    let count = map.len();
    GroupIds { ids, count }
}

/// Refines a partition by one more code column: rows land in the same
/// output group iff they share a `base` group **and** a code. NULL codes
/// participate as their own shared value, matching [`group_ids`]'s
/// multi-attribute convention.
///
/// Output ids are densely numbered by first appearance in row order —
/// exactly the numbering [`group_ids`] produces — so
/// `refine_groups(group_ids(ds, X), ds.column(b).codes())` equals
/// `group_ids(ds, X ∪ {b})` bit for bit. This is the primitive behind the
/// validation partition cache: a joint partition `gxy` costs one linear
/// refinement of the cached `gx` instead of a full multi-attribute
/// re-grouping.
///
/// # Panics
///
/// Panics if `base` and `codes` disagree on the row count.
pub fn refine_groups(base: &GroupIds, codes: &[u32]) -> GroupIds {
    assert_eq!(
        base.ids.len(),
        codes.len(),
        "partition and code column must cover the same rows"
    );
    let n = codes.len();
    let mut dmax = 0u32;
    for &c in codes {
        if c != NULL_CODE && c > dmax {
            dmax = c;
        }
    }
    // Dictionary codes are dense, so a flat (group, code) table usually
    // fits; fall back to hashing for pathological code ranges.
    let width = dmax as usize + 2; // + 1 slot for NULL at the end
    let null_slot = width - 1;
    let table_size = base.count.saturating_mul(width);
    let mut ids = Vec::with_capacity(n);
    let mut next = 0u32;
    if table_size <= (1 << 22).max(4 * n) {
        let mut table = vec![u32::MAX; table_size];
        for (&g, &c) in base.ids.iter().zip(codes) {
            let col = if c == NULL_CODE {
                null_slot
            } else {
                c as usize
            };
            let slot = &mut table[g as usize * width + col];
            if *slot == u32::MAX {
                *slot = next;
                next += 1;
            }
            ids.push(*slot);
        }
    } else {
        let mut map: HashMap<u64, u32> = HashMap::with_capacity(n.min(1024));
        for (&g, &c) in base.ids.iter().zip(codes) {
            let key = (u64::from(g) << 32) | u64::from(c);
            let id = *map.entry(key).or_insert(next);
            if id == next {
                next += 1;
            }
            ids.push(id);
        }
    }
    GroupIds {
        ids,
        count: next as usize,
    }
}

/// Stably sorts the row indices of `base` by their dictionary codes into
/// `out`, reusing `out`'s allocation.
///
/// Produces exactly the permutation of `base.to_vec().sort_by_key(|&r|
/// codes[r])` — a stable counting sort over the dense code space, with
/// `NULL_CODE` rows last (consistent with `u32` ordering of the sentinel).
/// Dictionary codes are dense, so the bucket array stays proportional to
/// the block; for degenerate sparse code ranges it falls back to the
/// comparison sort. This is the sort inside every pair-transform block
/// (Algorithm 2 sorts the shuffled relation once per attribute), where it
/// replaces `k` `O(n log n)` comparison sorts with `O(n + d)` passes.
pub fn stable_sort_by_codes(base: &[usize], codes: &[u32], out: &mut Vec<usize>) {
    out.clear();
    let mut dmax = 0u32;
    let mut saw_null = false;
    for &r in base {
        let c = codes[r];
        if c == NULL_CODE {
            saw_null = true;
        } else if c > dmax {
            dmax = c;
        }
    }
    let buckets = dmax as usize + 1 + usize::from(saw_null);
    if buckets > base.len().saturating_mul(4).max(1024) {
        out.extend_from_slice(base);
        out.sort_by_key(|&r| codes[r]);
        return;
    }
    let null_bucket = buckets - 1; // only used when saw_null
    let mut offsets = vec![0u32; buckets + 1];
    for &r in base {
        let c = codes[r];
        let b = if c == NULL_CODE {
            null_bucket
        } else {
            c as usize
        };
        offsets[b + 1] += 1;
    }
    for b in 0..buckets {
        offsets[b + 1] += offsets[b];
    }
    out.resize(base.len(), 0);
    for &r in base {
        let c = codes[r];
        let b = if c == NULL_CODE {
            null_bucket
        } else {
            c as usize
        };
        out[offsets[b] as usize] = r;
        offsets[b] += 1;
    }
}

fn renumber(ids: Vec<u32>, upper_bound: usize) -> GroupIds {
    let mut remap = vec![u32::MAX; upper_bound + 1];
    let mut next = 0u32;
    let mut out = Vec::with_capacity(ids.len());
    for g in ids {
        let slot = &mut remap[g as usize];
        if *slot == u32::MAX {
            *slot = next;
            next += 1;
        }
        out.push(*slot);
    }
    GroupIds {
        ids: out,
        count: next as usize,
    }
}

/// Joint contingency counts over two group assignments: `counts[(gx, gy)]`
/// is the number of rows in X-group `gx` and Y-group `gy`.
///
/// Returns a `BTreeMap` so iterating the cells visits them in sorted
/// `(gx, gy)` order: the mutual-information accumulation in `entropy.rs`
/// sums floats over these cells, and a hash-ordered walk would make the
/// rounding (and therefore the cached MI scores) run-dependent.
pub fn joint_counts(x: &GroupIds, y: &GroupIds) -> BTreeMap<(u32, u32), usize> {
    assert_eq!(x.ids.len(), y.ids.len());
    let mut counts = BTreeMap::new();
    for (&gx, &gy) in x.ids.iter().zip(&y.ids) {
        *counts.entry((gx, gy)).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdx_data::Dataset;

    fn ds() -> Dataset {
        Dataset::from_string_rows(
            &["a", "b"],
            &[
                &["x", "1"],
                &["y", "1"],
                &["x", "2"],
                &["x", "1"],
                &["", "2"],
            ],
        )
    }

    #[test]
    fn single_attribute_groups() {
        let g = group_ids(&ds(), &[0]);
        assert_eq!(g.count, 3); // x, y, null
        assert_eq!(g.ids[0], g.ids[2]);
        assert_eq!(g.ids[0], g.ids[3]);
        assert_ne!(g.ids[0], g.ids[1]);
        assert_ne!(g.ids[4], g.ids[0]);
        assert_eq!(g.sizes().iter().sum::<usize>(), 5);
    }

    #[test]
    fn pair_groups() {
        let g = group_ids(&ds(), &[0, 1]);
        // (x,1) (y,1) (x,2) (x,1) (null,2) → 4 groups.
        assert_eq!(g.count, 4);
        assert_eq!(g.ids[0], g.ids[3]);
        assert_ne!(g.ids[0], g.ids[1]);
    }

    #[test]
    fn joint_counts_tally() {
        let d = ds();
        let gx = group_ids(&d, &[0]);
        let gy = group_ids(&d, &[1]);
        let j = joint_counts(&gx, &gy);
        let total: usize = j.values().sum();
        assert_eq!(total, 5);
        // (x, 1) occurs twice.
        assert_eq!(j[&(gx.ids[0], gy.ids[0])], 2);
    }

    #[test]
    fn renumber_compacts_after_gather() {
        let d = ds().gather(&[1, 4]); // rows y(1), null(2)
        let g = group_ids(&d, &[0]);
        assert_eq!(g.count, 2);
        assert!(g.ids.iter().all(|&i| i < 2));
    }

    #[test]
    fn pair_count_matches_sizes() {
        let g = group_ids(&ds(), &[0]);
        let manual: u64 = g
            .sizes()
            .iter()
            .map(|&c| (c * c.saturating_sub(1) / 2) as u64)
            .sum();
        assert_eq!(g.pair_count(), manual);
        // x appears 3 times → 3 pairs; y and null are singletons.
        assert_eq!(g.pair_count(), 3);
    }

    #[test]
    fn refine_equals_joint_group_ids() {
        let d = ds();
        let gx = group_ids(&d, &[0]);
        let refined = refine_groups(&gx, d.column(1).codes());
        let joint = group_ids(&d, &[0, 1]);
        assert_eq!(refined, joint, "refinement must reproduce joint grouping");
    }

    #[test]
    fn refine_chain_matches_multi_attribute() {
        // Wider dataset with nulls: refine one attribute at a time and
        // compare against the direct multi-attribute grouping.
        let rows: Vec<Vec<String>> = (0..60)
            .map(|i| {
                vec![
                    format!("a{}", i % 5),
                    if i % 7 == 0 {
                        String::new()
                    } else {
                        format!("b{}", i % 3)
                    },
                    format!("c{}", i % 4),
                ]
            })
            .collect();
        let row_refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let refs: Vec<&[&str]> = row_refs.iter().map(Vec::as_slice).collect();
        let d = Dataset::from_string_rows(&["x", "y", "z"], &refs);
        let mut part = group_ids(&d, &[0]);
        part = refine_groups(&part, d.column(1).codes());
        part = refine_groups(&part, d.column(2).codes());
        assert_eq!(part, group_ids(&d, &[0, 1, 2]));
    }

    #[test]
    fn refine_hash_fallback_matches_dense() {
        // Force the hash path with a tiny base.count but huge code range by
        // constructing codes directly (sparse, far beyond 4n).
        let base = GroupIds {
            ids: vec![0, 1, 0, 1, 0],
            count: 2,
        };
        let sparse: Vec<u32> = vec![9_000_000, 9_000_000, 5, 9_000_000, 5];
        let refined = refine_groups(&base, &sparse);
        // Groups: (0,9M) r0,? ; (1,9M) r1,r3 ; (0,5) r2,r4.
        assert_eq!(refined.ids, vec![0, 1, 2, 1, 2]);
        assert_eq!(refined.count, 3);
    }

    #[test]
    fn stable_sort_matches_comparison_sort() {
        // Shuffled base with duplicates and nulls; counting sort must equal
        // the stable comparison sort exactly, tie order included.
        let codes: Vec<u32> = (0..100)
            .map(|i| {
                if i % 11 == 0 {
                    NULL_CODE
                } else {
                    (i * 13 % 7) as u32
                }
            })
            .collect();
        let base: Vec<usize> = (0..100).map(|i| (i * 37 + 5) % 100).collect();
        let mut expect = base.clone();
        expect.sort_by_key(|&r| codes[r]);
        let mut got = Vec::new();
        stable_sort_by_codes(&base, &codes, &mut got);
        assert_eq!(got, expect);
    }

    #[test]
    fn stable_sort_sparse_codes_fall_back() {
        let codes = vec![4_000_000_000u32, 7, 4_000_000_000, 0];
        let base = vec![0usize, 1, 2, 3];
        let mut expect = base.clone();
        expect.sort_by_key(|&r| codes[r]);
        let mut got = Vec::new();
        stable_sort_by_codes(&base, &codes, &mut got);
        assert_eq!(got, expect);
    }

    #[test]
    fn stable_sort_reuses_buffer() {
        let codes = vec![2u32, 0, 1];
        let mut out = vec![99usize; 17];
        stable_sort_by_codes(&[0, 1, 2], &codes, &mut out);
        assert_eq!(out, vec![1, 2, 0]);
        stable_sort_by_codes(&[], &codes, &mut out);
        assert!(out.is_empty());
    }
}
