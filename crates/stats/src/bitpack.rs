//! Word-at-a-time packers from code columns to agreement bit-rows.
//!
//! Both pair-transform paths — the resident `fdx_core` transform and the
//! streaming [`crate::StreamStats`] accumulator — reduce a sort block to
//! the same primitive: for each attribute, a row of indicator bits
//! `z[r] = 1(t_i[a] = t_j[a])` over the block's sampled pairs, packed into
//! `u64` words for the popcount Gram kernel
//! ([`fdx_linalg::BitMatrix::gram_accumulate`]).
//!
//! The circular-shift packer takes the attribute's codes pre-gathered into
//! the block's sort order **with a wrap sentinel appended**
//! (`gathered[n] = gathered[0]`), so every pair is an adjacent compare
//! `gathered[r] == gathered[r + 1]` — a branch-free sequential scan the
//! compiler auto-vectorizes. Each group of 64 comparisons lands in a byte
//! buffer and is compressed to one `u64` with an eight-bytes-to-eight-bits
//! multiply gather (`x · 0x0102_0408_1020_4080 >> 56` picks up each
//! byte's low bit; the partial products of distinct byte lanes occupy
//! distinct bit positions, so no carries corrupt the result). The packers
//! *assign* every word rather than OR into it, which lets callers reuse
//! one scratch [`fdx_linalg::BitMatrix`] across sort blocks without
//! clearing; bits past the pair count in the final word are left zero,
//! the invariant the popcount kernels rely on.

use fdx_data::NULL_CODE;

/// Gathers the low bit of each of 8 little-endian bytes into 8 bits.
///
/// Byte lane `i` contributes `2^(8i)`; the multiplier places lane `i` at
/// bit `56 + i` and every cross-lane partial product at a distinct other
/// position (or past bit 63, where wrapping drops it), so the top byte of
/// the product is exactly the packed 8 bits.
#[inline]
fn pack8(bytes: &[u8]) -> u64 {
    let mut chunk = [0u8; 8];
    chunk.copy_from_slice(bytes);
    u64::from_le_bytes(chunk).wrapping_mul(0x0102_0408_1020_4080) >> 56
}

/// Compresses a 64-byte 0/1 buffer into one bit-packed word.
#[inline]
fn pack64(eq: &[u8; 64]) -> u64 {
    let mut word = 0u64;
    for b in 0..8 {
        word |= pack8(&eq[b * 8..b * 8 + 8]) << (b * 8);
    }
    word
}

/// Packs circular-shift agreement bits for one attribute of a sort block.
///
/// `gathered` holds the attribute's codes permuted into the block's sort
/// order **plus a wrap sentinel**: `gathered[r] = codes[order[r]]` for
/// `r < n` and `gathered[n] = gathered[0]`, so pair `r` is always the
/// adjacent compare `gathered[r] == gathered[r + 1]`. The first `limit`
/// of the `n` circular pairs are emitted into `row`. Under `nulls_equal`
/// two NULLs agree; otherwise a NULL agrees with nothing (the
/// `NeverEqual` policy, with `NULL_CODE` as the sentinel).
///
/// # Panics
///
/// Panics if `gathered` has fewer than `limit + 1` entries or `row` is
/// shorter than `limit.div_ceil(64)` words.
pub fn pack_adjacent_agreement(gathered: &[u32], limit: usize, nulls_equal: bool, row: &mut [u64]) {
    assert!(
        gathered.len() > limit,
        "gathered block must include the wrap sentinel"
    );
    let words = limit.div_ceil(64);
    for (w, slot) in row.iter_mut().enumerate().take(words) {
        let lo = w * 64;
        let hi = (lo + 64).min(limit);
        let mut eq = [0u8; 64];
        // Two loop bodies so the hot path is a pure compare the
        // auto-vectorizer can turn into wide u32 lane compares.
        if nulls_equal {
            for (e, pair) in eq.iter_mut().zip(gathered[lo..hi + 1].windows(2)) {
                *e = u8::from(pair[0] == pair[1]);
            }
        } else {
            for (e, pair) in eq.iter_mut().zip(gathered[lo..hi + 1].windows(2)) {
                *e = u8::from(pair[0] == pair[1] && pair[0] != NULL_CODE);
            }
        }
        *slot = pack64(&eq);
    }
}

/// Packs agreement bits for one attribute over gathered pair endpoints.
///
/// `left` and `right` hold the attribute's codes at the pair endpoints
/// (`left[r] = codes[pairs[r].0]`, `right[r] = codes[pairs[r].1]`); bit
/// `r` of `row` is their agreement under the same NULL semantics as
/// [`pack_adjacent_agreement`]. Used by the uniform-random sampling path,
/// where pairs are arbitrary row tuples rather than a circular shift.
///
/// # Panics
///
/// Panics if `left` and `right` differ in length or `row` is shorter than
/// `left.len().div_ceil(64)` words.
pub fn pack_pair_agreement(left: &[u32], right: &[u32], nulls_equal: bool, row: &mut [u64]) {
    assert_eq!(left.len(), right.len(), "pair endpoint columns must align");
    let m = left.len();
    let words = m.div_ceil(64);
    for (w, slot) in row.iter_mut().enumerate().take(words) {
        let lo = w * 64;
        let hi = (lo + 64).min(m);
        let mut eq = [0u8; 64];
        if nulls_equal {
            for ((e, ci), cj) in eq.iter_mut().zip(&left[lo..hi]).zip(&right[lo..hi]) {
                *e = u8::from(ci == cj);
            }
        } else {
            for ((e, ci), cj) in eq.iter_mut().zip(&left[lo..hi]).zip(&right[lo..hi]) {
                *e = u8::from(ci == cj && *ci != NULL_CODE);
            }
        }
        *slot = pack64(&eq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_sentinel(codes: &[u32]) -> Vec<u32> {
        let mut v = codes.to_vec();
        v.push(codes[0]);
        v
    }

    #[test]
    fn adjacent_agreement_matches_scalar_loop() {
        let codes: Vec<u32> = (0..200).map(|i| (i / 3) as u32).collect();
        let gathered = with_sentinel(&codes);
        for limit in [1usize, 63, 64, 65, 130, 200] {
            let mut row = vec![u64::MAX; limit.div_ceil(64)];
            pack_adjacent_agreement(&gathered, limit, false, &mut row);
            for r in 0..limit {
                let expect = codes[r] == codes[(r + 1) % codes.len()];
                let got = (row[r / 64] >> (r % 64)) & 1 == 1;
                assert_eq!(got, expect, "limit={limit} r={r}");
            }
            if limit % 64 != 0 {
                let tail = row[limit / 64] >> (limit % 64);
                assert_eq!(tail, 0, "trailing bits must stay zero at limit={limit}");
            }
        }
    }

    #[test]
    fn adjacent_wraps_through_sentinel() {
        // Last position pairs with position 0 via the sentinel: 7 == 7.
        let gathered = with_sentinel(&[7u32, 1, 2, 7]);
        let mut row = vec![0u64; 1];
        pack_adjacent_agreement(&gathered, 4, false, &mut row);
        assert_eq!(row[0], 1 << 3);
    }

    #[test]
    fn null_semantics_toggle() {
        let gathered = with_sentinel(&[NULL_CODE, NULL_CODE, 5, 5]);
        let mut never = vec![0u64; 1];
        pack_adjacent_agreement(&gathered, 3, false, &mut never);
        // NULL==NULL suppressed; 5==5 at r=2 agrees.
        assert_eq!(never[0], 1 << 2);
        let mut eq = vec![0u64; 1];
        pack_adjacent_agreement(&gathered, 3, true, &mut eq);
        assert_eq!(eq[0], (1 << 0) | (1 << 2));
    }

    #[test]
    fn pair_agreement_matches_scalar_loop() {
        let codes: Vec<u32> = (0..50).map(|i| (i % 4) as u32).collect();
        let pairs: Vec<(usize, usize)> = (0..130).map(|r| (r % 50, (r * 7 + 1) % 50)).collect();
        let left: Vec<u32> = pairs.iter().map(|&(i, _)| codes[i]).collect();
        let right: Vec<u32> = pairs.iter().map(|&(_, j)| codes[j]).collect();
        let mut row = vec![u64::MAX; 3];
        pack_pair_agreement(&left, &right, false, &mut row);
        for (r, &(i, j)) in pairs.iter().enumerate() {
            let expect = codes[i] == codes[j];
            let got = (row[r / 64] >> (r % 64)) & 1 == 1;
            assert_eq!(got, expect, "r={r}");
        }
        assert_eq!(row[2] >> 2, 0, "trailing bits must stay zero");
    }

    #[test]
    fn pair_agreement_null_left_never_agrees() {
        let left = [NULL_CODE, 3];
        let right = [NULL_CODE, 3];
        let mut row = vec![0u64; 1];
        pack_pair_agreement(&left, &right, false, &mut row);
        assert_eq!(row[0], 1 << 1);
        pack_pair_agreement(&left, &right, true, &mut row);
        assert_eq!(row[0], 0b11);
    }

    #[test]
    fn packers_assign_not_or() {
        // Reusing a dirty buffer must not leak stale bits.
        let gathered = with_sentinel(&[1u32, 2, 3, 4]);
        let mut row = vec![u64::MAX; 1];
        pack_adjacent_agreement(&gathered, 4, false, &mut row);
        assert_eq!(row[0], 0, "no agreements, despite dirty scratch");
    }

    #[test]
    fn pack8_places_each_lane() {
        for i in 0..8 {
            let mut bytes = [0u8; 8];
            bytes[i] = 1;
            assert_eq!(pack8(&bytes), 1 << i, "lane {i}");
        }
        assert_eq!(pack8(&[1; 8]), 0xFF);
    }
}
