use fdx_linalg::Matrix;

/// Empirical covariance of `samples` (rows are observations, columns are
/// variables), with the sample mean subtracted: `S = (1/N) Σ (z−z̄)(z−z̄)ᵀ`.
///
/// This is the "standard maximum likelihood estimate" the paper's §4.3 warns
/// about: the mean itself is estimated from the (possibly corrupted) data, so
/// outliers bias every entry.
pub fn covariance(samples: &Matrix) -> Matrix {
    let (n, k) = samples.shape();
    assert!(n > 0, "covariance of an empty sample");
    let mut mean = vec![0.0; k];
    for r in 0..n {
        for (m, &v) in mean.iter_mut().zip(samples.row(r)) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }
    let mut cov = Matrix::zeros(k, k);
    let mut centered = vec![0.0; k];
    for r in 0..n {
        for ((c, &v), &m) in centered.iter_mut().zip(samples.row(r)).zip(&mean) {
            *c = v - m;
        }
        accumulate_outer_upper(&mut cov, &centered);
    }
    finish_symmetric(&mut cov, n as f64);
    cov
}

/// Zero-mean second moment `S = (1/N) Σ z zᵀ`.
///
/// FDX's pair-difference transform produces samples whose population mean is
/// fixed by construction, so no mean needs to be *estimated* — this is the
/// robust alternative of §4.3 (the transformed distribution's covariance has
/// the same structure as the original).
pub fn second_moment(samples: &Matrix) -> Matrix {
    let (n, k) = samples.shape();
    assert!(n > 0, "second moment of an empty sample");
    let mut cov = Matrix::zeros(k, k);
    for r in 0..n {
        accumulate_outer_upper(&mut cov, samples.row(r));
    }
    finish_symmetric(&mut cov, n as f64);
    debug_assert!(
        fdx_linalg::is_exact_zero(cov.asymmetry()),
        "covariance invariant violated: mirrored upper triangle must be exactly symmetric"
    );
    cov
}

/// Adds the upper triangle of `v vᵀ` into `acc`.
fn accumulate_outer_upper(acc: &mut Matrix, v: &[f64]) {
    let k = v.len();
    for i in 0..k {
        let vi = v[i];
        if fdx_linalg::is_exact_zero(vi) {
            continue;
        }
        let row = acc.row_mut(i);
        for j in i..k {
            row[j] += vi * v[j];
        }
    }
}

/// Divides the upper triangle by `n` and mirrors it into the lower triangle.
fn finish_symmetric(acc: &mut Matrix, n: f64) {
    let k = acc.rows();
    for i in 0..k {
        for j in i..k {
            let v = acc[(i, j)] / n;
            acc[(i, j)] = v;
            acc[(j, i)] = v;
        }
    }
}

/// Pearson correlation matrix derived from a covariance matrix.
///
/// Variables with (numerically) zero variance get unit self-correlation and
/// zero cross-correlation — constant columns carry no dependency signal.
pub fn correlation(cov: &Matrix) -> Matrix {
    let k = cov.rows();
    let mut corr = Matrix::zeros(k, k);
    let sd: Vec<f64> = (0..k).map(|i| cov[(i, i)].max(0.0).sqrt()).collect();
    for i in 0..k {
        for j in 0..k {
            if i == j {
                corr[(i, j)] = 1.0;
            } else if sd[i] > fdx_linalg::DEFAULT_TOL && sd[j] > fdx_linalg::DEFAULT_TOL {
                corr[(i, j)] = cov[(i, j)] / (sd[i] * sd[j]);
            }
        }
    }
    corr
}

/// Standardizes each column of `samples` to zero mean and unit variance in
/// place (columns with zero variance are left centered only).
///
/// The GL-raw baseline standardizes integer-encoded raw data before
/// estimating structure, mirroring common graphical-lasso practice.
pub fn standardize_columns(samples: &mut Matrix) {
    let (n, k) = samples.shape();
    if n == 0 {
        return;
    }
    for c in 0..k {
        let mut mean = 0.0;
        for r in 0..n {
            mean += samples[(r, c)];
        }
        mean /= n as f64;
        let mut var = 0.0;
        for r in 0..n {
            let d = samples[(r, c)] - mean;
            var += d * d;
        }
        var /= n as f64;
        let sd = var.sqrt();
        for r in 0..n {
            let v = samples[(r, c)] - mean;
            samples[(r, c)] = if sd > fdx_linalg::DEFAULT_TOL {
                v / sd
            } else {
                v
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covariance_of_known_sample() {
        // Two variables, perfectly correlated.
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 6.0], &[5.0, 10.0]]);
        let c = covariance(&s);
        // var(x) = E[(x-3)^2] = (4+0+4)/3.
        assert!((c[(0, 0)] - 8.0 / 3.0).abs() < 1e-12);
        assert!((c[(1, 1)] - 32.0 / 3.0).abs() < 1e-12);
        assert!((c[(0, 1)] - 16.0 / 3.0).abs() < 1e-12);
        assert_eq!(c[(0, 1)], c[(1, 0)]);
    }

    #[test]
    fn second_moment_skips_mean() {
        let s = Matrix::from_rows(&[&[1.0, -1.0], &[1.0, -1.0]]);
        let m = second_moment(&s);
        assert!((m[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((m[(0, 1)] + 1.0).abs() < 1e-12);
        // Covariance of a constant sample is zero; second moment is not.
        let c = covariance(&s);
        assert_eq!(c[(0, 0)], 0.0);
    }

    #[test]
    fn correlation_normalizes() {
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 6.0], &[5.0, 10.0]]);
        let corr = correlation(&covariance(&s));
        assert!((corr[(0, 1)] - 1.0).abs() < 1e-12);
        assert_eq!(corr[(0, 0)], 1.0);
    }

    #[test]
    fn correlation_handles_constant_column() {
        let s = Matrix::from_rows(&[&[1.0, 5.0], &[2.0, 5.0], &[3.0, 5.0]]);
        let corr = correlation(&covariance(&s));
        assert_eq!(corr[(0, 1)], 0.0);
        assert_eq!(corr[(1, 1)], 1.0);
    }

    #[test]
    fn standardize_gives_unit_variance() {
        let mut s = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        standardize_columns(&mut s);
        let c = covariance(&s);
        assert!((c[(0, 0)] - 1.0).abs() < 1e-12);
        let mean: f64 = (0..4).map(|r| s[(r, 0)]).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
    }

    #[test]
    fn robustness_sketch_mean_shift() {
        // §4.3 intuition: a gross outlier shifts the mean-based covariance
        // far more than the zero-mean second moment of *differences*.
        let clean = Matrix::from_rows(&[&[0.0], &[1.0], &[0.0], &[1.0]]);
        let dirty = Matrix::from_rows(&[&[0.0], &[1.0], &[0.0], &[100.0]]);
        let var_clean = covariance(&clean)[(0, 0)];
        let var_dirty = covariance(&dirty)[(0, 0)];
        assert!(var_dirty / var_clean > 100.0);
    }
}
