use fdx_data::{AttrId, Dataset};

use crate::groups::{group_ids, joint_counts};

/// Shannon entropy (nats) of an empirical distribution given by group counts
/// summing to `n`.
pub fn entropy_of_counts(counts: &[usize], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / nf;
            -p * p.ln()
        })
        .sum()
}

/// Empirical entropy `H(attrs)` of the joint distribution of an attribute
/// set (paper §2.1's `H(Y)` / `H(X)` building block).
pub fn entropy(ds: &Dataset, attrs: &[AttrId]) -> f64 {
    let g = group_ids(ds, attrs);
    entropy_of_counts(&g.sizes(), ds.nrows())
}

/// Empirical conditional entropy `H(y | x) = H(x ∪ y) − H(x)`.
pub fn conditional_entropy(ds: &Dataset, y: AttrId, x: &[AttrId]) -> f64 {
    let mut joint: Vec<AttrId> = x.to_vec();
    joint.push(y);
    (entropy(ds, &joint) - entropy(ds, x)).max(0.0)
}

/// Empirical mutual information `I(x; y) = H(y) − H(y | x)` (nats).
pub fn mutual_information(ds: &Dataset, y: AttrId, x: &[AttrId]) -> f64 {
    (entropy(ds, &[y]) - conditional_entropy(ds, y, x)).max(0.0)
}

/// The fraction-of-information score `F(X, Y) = I(X;Y) / H(Y)` from §2.1.
///
/// An FD `X → Y` drives this ratio to 1. The paper's critique: with finite
/// samples and growing `|X|`, the *empirical* ratio reaches 1 spuriously,
/// which is exactly the overfitting the RFI correction targets.
pub fn fraction_of_information(ds: &Dataset, y: AttrId, x: &[AttrId]) -> f64 {
    let hy = entropy(ds, &[y]);
    if hy <= 0.0 {
        return 0.0;
    }
    (mutual_information(ds, y, x) / hy).clamp(0.0, 1.0)
}

/// Exact expected mutual information `E[Î(X;Y)]` under the permutation
/// (hypergeometric) null model of Mandros et al.
///
/// For marginal counts `a_i` (groups of X) and `b_j` (groups of Y) over `n`
/// rows, the expectation sums, for every cell `(i, j)` and every achievable
/// cell count `c`, the plug-in MI contribution weighted by the
/// hypergeometric probability of observing `c`:
///
/// ```text
/// E[Î] = Σ_{i,j} Σ_{c=max(1, a_i+b_j−n)}^{min(a_i,b_j)}
///        (c/n)·ln(c·n / (a_i·b_j)) · Hyp(c; n, a_i, b_j)
/// ```
///
/// The triple loop is `O(|X|·|Y|·n)` in the worst case — this cost is what
/// makes RFI orders of magnitude slower than FDX (paper Tables 5–6), and we
/// keep it exact for that reason.
pub fn expected_mutual_information(a: &[usize], b: &[usize], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let lf = LogFactorial::up_to(n);
    let nf = n as f64;
    let mut total = 0.0;
    for &ai in a {
        if ai == 0 {
            continue;
        }
        for &bj in b {
            if bj == 0 {
                continue;
            }
            let lo = 1.max((ai + bj).saturating_sub(n));
            let hi = ai.min(bj);
            for c in lo..=hi {
                // ln Hyp(c; n, ai, bj) = ln C(bj, c) + ln C(n−bj, ai−c) − ln C(n, ai)
                let log_p =
                    lf.ln_choose(bj, c) + lf.ln_choose(n - bj, ai - c) - lf.ln_choose(n, ai);
                let p = log_p.exp();
                if p <= 0.0 {
                    continue;
                }
                let cf = c as f64;
                let contrib = (cf / nf) * ((cf * nf) / (ai as f64 * bj as f64)).ln();
                total += contrib * p;
            }
        }
    }
    total.max(0.0)
}

/// The reliable fraction of information
/// `F̂₀(X, Y) = (Î(X;Y) − E[Î(X;Y)]) / Ĥ(Y)` (Mandros et al.), the bias-
/// corrected score the RFI baseline optimizes.
pub fn reliable_fraction_of_information(ds: &Dataset, y: AttrId, x: &[AttrId]) -> f64 {
    let hy = entropy(ds, &[y]);
    if hy <= 0.0 {
        return 0.0;
    }
    let gx = group_ids(ds, x);
    let gy = group_ids(ds, &[y]);
    let mi = {
        // `joint_counts` returns a BTreeMap, so this float accumulation
        // visits cells in sorted (gx, gy) order — the MI value is
        // bit-identical across runs and thread counts.
        let joint = joint_counts(&gx, &gy);
        let n = ds.nrows() as f64;
        let ax = gx.sizes();
        let by = gy.sizes();
        let mut mi = 0.0;
        for (&(i, j), &c) in &joint {
            let pij = c as f64 / n;
            let pi = ax[i as usize] as f64 / n;
            let pj = by[j as usize] as f64 / n;
            if pij > 0.0 {
                mi += pij * (pij / (pi * pj)).ln();
            }
        }
        mi.max(0.0)
    };
    let emi = expected_mutual_information(&gx.sizes(), &gy.sizes(), ds.nrows());
    (mi - emi) / hy
}

/// Table of `ln(k!)` for `k ≤ n`, the numerical backbone of the exact
/// hypergeometric sums above.
pub(crate) struct LogFactorial {
    table: Vec<f64>,
}

impl LogFactorial {
    pub(crate) fn up_to(n: usize) -> LogFactorial {
        let mut table = Vec::with_capacity(n + 1);
        table.push(0.0);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).ln();
            table.push(acc);
        }
        LogFactorial { table }
    }

    #[inline]
    pub(crate) fn ln_factorial(&self, k: usize) -> f64 {
        self.table[k]
    }

    /// `ln C(n, k)`; zero for the degenerate cases the hypergeometric sum
    /// never exercises (`k > n`).
    #[inline]
    pub(crate) fn ln_choose(&self, n: usize, k: usize) -> f64 {
        if k > n {
            return f64::NEG_INFINITY;
        }
        self.ln_factorial(n) - self.ln_factorial(k) - self.ln_factorial(n - k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdx_data::Dataset;

    fn fd_dataset() -> Dataset {
        // zip -> city holds exactly; city does not determine zip.
        Dataset::from_string_rows(
            &["zip", "city"],
            &[
                &["60608", "Chicago"],
                &["60611", "Chicago"],
                &["60608", "Chicago"],
                &["53703", "Madison"],
                &["53703", "Madison"],
                &["53706", "Madison"],
            ],
        )
    }

    #[test]
    fn entropy_uniform_and_constant() {
        assert!((entropy_of_counts(&[1, 1, 1, 1], 4) - 4f64.ln()).abs() < 1e-12);
        assert_eq!(entropy_of_counts(&[5], 5), 0.0);
        assert_eq!(entropy_of_counts(&[], 0), 0.0);
    }

    #[test]
    fn entropy_of_dataset_column() {
        let ds = fd_dataset();
        // city: Chicago×3, Madison×3 → ln 2.
        assert!((entropy(&ds, &[1]) - 2f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn fd_gives_zero_conditional_entropy() {
        let ds = fd_dataset();
        assert!(conditional_entropy(&ds, 1, &[0]) < 1e-12);
        assert!(conditional_entropy(&ds, 0, &[1]) > 0.5);
        assert!((fraction_of_information(&ds, 1, &[0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mi_is_symmetric_in_information() {
        let ds = fd_dataset();
        let i_xy = mutual_information(&ds, 1, &[0]);
        let i_yx = mutual_information(&ds, 0, &[1]);
        assert!((i_xy - i_yx).abs() < 1e-9);
    }

    #[test]
    fn emi_zero_for_degenerate_marginals() {
        // If X or Y is constant, MI under any permutation is 0.
        assert!(expected_mutual_information(&[6], &[3, 3], 6).abs() < 1e-12);
        assert!(expected_mutual_information(&[2, 4], &[6], 6).abs() < 1e-12);
    }

    #[test]
    fn emi_matches_bruteforce_tiny() {
        // n = 4, X groups {2,2}, Y groups {2,2}: enumerate all 4! row
        // permutations and average the plug-in MI.
        let x = [0u32, 0, 1, 1];
        let y = [0u32, 0, 1, 1];
        let mut perm = [0usize, 1, 2, 3];
        let mut total = 0.0;
        let mut count = 0;
        permute(&mut perm, 0, &mut |p| {
            let mut joint = std::collections::HashMap::new();
            for (i, &pi) in p.iter().enumerate() {
                *joint.entry((x[i], y[pi])).or_insert(0usize) += 1;
            }
            let n = 4.0;
            let mut mi = 0.0;
            for (&(gx, gy), &c) in &joint {
                let pij = c as f64 / n;
                let px = x.iter().filter(|&&v| v == gx).count() as f64 / n;
                let py = y.iter().filter(|&&v| v == gy).count() as f64 / n;
                mi += pij * (pij / (px * py)).ln();
            }
            total += mi;
            count += 1;
        });
        let brute = total / count as f64;
        let exact = expected_mutual_information(&[2, 2], &[2, 2], 4);
        assert!(
            (brute - exact).abs() < 1e-10,
            "brute {brute} vs exact {exact}"
        );
    }

    fn permute(arr: &mut [usize], k: usize, f: &mut impl FnMut(&[usize])) {
        if k == arr.len() {
            f(arr);
            return;
        }
        for i in k..arr.len() {
            arr.swap(k, i);
            permute(arr, k + 1, f);
            arr.swap(k, i);
        }
    }

    #[test]
    fn rfi_penalizes_spurious_high_cardinality_lhs() {
        // A unique-valued X "determines" everything empirically; plain FoI
        // saturates at 1 while RFI's correction cancels it (§2.1 critique).
        let ds = Dataset::from_string_rows(
            &["key", "y"],
            &[
                &["a", "0"],
                &["b", "1"],
                &["c", "0"],
                &["d", "1"],
                &["e", "0"],
                &["f", "1"],
            ],
        );
        assert!((fraction_of_information(&ds, 1, &[0]) - 1.0).abs() < 1e-12);
        let rfi = reliable_fraction_of_information(&ds, 1, &[0]);
        assert!(rfi < 0.1, "rfi should be near zero, got {rfi}");
    }

    #[test]
    fn rfi_rewards_true_fd_with_support() {
        let ds = fd_dataset();
        let rfi_true = reliable_fraction_of_information(&ds, 1, &[0]);
        let rfi_false = reliable_fraction_of_information(&ds, 0, &[1]);
        assert!(rfi_true > rfi_false);
    }

    #[test]
    fn log_factorial_table() {
        let lf = LogFactorial::up_to(10);
        assert_eq!(lf.ln_factorial(0), 0.0);
        assert!((lf.ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
        assert!((lf.ln_choose(5, 2) - 10f64.ln()).abs() < 1e-12);
        assert_eq!(lf.ln_choose(3, 5), f64::NEG_INFINITY);
    }
}
