//! Property-based tests for the relational substrate.

use fdx_data::{parse_csv, read_csv_str, write_csv_string, Dataset, Fd, FdSet, Schema, Value};
use proptest::prelude::*;

/// Strategy for CSV-safe and CSV-hostile cell strings.
fn cell() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z]{0,6}",
        Just("with,comma".to_string()),
        Just("with\"quote".to_string()),
        Just("multi\nline".to_string()),
        Just(String::new()),
        "-?[0-9]{1,6}",
    ]
}

proptest! {
    #[test]
    fn csv_roundtrip_preserves_values(
        rows in proptest::collection::vec(proptest::collection::vec(cell(), 3), 1..20)
    ) {
        let schema = Schema::from_names(&["a", "b", "c"]);
        let value_rows: Vec<Vec<Value>> = rows
            .iter()
            .map(|r| r.iter().map(|s| Value::infer(s)).collect())
            .collect();
        let ds = Dataset::from_rows(schema, &value_rows);
        let csv = write_csv_string(&ds);
        let back = read_csv_str(&csv).unwrap();
        prop_assert_eq!(back.nrows(), ds.nrows());
        for r in 0..ds.nrows() {
            for c in 0..3 {
                // Round-tripping re-infers types from the rendered string;
                // the rendered forms must agree.
                prop_assert_eq!(
                    back.value(r, c).to_string(),
                    ds.value(r, c).to_string(),
                    "cell ({}, {})", r, c
                );
            }
        }
    }

    #[test]
    fn parse_csv_never_panics(input in ".{0,200}") {
        let _ = parse_csv(&input);
    }

    #[test]
    fn dictionary_codes_are_dense_and_consistent(
        values in proptest::collection::vec(0u8..6, 1..60)
    ) {
        let vals: Vec<Value> = values.iter().map(|&v| Value::Int(v as i64)).collect();
        let col = fdx_data::Column::from_values(&vals);
        // Codes below distinct_count; equal values share codes.
        for (i, v) in vals.iter().enumerate() {
            prop_assert!((col.code(i) as usize) < col.distinct_count());
            for (j, w) in vals.iter().enumerate() {
                prop_assert_eq!(v == w, col.code(i) == col.code(j));
            }
        }
    }

    #[test]
    fn gather_preserves_values(values in proptest::collection::vec(0u8..5, 4..30)) {
        let rows: Vec<Vec<Value>> = values.iter().map(|&v| vec![Value::Int(v as i64)]).collect();
        let ds = Dataset::from_rows(Schema::from_names(&["x"]), &rows);
        let idx: Vec<usize> = (0..ds.nrows()).rev().collect();
        let g = ds.gather(&idx);
        for (new, &old) in idx.iter().enumerate() {
            prop_assert_eq!(g.value(new, 0), ds.value(old, 0));
        }
    }

    #[test]
    fn fdset_minimize_is_idempotent_and_monotone(
        fds in proptest::collection::vec(
            (proptest::collection::btree_set(0usize..4, 1..3), 4usize..7),
            1..6,
        )
    ) {
        let set = FdSet::from_fds(fds.into_iter().map(|(lhs, rhs)| Fd::new(lhs, rhs)));
        let m1 = set.minimize();
        let m2 = m1.minimize();
        prop_assert_eq!(&m1, &m2, "minimize must be idempotent");
        prop_assert!(m1.len() <= set.len());
        // Every surviving FD existed in the input.
        for fd in m1.iter() {
            prop_assert!(set.fds().contains(fd));
        }
    }

    #[test]
    fn edge_set_size_bounded_by_total_lhs(
        fds in proptest::collection::vec(
            (proptest::collection::btree_set(0usize..5, 1..4), 5usize..8),
            1..6,
        )
    ) {
        let set = FdSet::from_fds(fds.into_iter().map(|(lhs, rhs)| Fd::new(lhs, rhs)));
        let total_lhs: usize = set.iter().map(|fd| fd.lhs().len()).sum();
        prop_assert!(set.edge_count() <= total_lhs);
    }
}
