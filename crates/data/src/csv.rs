use std::fmt;

use crate::{Dataset, Schema, Value};

/// Errors from the CSV loader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input had no header row.
    MissingHeader,
    /// A record had a different arity than the header.
    RaggedRecord {
        /// 1-based line number of the offending record.
        line: usize,
        /// Fields found on that line.
        found: usize,
        /// Fields expected from the header.
        expected: usize,
    },
    /// A quoted field was never closed.
    UnterminatedQuote {
        /// 1-based line number where the quote opened.
        line: usize,
    },
    /// A quote appeared in the middle of an unquoted field (RFC 4180 only
    /// allows quotes that wrap the whole field).
    UnexpectedQuote {
        /// 1-based line number of the stray quote.
        line: usize,
    },
    /// Data followed the closing quote of a quoted field.
    TrailingAfterQuote {
        /// 1-based line number of the trailing data.
        line: usize,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "CSV input is empty (no header row)"),
            CsvError::RaggedRecord {
                line,
                found,
                expected,
            } => write!(f, "CSV line {line} has {found} fields, expected {expected}"),
            CsvError::UnterminatedQuote { line } => {
                write!(f, "unterminated quoted field starting on line {line}")
            }
            CsvError::UnexpectedQuote { line } => {
                write!(f, "quote in the middle of an unquoted field on line {line}")
            }
            CsvError::TrailingAfterQuote { line } => {
                write!(f, "data after the closing quote of a field on line {line}")
            }
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses CSV text into records of string fields.
///
/// Supports RFC-4180-style quoting: fields may be wrapped in double quotes,
/// quoted fields may contain commas, newlines, and doubled quotes (`""`).
/// A leading UTF-8 BOM is stripped and CRLF line endings are accepted.
pub fn parse_csv(input: &str) -> Result<Vec<Vec<String>>, CsvError> {
    Ok(parse_csv_records(input)?
        .into_iter()
        .map(|(_, fields)| fields)
        .collect())
}

/// Like [`parse_csv`], but tags each record with the 1-based *physical*
/// line number it starts on. Quoted fields may span lines, so the record
/// index alone misattributes errors on real-world exports; error reporting
/// goes through this.
pub fn parse_csv_records(input: &str) -> Result<Vec<(usize, Vec<String>)>, CsvError> {
    // Real-world exports (Excel, BI tools) prepend a UTF-8 BOM; without
    // stripping it the first header name silently becomes "\u{feff}name".
    let input = input.strip_prefix('\u{feff}').unwrap_or(input);
    let mut records: Vec<(usize, Vec<String>)> = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    // Whether the field being accumulated came from a (now closed) quoted
    // section — any further data before the next separator is malformed.
    let mut field_was_quoted = false;
    let mut line = 1usize;
    let mut record_line = 1usize;
    let mut quote_line = 1usize;
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push('\n');
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' => {
                if field_was_quoted || !field.is_empty() {
                    return Err(CsvError::UnexpectedQuote { line });
                }
                in_quotes = true;
                field_was_quoted = true;
                quote_line = line;
            }
            ',' => {
                record.push(std::mem::take(&mut field));
                field_was_quoted = false;
            }
            '\r' => { /* swallow; \r\n handled by the \n branch */ }
            '\n' => {
                record.push(std::mem::take(&mut field));
                records.push((record_line, std::mem::take(&mut record)));
                field_was_quoted = false;
                line += 1;
                record_line = line;
            }
            _ => {
                if field_was_quoted {
                    return Err(CsvError::TrailingAfterQuote { line });
                }
                field.push(c);
            }
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote { line: quote_line });
    }
    if !field.is_empty() || !record.is_empty() || field_was_quoted {
        record.push(field);
        records.push((record_line, record));
    }
    if !any {
        return Err(CsvError::MissingHeader);
    }
    Ok(records)
}

/// Reads a CSV string (with header) into a [`Dataset`], inferring value
/// types per cell via [`Value::infer`]. Ragged records are reported with
/// the physical line number they start on.
pub fn read_csv_str(input: &str) -> Result<Dataset, CsvError> {
    let records = parse_csv_records(input)?;
    let mut iter = records.into_iter();
    let (_, header) = iter.next().ok_or(CsvError::MissingHeader)?;
    let names: Vec<&str> = header.iter().map(String::as_str).collect();
    let schema = Schema::from_names(&names);
    let expected = schema.len();
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for (line, rec) in iter {
        if rec.len() != expected {
            return Err(CsvError::RaggedRecord {
                line,
                found: rec.len(),
                expected,
            });
        }
        rows.push(rec.iter().map(|s| Value::infer(s)).collect());
    }
    Ok(Dataset::from_rows(schema, &rows))
}

/// Serializes a dataset back to CSV (header + rows), quoting fields that
/// contain commas, quotes, or newlines.
pub fn write_csv_string(ds: &Dataset) -> String {
    fn escape(s: &str) -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut out = String::new();
    let names: Vec<String> = (0..ds.ncols())
        .map(|a| escape(ds.schema().name(a)))
        .collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for r in 0..ds.nrows() {
        let fields: Vec<String> = (0..ds.ncols())
            .map(|a| escape(&ds.value(r, a).to_string()))
            .collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple() {
        let recs = parse_csv("a,b\n1,2\n3,4\n").unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[1], vec!["1", "2"]);
    }

    #[test]
    fn parses_quotes_and_embedded_commas() {
        let recs = parse_csv("name,addr\n\"Doe, Jane\",\"123 \"\"Main\"\" St\"\n").unwrap();
        assert_eq!(recs[1][0], "Doe, Jane");
        assert_eq!(recs[1][1], "123 \"Main\" St");
    }

    #[test]
    fn parses_quoted_newline() {
        let recs = parse_csv("a\n\"line1\nline2\"\n").unwrap();
        assert_eq!(recs[1][0], "line1\nline2");
    }

    #[test]
    fn handles_crlf_and_missing_trailing_newline() {
        let recs = parse_csv("a,b\r\n1,2").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1], vec!["1", "2"]);
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert_eq!(
            parse_csv("a\n\"oops\n"),
            Err(CsvError::UnterminatedQuote { line: 2 })
        );
    }

    #[test]
    fn quote_mid_field_is_error() {
        assert_eq!(
            parse_csv("a,b\nab\"cd\",2\n"),
            Err(CsvError::UnexpectedQuote { line: 2 })
        );
        // A second quoted section in one field is equally malformed.
        assert_eq!(
            parse_csv("a\n\"x\"\"y\"\"z\"trailing\"\n"),
            Err(CsvError::TrailingAfterQuote { line: 2 })
        );
    }

    #[test]
    fn data_after_closing_quote_is_error() {
        assert_eq!(
            parse_csv("a,b\n\"ab\"x,2\n"),
            Err(CsvError::TrailingAfterQuote { line: 2 })
        );
    }

    #[test]
    fn quoted_field_followed_by_separator_is_fine() {
        let recs = parse_csv("a,b\n\"x\",\"y\"\r\n\"\",z\n").unwrap();
        assert_eq!(recs[1], vec!["x", "y"]);
        assert_eq!(recs[2], vec!["", "z"]);
    }

    #[test]
    fn lone_quoted_empty_field_is_one_record() {
        let recs = parse_csv("\"\"").unwrap();
        assert_eq!(recs, vec![vec![String::new()]]);
    }

    #[test]
    fn read_into_dataset_with_inference() {
        let ds = read_csv_str("zip,city\n60608,Chicago\n,Madison\n").unwrap();
        assert_eq!(ds.nrows(), 2);
        assert_eq!(ds.value(0, 0), &Value::Int(60608));
        assert!(ds.value(1, 0).is_null());
        assert_eq!(ds.value(1, 1), &Value::text("Madison"));
    }

    #[test]
    fn ragged_record_reports_line() {
        let err = read_csv_str("a,b\n1\n").unwrap_err();
        assert_eq!(
            err,
            CsvError::RaggedRecord {
                line: 2,
                found: 1,
                expected: 2
            }
        );
    }

    #[test]
    fn utf8_bom_is_stripped() {
        let recs = parse_csv("\u{feff}a,b\n1,2\n").unwrap();
        assert_eq!(recs[0], vec!["a", "b"], "BOM must not stick to the header");
        let ds = read_csv_str("\u{feff}zip,city\n60608,Chicago\n").unwrap();
        assert_eq!(ds.schema().name(0), "zip");
        assert_eq!(ds.value(0, 0), &Value::Int(60608));
        // A BOM *inside* the document is data, not a marker.
        let recs = parse_csv("a\n\u{feff}x\n").unwrap();
        assert_eq!(recs[1][0], "\u{feff}x");
    }

    #[test]
    fn crlf_throughout_reads_into_dataset() {
        let ds = read_csv_str("zip,city\r\n60608,Chicago\r\n53703,Madison\r\n").unwrap();
        assert_eq!(ds.nrows(), 2);
        assert_eq!(ds.value(1, 1), &Value::text("Madison"));
        // CR inside a quoted field is preserved, not treated as an ending.
        let recs = parse_csv("a\r\n\"x\ry\"\r\n").unwrap();
        assert_eq!(recs[1][0], "x\ry");
    }

    #[test]
    fn ragged_record_reports_physical_line_numbers() {
        // A quoted field spanning three physical lines shifts every later
        // record: the record *index* would say 3, the file says 5.
        let err = read_csv_str("a,b\n\"l2\nl3\nl4\",x\nonly-one\n").unwrap_err();
        assert_eq!(
            err,
            CsvError::RaggedRecord {
                line: 5,
                found: 1,
                expected: 2
            }
        );
        // CRLF input reports the same physical line as LF input.
        let err = read_csv_str("a,b\r\n1,2\r\n1\r\n").unwrap_err();
        assert_eq!(
            err,
            CsvError::RaggedRecord {
                line: 3,
                found: 1,
                expected: 2
            }
        );
    }

    #[test]
    fn parse_csv_records_tags_start_lines() {
        let recs = parse_csv_records("a,b\n\"x\ny\",2\n3,4\n").unwrap();
        let lines: Vec<usize> = recs.iter().map(|(l, _)| *l).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn roundtrip() {
        let ds = Dataset::from_string_rows(&["a", "b"], &[&["x,y", "1"], &["plain", "2"]]);
        let csv = write_csv_string(&ds);
        let back = read_csv_str(&csv).unwrap();
        assert_eq!(back.value(0, 0), &Value::text("x,y"));
        assert_eq!(back.value(1, 1), &Value::Int(2));
    }

    #[test]
    fn empty_input_is_missing_header() {
        assert_eq!(parse_csv(""), Err(CsvError::MissingHeader));
        assert!(read_csv_str("").is_err());
    }
}
