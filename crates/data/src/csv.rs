use std::fmt;

use crate::{Dataset, Schema, Value};

/// Hard cap on the byte length of a single quoted field. An unterminated
/// quote turns the rest of the file into "one field"; without a cap a
/// malformed multi-GB export makes the parser buffer the whole remainder
/// before it can report the error. 1 MiB is far beyond any legitimate cell.
pub const MAX_QUOTED_FIELD_BYTES: usize = 1 << 20;

/// Bytes of raw record text retained for quarantine reporting per bad row.
const RAW_CAP: usize = 256;

/// Errors from the CSV loader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input had no header row.
    MissingHeader,
    /// A record had a different arity than the header.
    RaggedRecord {
        /// 1-based line number of the offending record.
        line: usize,
        /// Fields found on that line.
        found: usize,
        /// Fields expected from the header.
        expected: usize,
    },
    /// A quoted field was never closed.
    UnterminatedQuote {
        /// 1-based line number where the quote opened.
        line: usize,
    },
    /// A quote appeared in the middle of an unquoted field (RFC 4180 only
    /// allows quotes that wrap the whole field).
    UnexpectedQuote {
        /// 1-based line number of the stray quote.
        line: usize,
    },
    /// Data followed the closing quote of a quoted field.
    TrailingAfterQuote {
        /// 1-based line number of the trailing data.
        line: usize,
    },
    /// An embedded NUL byte — never legitimate in textual CSV, and a
    /// classic symptom of binary data or a torn write.
    NulByte {
        /// 1-based line number of the NUL.
        line: usize,
        /// Absolute byte offset of the NUL in the input.
        byte_offset: u64,
    },
    /// A quoted field grew past [`MAX_QUOTED_FIELD_BYTES`] — almost always
    /// an unterminated quote swallowing the rest of the file.
    QuoteTooLong {
        /// 1-based line number where the quote opened.
        line: usize,
        /// Absolute byte offset of the opening quote.
        byte_offset: u64,
        /// The cap that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "CSV input is empty (no header row)"),
            CsvError::RaggedRecord {
                line,
                found,
                expected,
            } => write!(f, "CSV line {line} has {found} fields, expected {expected}"),
            CsvError::UnterminatedQuote { line } => {
                write!(f, "unterminated quoted field starting on line {line}")
            }
            CsvError::UnexpectedQuote { line } => {
                write!(f, "quote in the middle of an unquoted field on line {line}")
            }
            CsvError::TrailingAfterQuote { line } => {
                write!(f, "data after the closing quote of a field on line {line}")
            }
            CsvError::NulByte { line, byte_offset } => {
                write!(
                    f,
                    "embedded NUL byte on line {line} (byte offset {byte_offset})"
                )
            }
            CsvError::QuoteTooLong {
                line,
                byte_offset,
                limit,
            } => write!(
                f,
                "quoted field opened on line {line} (byte offset {byte_offset}) \
                 exceeds {limit} bytes — likely an unterminated quote"
            ),
        }
    }
}

impl std::error::Error for CsvError {}

/// One event from the incremental CSV machine: either a complete record or
/// a malformed row (after which the machine resynchronizes to the next
/// physical line on its own).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvEvent {
    /// A complete record.
    Record {
        /// 1-based physical line the record starts on.
        line: usize,
        /// Absolute byte offset the record starts at.
        byte_offset: u64,
        /// The record's fields.
        fields: Vec<String>,
    },
    /// A malformed row. The machine has already discarded the partial
    /// record and will skip to the next physical line before resuming.
    BadRow {
        /// 1-based physical line of the offending row.
        line: usize,
        /// Absolute byte offset of the offending character (for
        /// [`CsvError::UnterminatedQuote`]/[`CsvError::QuoteTooLong`], of
        /// the opening quote).
        byte_offset: u64,
        /// What was wrong.
        error: CsvError,
        /// Up to 256 bytes of the raw record text, for quarantine files.
        raw: String,
    },
}

/// Incremental RFC-4180 tokenizer: feed it text in arbitrary chunks (split
/// anywhere on a char boundary) via [`CsvMachine::push`], then call
/// [`CsvMachine::finish`]. Both the whole-string [`parse_csv_records`] and
/// the chunked out-of-core reader in [`crate::ingest`] drive this one
/// machine, so their parsing semantics cannot drift apart.
///
/// Supports RFC-4180-style quoting (fields wrapped in double quotes may
/// contain commas, newlines, and doubled quotes), strips a leading UTF-8
/// BOM, accepts CRLF line endings, rejects embedded NUL bytes, and caps
/// quoted-field growth at a configurable limit
/// (default [`MAX_QUOTED_FIELD_BYTES`]).
///
/// Unlike the historical whole-string parser, the machine does not stop at
/// the first malformed row: it emits a [`CsvEvent::BadRow`] and resumes at
/// the next physical line, which is what row-level quarantine needs.
/// Abort-on-first-error callers simply stop consuming events.
#[derive(Debug)]
pub struct CsvMachine {
    record: Vec<String>,
    field: String,
    raw: String,
    in_quotes: bool,
    /// Saw a `"` inside a quoted section; the next char decides whether it
    /// was an escaped quote (`""`) or the closing quote. Carrying this as
    /// state (instead of peeking) lets chunk boundaries fall between the
    /// two quotes.
    pending_quote: bool,
    field_was_quoted: bool,
    /// Resynchronizing after a bad row: discard input until the next `\n`.
    skipping: bool,
    line: usize,
    record_line: usize,
    record_offset: u64,
    quote_line: usize,
    quote_offset: u64,
    /// Absolute byte offset of the next char to be consumed.
    offset: u64,
    at_start: bool,
    any: bool,
    max_quoted: usize,
}

impl Default for CsvMachine {
    fn default() -> Self {
        CsvMachine::new()
    }
}

impl CsvMachine {
    /// A machine with the default quoted-field cap.
    pub fn new() -> CsvMachine {
        CsvMachine::with_max_quoted(MAX_QUOTED_FIELD_BYTES)
    }

    /// A machine with a custom quoted-field byte cap (tests use tiny caps).
    pub fn with_max_quoted(max_quoted: usize) -> CsvMachine {
        CsvMachine {
            record: Vec::new(),
            field: String::new(),
            raw: String::new(),
            in_quotes: false,
            pending_quote: false,
            field_was_quoted: false,
            skipping: false,
            line: 1,
            record_line: 1,
            record_offset: 0,
            quote_line: 1,
            quote_offset: 0,
            offset: 0,
            at_start: true,
            any: false,
            max_quoted,
        }
    }

    fn emit_bad(&mut self, byte_offset: u64, error: CsvError, sink: &mut impl FnMut(CsvEvent)) {
        sink(CsvEvent::BadRow {
            line: self.record_line,
            byte_offset,
            error,
            raw: std::mem::take(&mut self.raw),
        });
        self.record.clear();
        self.field.clear();
        self.in_quotes = false;
        self.pending_quote = false;
        self.field_was_quoted = false;
        self.skipping = true;
    }

    fn end_record(&mut self, sink: &mut impl FnMut(CsvEvent)) {
        self.record.push(std::mem::take(&mut self.field));
        sink(CsvEvent::Record {
            line: self.record_line,
            byte_offset: self.record_offset,
            fields: std::mem::take(&mut self.record),
        });
        self.raw.clear();
        self.field_was_quoted = false;
    }

    /// Feeds a chunk of text. Chunks may split anywhere (even between the
    /// two quotes of an escaped `""`); only UTF-8 char boundaries matter,
    /// and the caller owns byte-level carry (see `ingest`).
    pub fn push(&mut self, text: &str, sink: &mut impl FnMut(CsvEvent)) {
        for c in text.chars() {
            let len = c.len_utf8() as u64;
            if self.at_start {
                self.at_start = false;
                if c == '\u{feff}' {
                    // Real-world exports (Excel, BI tools) prepend a BOM;
                    // without stripping it the first header name silently
                    // becomes "\u{feff}name". It still counts toward byte
                    // offsets so they match the file on disk.
                    self.offset += len;
                    self.record_offset = self.offset;
                    continue;
                }
            }
            self.any = true;

            if self.skipping {
                if c == '\n' {
                    self.line += 1;
                    self.record_line = self.line;
                    self.record_offset = self.offset + len;
                    self.skipping = false;
                }
                self.offset += len;
                continue;
            }

            if self.raw.len() < RAW_CAP {
                self.raw.push(c);
            }

            if c == '\0' {
                let at = self.offset;
                self.emit_bad(
                    at,
                    CsvError::NulByte {
                        line: self.line,
                        byte_offset: at,
                    },
                    sink,
                );
                self.offset += len;
                continue;
            }

            if self.pending_quote {
                self.pending_quote = false;
                if c == '"' {
                    self.field.push('"');
                    self.offset += len;
                    self.check_quote_cap(sink);
                    continue;
                }
                // The pending quote closed the section; reprocess `c` in
                // the unquoted state below.
                self.in_quotes = false;
            }

            if self.in_quotes {
                match c {
                    '"' => self.pending_quote = true,
                    '\n' => {
                        self.line += 1;
                        self.field.push('\n');
                    }
                    _ => self.field.push(c),
                }
                self.offset += len;
                self.check_quote_cap(sink);
                continue;
            }

            match c {
                '"' => {
                    if self.field_was_quoted || !self.field.is_empty() {
                        let line = self.line;
                        let at = self.offset;
                        self.emit_bad(at, CsvError::UnexpectedQuote { line }, sink);
                    } else {
                        self.in_quotes = true;
                        self.field_was_quoted = true;
                        self.quote_line = self.line;
                        self.quote_offset = self.offset;
                    }
                }
                ',' => {
                    self.record.push(std::mem::take(&mut self.field));
                    self.field_was_quoted = false;
                }
                '\r' => { /* swallow; \r\n handled by the \n branch */ }
                '\n' => {
                    self.end_record(sink);
                    self.line += 1;
                    self.record_line = self.line;
                    self.record_offset = self.offset + len;
                }
                _ => {
                    if self.field_was_quoted {
                        let line = self.line;
                        let at = self.offset;
                        self.emit_bad(at, CsvError::TrailingAfterQuote { line }, sink);
                    } else {
                        self.field.push(c);
                    }
                }
            }
            self.offset += len;
        }
    }

    fn check_quote_cap(&mut self, sink: &mut impl FnMut(CsvEvent)) {
        if self.in_quotes && self.field.len() > self.max_quoted {
            let err = CsvError::QuoteTooLong {
                line: self.quote_line,
                byte_offset: self.quote_offset,
                limit: self.max_quoted,
            };
            let at = self.quote_offset;
            self.emit_bad(at, err, sink);
        }
    }

    /// Flushes the trailing record (inputs without a final newline) and
    /// reports an unterminated quote. Returns `true` iff any non-BOM char
    /// was ever consumed — `false` means the input was empty (no header).
    pub fn finish(&mut self, sink: &mut impl FnMut(CsvEvent)) -> bool {
        if self.pending_quote {
            // A `"` at EOF closes its quoted section.
            self.pending_quote = false;
            self.in_quotes = false;
        }
        if self.skipping {
            // The bad row was already reported; the remainder is discarded.
        } else if self.in_quotes {
            let err = CsvError::UnterminatedQuote {
                line: self.quote_line,
            };
            let at = self.quote_offset;
            self.emit_bad(at, err, sink);
        } else if !self.field.is_empty() || !self.record.is_empty() || self.field_was_quoted {
            self.end_record(sink);
        }
        self.any
    }

    /// Total bytes consumed so far.
    pub fn bytes_consumed(&self) -> u64 {
        self.offset
    }
}

/// Parses CSV text into records of string fields.
///
/// Supports RFC-4180-style quoting: fields may be wrapped in double quotes,
/// quoted fields may contain commas, newlines, and doubled quotes (`""`).
/// A leading UTF-8 BOM is stripped and CRLF line endings are accepted.
/// Embedded NUL bytes and quoted fields over [`MAX_QUOTED_FIELD_BYTES`]
/// are rejected with typed errors carrying the byte offset.
pub fn parse_csv(input: &str) -> Result<Vec<Vec<String>>, CsvError> {
    Ok(parse_csv_records(input)?
        .into_iter()
        .map(|(_, fields)| fields)
        .collect())
}

/// Like [`parse_csv`], but tags each record with the 1-based *physical*
/// line number it starts on. Quoted fields may span lines, so the record
/// index alone misattributes errors on real-world exports; error reporting
/// goes through this. Fails on the first malformed row (row-level
/// skip/quarantine policies live in [`crate::ingest`]).
pub fn parse_csv_records(input: &str) -> Result<Vec<(usize, Vec<String>)>, CsvError> {
    let mut records: Vec<(usize, Vec<String>)> = Vec::new();
    let mut first_err: Option<CsvError> = None;
    let mut sink = |ev: CsvEvent| match ev {
        CsvEvent::Record { line, fields, .. } => records.push((line, fields)),
        CsvEvent::BadRow { error, .. } => {
            if first_err.is_none() {
                first_err = Some(error);
            }
        }
    };
    let mut machine = CsvMachine::new();
    machine.push(input, &mut sink);
    let any = machine.finish(&mut sink);
    if let Some(e) = first_err {
        return Err(e);
    }
    if !any {
        return Err(CsvError::MissingHeader);
    }
    Ok(records)
}

/// Reads a CSV string (with header) into a [`Dataset`], inferring value
/// types per cell via [`Value::infer`]. Ragged records are reported with
/// the physical line number they start on.
pub fn read_csv_str(input: &str) -> Result<Dataset, CsvError> {
    let records = parse_csv_records(input)?;
    let mut iter = records.into_iter();
    let (_, header) = iter.next().ok_or(CsvError::MissingHeader)?;
    let names: Vec<&str> = header.iter().map(String::as_str).collect();
    let schema = Schema::from_names(&names);
    let expected = schema.len();
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for (line, rec) in iter {
        if rec.len() != expected {
            return Err(CsvError::RaggedRecord {
                line,
                found: rec.len(),
                expected,
            });
        }
        rows.push(rec.iter().map(|s| Value::infer(s)).collect());
    }
    Ok(Dataset::from_rows(schema, &rows))
}

/// Serializes a dataset back to CSV (header + rows), quoting fields that
/// contain commas, quotes, or newlines.
pub fn write_csv_string(ds: &Dataset) -> String {
    fn escape(s: &str) -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut out = String::new();
    let names: Vec<String> = (0..ds.ncols())
        .map(|a| escape(ds.schema().name(a)))
        .collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for r in 0..ds.nrows() {
        let fields: Vec<String> = (0..ds.ncols())
            .map(|a| escape(&ds.value(r, a).to_string()))
            .collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple() {
        let recs = parse_csv("a,b\n1,2\n3,4\n").unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[1], vec!["1", "2"]);
    }

    #[test]
    fn parses_quotes_and_embedded_commas() {
        let recs = parse_csv("name,addr\n\"Doe, Jane\",\"123 \"\"Main\"\" St\"\n").unwrap();
        assert_eq!(recs[1][0], "Doe, Jane");
        assert_eq!(recs[1][1], "123 \"Main\" St");
    }

    #[test]
    fn parses_quoted_newline() {
        let recs = parse_csv("a\n\"line1\nline2\"\n").unwrap();
        assert_eq!(recs[1][0], "line1\nline2");
    }

    #[test]
    fn handles_crlf_and_missing_trailing_newline() {
        let recs = parse_csv("a,b\r\n1,2").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1], vec!["1", "2"]);
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert_eq!(
            parse_csv("a\n\"oops\n"),
            Err(CsvError::UnterminatedQuote { line: 2 })
        );
    }

    #[test]
    fn quote_mid_field_is_error() {
        assert_eq!(
            parse_csv("a,b\nab\"cd\",2\n"),
            Err(CsvError::UnexpectedQuote { line: 2 })
        );
        // A second quoted section in one field is equally malformed.
        assert_eq!(
            parse_csv("a\n\"x\"\"y\"\"z\"trailing\"\n"),
            Err(CsvError::TrailingAfterQuote { line: 2 })
        );
    }

    #[test]
    fn data_after_closing_quote_is_error() {
        assert_eq!(
            parse_csv("a,b\n\"ab\"x,2\n"),
            Err(CsvError::TrailingAfterQuote { line: 2 })
        );
    }

    #[test]
    fn quoted_field_followed_by_separator_is_fine() {
        let recs = parse_csv("a,b\n\"x\",\"y\"\r\n\"\",z\n").unwrap();
        assert_eq!(recs[1], vec!["x", "y"]);
        assert_eq!(recs[2], vec!["", "z"]);
    }

    #[test]
    fn lone_quoted_empty_field_is_one_record() {
        let recs = parse_csv("\"\"").unwrap();
        assert_eq!(recs, vec![vec![String::new()]]);
    }

    #[test]
    fn read_into_dataset_with_inference() {
        let ds = read_csv_str("zip,city\n60608,Chicago\n,Madison\n").unwrap();
        assert_eq!(ds.nrows(), 2);
        assert_eq!(ds.value(0, 0), &Value::Int(60608));
        assert!(ds.value(1, 0).is_null());
        assert_eq!(ds.value(1, 1), &Value::text("Madison"));
    }

    #[test]
    fn ragged_record_reports_line() {
        let err = read_csv_str("a,b\n1\n").unwrap_err();
        assert_eq!(
            err,
            CsvError::RaggedRecord {
                line: 2,
                found: 1,
                expected: 2
            }
        );
    }

    #[test]
    fn utf8_bom_is_stripped() {
        let recs = parse_csv("\u{feff}a,b\n1,2\n").unwrap();
        assert_eq!(recs[0], vec!["a", "b"], "BOM must not stick to the header");
        let ds = read_csv_str("\u{feff}zip,city\n60608,Chicago\n").unwrap();
        assert_eq!(ds.schema().name(0), "zip");
        assert_eq!(ds.value(0, 0), &Value::Int(60608));
        // A BOM *inside* the document is data, not a marker.
        let recs = parse_csv("a\n\u{feff}x\n").unwrap();
        assert_eq!(recs[1][0], "\u{feff}x");
    }

    #[test]
    fn crlf_throughout_reads_into_dataset() {
        let ds = read_csv_str("zip,city\r\n60608,Chicago\r\n53703,Madison\r\n").unwrap();
        assert_eq!(ds.nrows(), 2);
        assert_eq!(ds.value(1, 1), &Value::text("Madison"));
        // CR inside a quoted field is preserved, not treated as an ending.
        let recs = parse_csv("a\r\n\"x\ry\"\r\n").unwrap();
        assert_eq!(recs[1][0], "x\ry");
    }

    #[test]
    fn ragged_record_reports_physical_line_numbers() {
        // A quoted field spanning three physical lines shifts every later
        // record: the record *index* would say 3, the file says 5.
        let err = read_csv_str("a,b\n\"l2\nl3\nl4\",x\nonly-one\n").unwrap_err();
        assert_eq!(
            err,
            CsvError::RaggedRecord {
                line: 5,
                found: 1,
                expected: 2
            }
        );
        // CRLF input reports the same physical line as LF input.
        let err = read_csv_str("a,b\r\n1,2\r\n1\r\n").unwrap_err();
        assert_eq!(
            err,
            CsvError::RaggedRecord {
                line: 3,
                found: 1,
                expected: 2
            }
        );
    }

    #[test]
    fn parse_csv_records_tags_start_lines() {
        let recs = parse_csv_records("a,b\n\"x\ny\",2\n3,4\n").unwrap();
        let lines: Vec<usize> = recs.iter().map(|(l, _)| *l).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn roundtrip() {
        let ds = Dataset::from_string_rows(&["a", "b"], &[&["x,y", "1"], &["plain", "2"]]);
        let csv = write_csv_string(&ds);
        let back = read_csv_str(&csv).unwrap();
        assert_eq!(back.value(0, 0), &Value::text("x,y"));
        assert_eq!(back.value(1, 1), &Value::Int(2));
    }

    #[test]
    fn empty_input_is_missing_header() {
        assert_eq!(parse_csv(""), Err(CsvError::MissingHeader));
        assert!(read_csv_str("").is_err());
    }

    #[test]
    fn nul_byte_is_rejected_with_offset() {
        let err = parse_csv("a,b\n1,\u{0}2\n").unwrap_err();
        assert_eq!(
            err,
            CsvError::NulByte {
                line: 2,
                byte_offset: 6
            }
        );
        // Inside quotes a NUL is equally malformed.
        let err = parse_csv("a\n\"x\u{0}y\"\n").unwrap_err();
        assert!(matches!(err, CsvError::NulByte { line: 2, .. }), "{err}");
    }

    #[test]
    fn quoted_field_growth_is_capped() {
        let mut bad = String::from("a,b\n\"");
        bad.push_str(&"x".repeat(MAX_QUOTED_FIELD_BYTES + 8));
        // No closing quote: historically this buffered the whole tail.
        let err = parse_csv(&bad).unwrap_err();
        assert_eq!(
            err,
            CsvError::QuoteTooLong {
                line: 2,
                byte_offset: 4,
                limit: MAX_QUOTED_FIELD_BYTES
            }
        );
    }

    #[test]
    fn machine_is_chunk_split_invariant() {
        // Every split point of a tricky document must yield the same events
        // as the whole-string parse — including a split between the two
        // quotes of an escaped "".
        let doc = "\u{feff}a,b\r\n\"x\"\"y\",2\n\"m\nn\",4\nbad\"q,5\n6,7\n";
        let collect = |chunks: &[&str]| {
            let mut events = Vec::new();
            let mut machine = CsvMachine::new();
            let mut sink = |ev: CsvEvent| events.push(ev);
            for c in chunks {
                machine.push(c, &mut sink);
            }
            machine.finish(&mut sink);
            events
        };
        let whole = collect(&[doc]);
        // The quoted field on line 3 spans two physical lines, so the bad
        // row lands on line 5.
        assert!(whole
            .iter()
            .any(|e| matches!(e, CsvEvent::BadRow { line: 5, .. })));
        for split in 1..doc.len() {
            if !doc.is_char_boundary(split) {
                continue;
            }
            let (a, b) = doc.split_at(split);
            assert_eq!(collect(&[a, b]), whole, "split at byte {split}");
        }
    }

    #[test]
    fn machine_resumes_after_bad_rows() {
        // Three malformed rows, three clean ones; the machine must emit all
        // six events and keep line numbers straight.
        let doc = "h1,h2\nok,1\nbad\"q,2\n\"trail\"x,3\nok,4\nnul\u{0},5\nok,6\n";
        let mut records = Vec::new();
        let mut bad = Vec::new();
        let mut machine = CsvMachine::new();
        let mut sink = |ev: CsvEvent| match ev {
            CsvEvent::Record { line, fields, .. } => records.push((line, fields)),
            CsvEvent::BadRow { line, error, .. } => bad.push((line, error)),
        };
        machine.push(doc, &mut sink);
        machine.finish(&mut sink);
        let lines: Vec<usize> = records.iter().map(|(l, _)| *l).collect();
        assert_eq!(lines, vec![1, 2, 5, 7]);
        assert_eq!(bad.len(), 3, "{bad:?}");
        assert!(matches!(bad[0], (3, CsvError::UnexpectedQuote { .. })));
        assert!(matches!(bad[1], (4, CsvError::TrailingAfterQuote { .. })));
        assert!(matches!(bad[2], (6, CsvError::NulByte { .. })));
    }

    #[test]
    fn machine_reports_record_byte_offsets() {
        let mut offsets = Vec::new();
        let mut machine = CsvMachine::new();
        let mut sink = |ev: CsvEvent| {
            if let CsvEvent::Record { byte_offset, .. } = ev {
                offsets.push(byte_offset);
            }
        };
        machine.push("ab,c\n12,3\n45,6\n", &mut sink);
        machine.finish(&mut sink);
        assert_eq!(offsets, vec![0, 5, 10]);
        assert_eq!(machine.bytes_consumed(), 15);
    }
}
