//! Relational data substrate for the FDX reproduction.
//!
//! FD discovery (paper §3.1) operates on a relational instance whose cells
//! may be categorical, numeric, textual, or missing. This crate provides:
//!
//! * [`Value`] — a dynamically typed cell value with a null variant,
//! * [`Schema`] / [`Attribute`] — named, typed attribute lists,
//! * [`Column`] — dictionary-encoded column storage (every distinct value is
//!   interned once; rows store compact `u32` codes), which makes the
//!   equality tests at the core of FD semantics O(1) integer compares,
//! * [`Dataset`] — the relation itself, with builders, sorting, projection
//!   and per-column statistics,
//! * [`Fd`] / [`FdSet`] — the functional-dependency vocabulary shared by the
//!   FDX core, every baseline, and the evaluation harness,
//! * a small CSV reader/writer with type inference for loading external
//!   instances.
//!
//! # Example
//!
//! ```
//! use fdx_data::{Dataset, Value};
//!
//! let ds = Dataset::from_string_rows(
//!     &["zip", "city"],
//!     &[
//!         &["60608", "Chicago"],
//!         &["60611", "Chicago"],
//!         &["60608", "Chicago"],
//!     ],
//! );
//! assert_eq!(ds.nrows(), 3);
//! assert_eq!(ds.column(0).distinct_count(), 2);
//! assert_eq!(ds.value(1, 1), &Value::text("Chicago"));
//! ```

mod column;
mod csv;
mod dataset;
mod fd;
mod schema;
mod value;

pub use column::{Column, NULL_CODE};
pub use csv::{parse_csv, parse_csv_records, read_csv_str, write_csv_string, CsvError};
pub use dataset::Dataset;
pub use fd::{Fd, FdSet};
pub use schema::{AttrId, AttrType, Attribute, Schema};
pub use value::{OrderedF64, Value};
