//! Relational data substrate for the FDX reproduction.
//!
//! FD discovery (paper §3.1) operates on a relational instance whose cells
//! may be categorical, numeric, textual, or missing. This crate provides:
//!
//! * [`Value`] — a dynamically typed cell value with a null variant,
//! * [`Schema`] / [`Attribute`] — named, typed attribute lists,
//! * [`Column`] — dictionary-encoded column storage (every distinct value is
//!   interned once; rows store compact `u32` codes), which makes the
//!   equality tests at the core of FD semantics O(1) integer compares,
//! * [`Dataset`] — the relation itself, with builders, sorting, projection
//!   and per-column statistics,
//! * [`Fd`] / [`FdSet`] — the functional-dependency vocabulary shared by the
//!   FDX core, every baseline, and the evaluation harness,
//! * a small CSV reader/writer with type inference for loading external
//!   instances, plus an incremental [`CsvMachine`] parser,
//! * [`ingest`] — resilient out-of-core ingestion: chunked reading with
//!   per-chunk dictionary pages, row quarantine, memory budgets, and
//!   deterministic fault injection (bit-identical to [`read_csv_str`] on
//!   clean data),
//! * [`snapshot`] — checksummed, versioned snapshot records and a canonical
//!   bit-exact dataset codec, the persistence substrate for crash-safe
//!   serving sessions.
//!
//! # Example
//!
//! ```
//! use fdx_data::{Dataset, Value};
//!
//! let ds = Dataset::from_string_rows(
//!     &["zip", "city"],
//!     &[
//!         &["60608", "Chicago"],
//!         &["60611", "Chicago"],
//!         &["60608", "Chicago"],
//!     ],
//! );
//! assert_eq!(ds.nrows(), 3);
//! assert_eq!(ds.column(0).distinct_count(), 2);
//! assert_eq!(ds.value(1, 1), &Value::text("Chicago"));
//! ```

mod column;
mod csv;
mod dataset;
mod fd;
pub mod ingest;
mod schema;
pub mod snapshot;
mod value;

pub use column::{Column, NULL_CODE};
pub use csv::{
    parse_csv, parse_csv_records, read_csv_str, write_csv_string, CsvError, CsvEvent, CsvMachine,
    MAX_QUOTED_FIELD_BYTES,
};
pub use dataset::Dataset;
pub use fd::{Fd, FdSet};
pub use ingest::{
    ingest_csv_bytes, ingest_csv_file, BadRowPolicy, IngestConfig, IngestError, IngestHealth,
    Ingested, MemoryMeter, QuarantinedRow,
};
pub use schema::{AttrId, AttrType, Attribute, Schema};
pub use snapshot::{
    dataset_content_hash, decode_dataset, decode_record, encode_dataset, encode_record,
    SnapshotError, SnapshotRecord, KIND_DATASET, KIND_RESULT,
};
pub use value::{OrderedF64, Value};
