use std::collections::BTreeSet;
use std::fmt;

use crate::{AttrId, Schema};

/// A functional dependency `X → Y`: the attribute set `lhs` (determinant)
/// uniquely determines the attribute `rhs` (paper §2.1).
///
/// The determinant is kept sorted and deduplicated so that FDs compare and
/// hash structurally.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd {
    lhs: Vec<AttrId>,
    rhs: AttrId,
}

impl Fd {
    /// Creates a normalized FD. Duplicate determinant attributes are removed
    /// and the determinant is sorted.
    ///
    /// # Panics
    ///
    /// Panics if the FD is trivial (`rhs ∈ lhs`) or the determinant is empty;
    /// discovery methods should never emit either.
    pub fn new(lhs: impl IntoIterator<Item = AttrId>, rhs: AttrId) -> Fd {
        let set: BTreeSet<AttrId> = lhs.into_iter().collect();
        assert!(!set.is_empty(), "FD determinant must be non-empty");
        assert!(!set.contains(&rhs), "trivial FD: rhs {rhs} appears in lhs");
        Fd {
            lhs: set.into_iter().collect(),
            rhs,
        }
    }

    /// The determinant attribute ids, sorted ascending.
    pub fn lhs(&self) -> &[AttrId] {
        &self.lhs
    }

    /// The determined attribute id.
    pub fn rhs(&self) -> AttrId {
        self.rhs
    }

    /// The directed edges `(x, rhs)` this FD contributes. The paper's
    /// precision/recall metrics (§5.1) are defined over these edges.
    pub fn edges(&self) -> impl Iterator<Item = (AttrId, AttrId)> + '_ {
        self.lhs.iter().map(move |&x| (x, self.rhs))
    }

    /// `true` if `other`'s determinant is a (non-strict) subset of ours with
    /// the same rhs — i.e. `other` is at least as minimal.
    pub fn is_generalized_by(&self, other: &Fd) -> bool {
        self.rhs == other.rhs && other.lhs.iter().all(|a| self.lhs.contains(a))
    }

    /// Renders the FD with attribute names from `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> FdDisplay<'a> {
        FdDisplay { fd: self, schema }
    }
}

/// Helper for name-based FD rendering; see [`Fd::display`].
pub struct FdDisplay<'a> {
    fd: &'a Fd,
    schema: &'a Schema,
}

impl fmt::Display for FdDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, &a) in self.fd.lhs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", self.schema.name(a))?;
        }
        write!(f, " -> {}", self.schema.name(self.fd.rhs))
    }
}

/// A collection of discovered (or ground-truth) FDs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FdSet {
    fds: Vec<Fd>,
}

impl FdSet {
    /// The empty FD set.
    pub fn new() -> FdSet {
        FdSet::default()
    }

    /// Builds a set from FDs, deduplicating structurally equal entries.
    pub fn from_fds(fds: impl IntoIterator<Item = Fd>) -> FdSet {
        let mut set = FdSet::new();
        for fd in fds {
            set.insert(fd);
        }
        set
    }

    /// Inserts an FD if not already present. Returns `true` on insertion.
    pub fn insert(&mut self, fd: Fd) -> bool {
        if self.fds.contains(&fd) {
            false
        } else {
            self.fds.push(fd);
            true
        }
    }

    /// Number of FDs.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// `true` if no FDs were discovered.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// The FDs, in insertion order.
    pub fn fds(&self) -> &[Fd] {
        &self.fds
    }

    /// Iterates over the FDs.
    pub fn iter(&self) -> impl Iterator<Item = &Fd> {
        self.fds.iter()
    }

    /// The union of all FD edges, deduplicated (paper §5.1 metric basis).
    pub fn edge_set(&self) -> BTreeSet<(AttrId, AttrId)> {
        self.fds.iter().flat_map(Fd::edges).collect()
    }

    /// Total number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.edge_set().len()
    }

    /// Keeps only minimal FDs: drops any FD whose determinant is a strict
    /// superset of another FD with the same rhs.
    pub fn minimize(&self) -> FdSet {
        let mut keep = Vec::new();
        for (i, fd) in self.fds.iter().enumerate() {
            let redundant =
                self.fds.iter().enumerate().any(|(j, other)| {
                    i != j && fd.is_generalized_by(other) && fd.lhs() != other.lhs()
                });
            if !redundant {
                keep.push(fd.clone());
            }
        }
        FdSet::from_fds(keep)
    }

    /// Renders every FD with names from `schema`, one per line.
    pub fn render(&self, schema: &Schema) -> String {
        let mut out = String::new();
        for fd in &self.fds {
            out.push_str(&fd.display(schema).to_string());
            out.push('\n');
        }
        out
    }
}

impl IntoIterator for FdSet {
    type Item = Fd;
    type IntoIter = std::vec::IntoIter<Fd>;

    fn into_iter(self) -> Self::IntoIter {
        self.fds.into_iter()
    }
}

impl<'a> IntoIterator for &'a FdSet {
    type Item = &'a Fd;
    type IntoIter = std::slice::Iter<'a, Fd>;

    fn into_iter(self) -> Self::IntoIter {
        self.fds.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_normalizes_lhs() {
        let fd = Fd::new([3, 1, 3], 0);
        assert_eq!(fd.lhs(), &[1, 3]);
        assert_eq!(fd.rhs(), 0);
        assert_eq!(Fd::new([1, 3], 0), fd);
    }

    #[test]
    #[should_panic(expected = "trivial FD")]
    fn trivial_fd_rejected() {
        Fd::new([0, 1], 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_lhs_rejected() {
        Fd::new([], 1);
    }

    #[test]
    fn edges_enumerate_lhs() {
        let fd = Fd::new([2, 5], 1);
        let edges: Vec<_> = fd.edges().collect();
        assert_eq!(edges, vec![(2, 1), (5, 1)]);
    }

    #[test]
    fn set_dedupes() {
        let mut s = FdSet::new();
        assert!(s.insert(Fd::new([0], 1)));
        assert!(!s.insert(Fd::new([0], 1)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn edge_set_unions() {
        let s = FdSet::from_fds([Fd::new([0, 2], 1), Fd::new([0], 3)]);
        let e = s.edge_set();
        assert_eq!(e.len(), 3);
        assert!(e.contains(&(0, 1)));
        assert!(e.contains(&(2, 1)));
        assert!(e.contains(&(0, 3)));
    }

    #[test]
    fn minimize_drops_supersets() {
        let s = FdSet::from_fds([
            Fd::new([0], 2),
            Fd::new([0, 1], 2), // superset of [0] -> 2: dropped
            Fd::new([1], 3),
        ]);
        let m = s.minimize();
        assert_eq!(m.len(), 2);
        assert!(m.fds().contains(&Fd::new([0], 2)));
        assert!(m.fds().contains(&Fd::new([1], 3)));
    }

    #[test]
    fn display_uses_names() {
        let schema = Schema::from_names(&["zip", "city", "state"]);
        let fd = Fd::new([0], 2);
        assert_eq!(fd.display(&schema).to_string(), "zip -> state");
        let fd2 = Fd::new([0, 1], 2);
        assert_eq!(fd2.display(&schema).to_string(), "zip,city -> state");
    }
}
