use std::fmt;

/// A dynamically typed cell value.
///
/// FDX supports "diverse data types (e.g., categorical, real-valued, text
/// data, binary data, or mixtures of those)" (paper §4.2) because its pair
/// transform only needs an equality (or approximate-equality) test per type.
/// `Value` is that common currency. Floats are compared by their bit pattern
/// so that `Value` can implement `Eq`/`Hash` and be dictionary-interned;
/// datasets that need tolerance-based float equality should quantize on
/// ingestion (see `Value::float_quantized`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A missing cell. Two nulls compare equal as *values* (so they intern to
    /// one dictionary code), but the pair transform treats null cells
    /// according to its own null policy.
    Null,
    /// Integer-valued cell.
    Int(i64),
    /// Real-valued cell, ordered and hashed by total-order bit pattern.
    Float(OrderedF64),
    /// Textual / categorical cell.
    Text(String),
}

/// An `f64` wrapper with total ordering (IEEE `total_cmp`) and bitwise
/// equality, allowing floats inside `Eq + Hash + Ord` contexts.
#[derive(Debug, Clone, Copy)]
pub struct OrderedF64(pub f64);

impl PartialEq for OrderedF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}
impl Eq for OrderedF64 {}
impl std::hash::Hash for OrderedF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}
impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Convenience constructor for float values.
    pub fn float(v: f64) -> Value {
        Value::Float(OrderedF64(v))
    }

    /// Constructs a float quantized to `decimals` decimal places, so that
    /// near-equal measurements intern to the same dictionary code.
    pub fn float_quantized(v: f64, decimals: u32) -> Value {
        let scale = 10f64.powi(decimals as i32);
        Value::Float(OrderedF64((v * scale).round() / scale))
    }

    /// `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The contained integer, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The contained float (also converting `Int`), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(OrderedF64(v)) => Some(*v),
            _ => None,
        }
    }

    /// The contained text, if this is a `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Parses a raw string the way the CSV loader does: empty (or `NULL`,
    /// `NA`, `?`) becomes `Null`, then integer, then float, then text.
    pub fn infer(raw: &str) -> Value {
        let trimmed = raw.trim();
        if trimmed.is_empty()
            || trimmed.eq_ignore_ascii_case("null")
            || trimmed.eq_ignore_ascii_case("na")
            || trimmed == "?"
        {
            return Value::Null;
        }
        if let Ok(i) = trimmed.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = trimmed.parse::<f64>() {
            return Value::float(f);
        }
        Value::text(trimmed)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(OrderedF64(v)) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::text(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_null_variants() {
        for raw in ["", "  ", "NULL", "null", "NA", "?"] {
            assert_eq!(Value::infer(raw), Value::Null, "raw = {raw:?}");
        }
    }

    #[test]
    fn infer_prefers_int_then_float_then_text() {
        assert_eq!(Value::infer("42"), Value::Int(42));
        assert_eq!(Value::infer("-7"), Value::Int(-7));
        assert_eq!(Value::infer("3.5"), Value::float(3.5));
        assert_eq!(Value::infer("1e3"), Value::float(1000.0));
        assert_eq!(Value::infer("abc"), Value::text("abc"));
        assert_eq!(Value::infer(" 60608 "), Value::Int(60608));
    }

    #[test]
    fn floats_are_hash_eq_by_bits() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::float(1.5));
        set.insert(Value::float(1.5));
        assert_eq!(set.len(), 1);
        set.insert(Value::float(1.5000001));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn quantized_floats_collapse() {
        assert_eq!(
            Value::float_quantized(1.2345, 2),
            Value::float_quantized(1.2312, 2)
        );
        assert_ne!(
            Value::float_quantized(1.2345, 3),
            Value::float_quantized(1.2312, 3)
        );
    }

    #[test]
    fn accessors() {
        assert!(Value::Null.is_null());
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::text("x").as_text(), Some("x"));
        assert_eq!(Value::text("x").as_int(), None);
    }

    #[test]
    fn ordering_is_total() {
        let mut vals = vec![
            Value::text("b"),
            Value::Int(2),
            Value::Null,
            Value::float(1.5),
            Value::Int(1),
        ];
        vals.sort();
        // Null sorts first (enum variant order), ints before floats before text.
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Int(1));
    }
}
