use std::collections::HashMap;

use crate::Value;

/// Code reserved for null cells in a [`Column`].
///
/// Nulls never intern into the dictionary; FD semantics over noisy data care
/// about *where* values are missing, and keeping nulls out of the dictionary
/// lets every consumer choose its own null policy.
pub const NULL_CODE: u32 = u32::MAX;

/// A dictionary-encoded column.
///
/// Every distinct non-null [`Value`] is interned once and rows store `u32`
/// codes. Tuple-pair equality — the primitive FDX's transform (Algorithm 2)
/// evaluates `n·k` times — becomes an integer compare, and partition-based
/// baselines (TANE) get their equivalence classes directly from the codes.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    codes: Vec<u32>,
    dict: Vec<Value>,
}

impl Column {
    /// Builds a column by interning the given values.
    pub fn from_values(values: &[Value]) -> Column {
        let mut dict: Vec<Value> = Vec::new();
        let mut codes = Vec::with_capacity(values.len());
        let mut map: HashMap<Value, u32> = HashMap::new();
        for v in values {
            if v.is_null() {
                codes.push(NULL_CODE);
                continue;
            }
            let next = dict.len() as u32;
            let code = *map.entry(v.clone()).or_insert_with(|| {
                dict.push(v.clone());
                next
            });
            codes.push(code);
        }
        Column { codes, dict }
    }

    /// Builds a column directly from codes and a dictionary (generator path).
    ///
    /// # Panics
    ///
    /// Panics if any non-null code is out of range for the dictionary.
    pub fn from_codes(codes: Vec<u32>, dict: Vec<Value>) -> Column {
        for &c in &codes {
            assert!(
                c == NULL_CODE || (c as usize) < dict.len(),
                "code {c} out of range for dictionary of size {}",
                dict.len()
            );
        }
        Column { codes, dict }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// `true` if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The code at `row` (possibly [`NULL_CODE`]).
    #[inline]
    pub fn code(&self, row: usize) -> u32 {
        self.codes[row]
    }

    /// All codes.
    #[inline]
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The value at `row` ([`Value::Null`] for null cells).
    pub fn value(&self, row: usize) -> &Value {
        let c = self.codes[row];
        if c == NULL_CODE {
            &Value::Null
        } else {
            &self.dict[c as usize]
        }
    }

    /// The interned dictionary (non-null distinct values, in first-seen order).
    pub fn dictionary(&self) -> &[Value] {
        &self.dict
    }

    /// Number of distinct non-null values.
    pub fn distinct_count(&self) -> usize {
        self.dict.len()
    }

    /// Number of null cells.
    pub fn null_count(&self) -> usize {
        self.codes.iter().filter(|&&c| c == NULL_CODE).count()
    }

    /// `true` if `row` is null.
    #[inline]
    pub fn is_null(&self, row: usize) -> bool {
        self.codes[row] == NULL_CODE
    }

    /// Histogram of code frequencies (nulls excluded), indexed by code.
    pub fn frequencies(&self) -> Vec<usize> {
        let mut freq = vec![0usize; self.dict.len()];
        for &c in &self.codes {
            if c != NULL_CODE {
                freq[c as usize] += 1;
            }
        }
        freq
    }

    /// Overwrites the value at `row`, interning if needed.
    pub fn set_value(&mut self, row: usize, value: Value) {
        if value.is_null() {
            self.codes[row] = NULL_CODE;
            return;
        }
        let code = match self.dict.iter().position(|v| *v == value) {
            Some(i) => i as u32,
            None => {
                self.dict.push(value);
                (self.dict.len() - 1) as u32
            }
        };
        self.codes[row] = code;
    }

    /// Returns a new column containing the rows selected by `rows`, in order.
    pub fn gather(&self, rows: &[usize]) -> Column {
        Column {
            codes: rows.iter().map(|&r| self.codes[r]).collect(),
            dict: self.dict.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_assigns_stable_codes() {
        let col = Column::from_values(&[
            Value::text("a"),
            Value::text("b"),
            Value::text("a"),
            Value::Null,
            Value::text("c"),
        ]);
        assert_eq!(col.len(), 5);
        assert_eq!(col.code(0), col.code(2));
        assert_ne!(col.code(0), col.code(1));
        assert_eq!(col.code(3), NULL_CODE);
        assert_eq!(col.distinct_count(), 3);
        assert_eq!(col.null_count(), 1);
        assert_eq!(col.value(3), &Value::Null);
        assert_eq!(col.value(4), &Value::text("c"));
    }

    #[test]
    fn frequencies_count_codes() {
        let col = Column::from_values(&[Value::Int(1), Value::Int(2), Value::Int(1), Value::Null]);
        assert_eq!(col.frequencies(), vec![2, 1]);
    }

    #[test]
    fn set_value_interns_new() {
        let mut col = Column::from_values(&[Value::Int(1), Value::Int(2)]);
        col.set_value(0, Value::Int(9));
        assert_eq!(col.value(0), &Value::Int(9));
        assert_eq!(col.distinct_count(), 3);
        col.set_value(1, Value::Int(9));
        assert_eq!(col.code(0), col.code(1));
        col.set_value(0, Value::Null);
        assert!(col.is_null(0));
    }

    #[test]
    fn gather_selects_rows() {
        let col = Column::from_values(&[Value::Int(10), Value::Int(20), Value::Int(30)]);
        let g = col.gather(&[2, 0]);
        assert_eq!(g.value(0), &Value::Int(30));
        assert_eq!(g.value(1), &Value::Int(10));
        assert_eq!(g.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_codes_validates() {
        Column::from_codes(vec![0, 5], vec![Value::Int(1)]);
    }
}
