use crate::{AttrId, Column, Schema, Value};

/// A relational instance: a [`Schema`] plus one dictionary-encoded [`Column`]
/// per attribute, all of equal length.
///
/// This is the input type of every FD-discovery method in the workspace
/// (paper §3.1: "a noisy data set D′ following schema R").
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    schema: Schema,
    columns: Vec<Column>,
    nrows: usize,
}

impl Dataset {
    /// Assembles a dataset from a schema and matching columns.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the schema or if the columns
    /// have unequal lengths.
    pub fn new(schema: Schema, columns: Vec<Column>) -> Dataset {
        assert_eq!(
            schema.len(),
            columns.len(),
            "schema has {} attributes but {} columns supplied",
            schema.len(),
            columns.len()
        );
        let nrows = columns.first().map_or(0, Column::len);
        for (i, c) in columns.iter().enumerate() {
            assert_eq!(
                c.len(),
                nrows,
                "column {i} has {} rows, expected {nrows}",
                c.len()
            );
        }
        Dataset {
            schema,
            columns,
            nrows,
        }
    }

    /// Builds a dataset from rows of [`Value`]s.
    pub fn from_rows(schema: Schema, rows: &[Vec<Value>]) -> Dataset {
        let k = schema.len();
        let mut cols: Vec<Vec<Value>> = vec![Vec::with_capacity(rows.len()); k];
        for row in rows {
            assert_eq!(row.len(), k, "row arity {} != schema arity {k}", row.len());
            for (c, v) in row.iter().enumerate() {
                cols[c].push(v.clone());
            }
        }
        let columns = cols.iter().map(|c| Column::from_values(c)).collect();
        Dataset::new(schema, columns)
    }

    /// Builds an all-categorical dataset from string rows, inferring value
    /// types per cell (convenient in tests and examples).
    pub fn from_string_rows(names: &[&str], rows: &[&[&str]]) -> Dataset {
        let schema = Schema::from_names(names);
        let value_rows: Vec<Vec<Value>> = rows
            .iter()
            .map(|r| r.iter().map(|s| Value::infer(s)).collect())
            .collect();
        Dataset::from_rows(schema, &value_rows)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of attributes.
    pub fn ncols(&self) -> usize {
        self.columns.len()
    }

    /// The column for attribute `id`.
    pub fn column(&self, id: AttrId) -> &Column {
        &self.columns[id]
    }

    /// Mutable column access (used by noise injectors).
    pub fn column_mut(&mut self, id: AttrId) -> &mut Column {
        &mut self.columns[id]
    }

    /// All columns, in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The value of cell `(row, attr)`.
    pub fn value(&self, row: usize, attr: AttrId) -> &Value {
        self.columns[attr].value(row)
    }

    /// The dictionary code of cell `(row, attr)` ([`crate::NULL_CODE`] for nulls).
    #[inline]
    pub fn code(&self, row: usize, attr: AttrId) -> u32 {
        self.columns[attr].code(row)
    }

    /// Row indices sorted by the codes of attribute `attr` (stable sort, so
    /// equal values keep their relative order). Null cells sort last.
    ///
    /// This is the sort used by FDX's Algorithm 2 before the circular shift.
    pub fn sort_order_by(&self, attr: AttrId) -> Vec<usize> {
        let codes = self.columns[attr].codes();
        let mut idx: Vec<usize> = (0..self.nrows).collect();
        idx.sort_by_key(|&r| codes[r]);
        idx
    }

    /// Returns a new dataset with rows reordered by `rows` (indices may
    /// repeat or be dropped; the result has `rows.len()` rows).
    pub fn gather(&self, rows: &[usize]) -> Dataset {
        Dataset {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.gather(rows)).collect(),
            nrows: rows.len(),
        }
    }

    /// Projects onto the given attributes, producing a smaller dataset.
    pub fn project(&self, attrs: &[AttrId]) -> Dataset {
        let schema = Schema::new(
            attrs
                .iter()
                .map(|&a| self.schema.attribute(a).clone())
                .collect(),
        );
        let columns = attrs.iter().map(|&a| self.columns[a].clone()).collect();
        Dataset::new(schema, columns)
    }

    /// Total number of null cells across all columns.
    pub fn null_cells(&self) -> usize {
        self.columns.iter().map(Column::null_count).sum()
    }

    /// Fraction of cells that differ between `self` and `other` (both must
    /// have identical shape). Used to measure injected noise rates.
    pub fn cell_difference_rate(&self, other: &Dataset) -> f64 {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols(), other.ncols());
        if self.nrows == 0 || self.ncols() == 0 {
            return 0.0;
        }
        let mut diff = 0usize;
        for a in 0..self.ncols() {
            for r in 0..self.nrows {
                if self.value(r, a) != other.value(r, a) {
                    diff += 1;
                }
            }
        }
        diff as f64 / (self.nrows * self.ncols()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_string_rows(
            &["zip", "city", "state"],
            &[
                &["60608", "Chicago", "IL"],
                &["60611", "Chicago", "IL"],
                &["60608", "Chicago", "IL"],
                &["53703", "Madison", "WI"],
            ],
        )
    }

    #[test]
    fn shape_and_access() {
        let ds = sample();
        assert_eq!(ds.nrows(), 4);
        assert_eq!(ds.ncols(), 3);
        assert_eq!(ds.value(3, 1), &Value::text("Madison"));
        assert_eq!(ds.code(0, 0), ds.code(2, 0));
    }

    #[test]
    fn sort_order_groups_equal_codes() {
        let ds = sample();
        let order = ds.sort_order_by(0);
        // zip codes: 60608(code0) at rows 0,2; 60611(code1) row 1; 53703(code2) row 3.
        assert_eq!(order, vec![0, 2, 1, 3]);
    }

    #[test]
    fn sort_order_puts_nulls_last() {
        let ds = Dataset::from_string_rows(&["a"], &[&["x"], &[""], &["y"]]);
        let order = ds.sort_order_by(0);
        assert_eq!(*order.last().unwrap(), 1);
    }

    #[test]
    fn gather_and_project() {
        let ds = sample();
        let g = ds.gather(&[3, 0]);
        assert_eq!(g.nrows(), 2);
        assert_eq!(g.value(0, 2), &Value::text("WI"));
        let p = ds.project(&[2, 0]);
        assert_eq!(p.schema().name(0), "state");
        assert_eq!(p.value(0, 1), &Value::Int(60608));
    }

    #[test]
    fn null_cell_accounting() {
        let ds = Dataset::from_string_rows(&["a", "b"], &[&["1", ""], &["", "2"]]);
        assert_eq!(ds.null_cells(), 2);
    }

    #[test]
    fn difference_rate() {
        let a = sample();
        let mut b = sample();
        assert_eq!(a.cell_difference_rate(&b), 0.0);
        b.column_mut(1).set_value(0, Value::text("Cicago"));
        assert!((a.cell_difference_rate(&b) - 1.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn unequal_columns_rejected() {
        let schema = Schema::from_names(&["a", "b"]);
        let c1 = Column::from_values(&[Value::Int(1)]);
        let c2 = Column::from_values(&[Value::Int(1), Value::Int(2)]);
        Dataset::new(schema, vec![c1, c2]);
    }
}
