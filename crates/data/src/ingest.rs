//! Resilient out-of-core CSV ingestion: chunked reading, row quarantine,
//! and byte-accounted memory budgets.
//!
//! The FDX estimator needs only sufficient statistics of the pair
//! transform, so discovery does not require the whole file in RAM. This
//! module reads a CSV in fixed-size byte buffers, drives the incremental
//! [`CsvMachine`](crate::csv::CsvMachine), groups records into fixed-row
//! **chunks**, interns each chunk into a per-chunk **dictionary page**, and
//! merges pages into the global dictionary-encoded columns. On clean data
//! the merged result is *bit-identical* to [`crate::read_csv_str`]: local
//! codes are translated through the global dictionary in row order, so
//! first-appearance interning order — the property the resident path
//! defines — is preserved exactly.
//!
//! The robustness envelope mirrors the `fdx_core` recovery ladder
//! (DESIGN.md §14):
//!
//! * **Quarantine** — malformed rows are recorded (physical line, byte
//!   offset, reason, raw prefix) and handled per [`BadRowPolicy`]:
//!   `Abort` (the historical behavior), `Skip`, or `Quarantine(path)`
//!   which additionally appends one JSONL record per bad row to a
//!   quarantine file. Totals surface in [`IngestHealth`].
//! * **Memory budget** — a byte-accounting [`MemoryMeter`] shim charges
//!   every interned value, every code, and the transient chunk working
//!   set. When a budget is exceeded the ingest degrades to a deterministic
//!   **sampled-rows rung** (keep every 2ᵏ-th row — the sampled-pairs
//!   estimator of Guo & Rekatsinas's pairwise view) instead of failing;
//!   only when even sampling cannot fit does it return
//!   [`IngestError::MemoryBudget`].
//! * **Fault injection** — [`FAULT_SHORT_READ`], [`FAULT_CORRUPT_CHUNK`],
//!   [`FAULT_DISK_STALL`], and [`FAULT_OOM_AT_CHUNK`] are
//!   `fdx_obs::faults` points checked at the exact sites the real failures
//!   would surface; the ingest fault-matrix test pins every
//!   (fault × policy) outcome.
//!
//! Ingestion records `fdx.ingest.*` metrics (chunks, rows, quarantined,
//! merge time, peak bytes) and runs under an `fdx.ingest` span so traces
//! and metric exports show the ingest phase alongside the pipeline phases.

use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use fdx_obs::{counter_add, gauge_set, json, observe, Span};

use crate::csv::{CsvEvent, CsvMachine};
use crate::{Column, Dataset, Schema, Value, NULL_CODE};

/// Fault point: a read returns fewer bytes than expected and the stream
/// ends early (torn download, truncated copy).
pub const FAULT_SHORT_READ: &str = "ingest.short_read";
/// Fault point: a chunk fails its integrity check; every row in it is
/// malformed at once (bad disk sector, torn page).
pub const FAULT_CORRUPT_CHUNK: &str = "ingest.corrupt_chunk";
/// Fault point: a read stalls and is retried (flaky NFS, throttled disk).
pub const FAULT_DISK_STALL: &str = "ingest.disk_stall";
/// Fault point: the memory budget is reported exhausted at a chunk merge
/// regardless of actual accounting.
pub const FAULT_OOM_AT_CHUNK: &str = "ingest.oom_at_chunk";

/// Default rows per chunk.
pub const DEFAULT_CHUNK_ROWS: usize = 4096;
/// Bytes per read(2) into the carry buffer.
const READ_BUF_BYTES: usize = 64 * 1024;
/// In-memory cap on retained [`QuarantinedRow`] samples (the quarantine
/// *file* gets every row; the in-memory list is a bounded sample).
const QUARANTINE_KEEP: usize = 64;
/// Approximate per-allocation bookkeeping overhead charged per string.
const ALLOC_OVERHEAD: u64 = 24;

/// What to do with a malformed row.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum BadRowPolicy {
    /// Fail the ingest on the first malformed row (historical behavior).
    #[default]
    Abort,
    /// Count and drop malformed rows.
    Skip,
    /// Count, drop, and append each malformed row as a JSONL record to the
    /// given quarantine file.
    Quarantine(PathBuf),
}

impl BadRowPolicy {
    /// Stable label used in health reports and the CLI.
    pub fn label(&self) -> &'static str {
        match self {
            BadRowPolicy::Abort => "abort",
            BadRowPolicy::Skip => "skip",
            BadRowPolicy::Quarantine(_) => "quarantine",
        }
    }
}

/// Knobs for a chunked ingest run.
#[derive(Debug, Clone, Default)]
pub struct IngestConfig {
    /// Rows per chunk; `None` means [`DEFAULT_CHUNK_ROWS`].
    pub chunk_rows: Option<usize>,
    /// Malformed-row policy.
    pub on_bad_row: BadRowPolicy,
    /// Optional byte budget for the ingest working set; exceeding it
    /// engages the sampled-rows degradation rung.
    pub memory_budget: Option<u64>,
}

/// One malformed row, as recorded for quarantine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedRow {
    /// 1-based physical line the row starts on.
    pub line: usize,
    /// Absolute byte offset of the offending character.
    pub byte_offset: u64,
    /// Human-readable reason (the typed CSV error, rendered).
    pub reason: String,
    /// Up to 256 bytes of the raw record text.
    pub raw: String,
}

impl QuarantinedRow {
    /// The JSONL record written to quarantine files.
    pub fn to_json(&self) -> String {
        json::Obj::new()
            .str_("kind", "quarantine")
            .u64_("line", self.line as u64)
            .u64_("byte_offset", self.byte_offset)
            .str_("reason", &self.reason)
            .str_("raw", &self.raw)
            .finish()
    }
}

/// Byte-accounting allocator shim for the ingest path.
///
/// Not a real allocator: the ingest charges it for every retained
/// allocation (codes, dictionary values, the transient chunk working set)
/// and releases what it frees, so `current()` tracks the ingest working
/// set and `peak()` its high-water mark. The budget check is explicit at
/// the call sites that can react (chunk merges), which keeps degradation
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryMeter {
    current: u64,
    peak: u64,
}

impl MemoryMeter {
    /// Charges `bytes` to the meter.
    pub fn charge(&mut self, bytes: u64) {
        self.current += bytes;
        self.peak = self.peak.max(self.current);
    }

    /// Releases `bytes` from the meter (saturating).
    pub fn release(&mut self, bytes: u64) {
        self.current = self.current.saturating_sub(bytes);
    }

    /// Current charged bytes.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// High-water mark.
    pub fn peak(&self) -> u64 {
        self.peak
    }
}

/// Health of one ingest run — the `ingest` section of
/// `fdx_core::RunHealth` and of `--metrics` output.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IngestHealth {
    /// Source label (file path, or a caller-supplied tag).
    pub source: String,
    /// Chunks merged.
    pub chunks: u64,
    /// Well-formed data rows parsed (before sampling).
    pub rows_read: u64,
    /// Rows retained after the sampling rung (== `rows_read` when clean).
    pub rows_kept: u64,
    /// Malformed rows skipped or quarantined.
    pub rows_quarantined: u64,
    /// Total input bytes consumed.
    pub bytes_read: u64,
    /// Peak bytes charged to the [`MemoryMeter`].
    pub peak_bytes: u64,
    /// The bad-row policy label ("abort" / "skip" / "quarantine").
    pub policy: String,
    /// Whether the sampled-rows degradation rung engaged.
    pub sampled: bool,
    /// Sampling stride: 1 = every row; 2ᵏ after k halvings.
    pub keep_every: u64,
    /// The configured budget, if any.
    pub memory_budget: Option<u64>,
    /// Quarantine file path, when the policy wrote one.
    pub quarantine_path: Option<String>,
    /// Recovery notes (fault retries, truncation, sampling escalations).
    pub notes: Vec<String>,
}

impl IngestHealth {
    /// Whether this ingest deviated from a clean, complete read.
    pub fn degraded(&self) -> bool {
        self.rows_quarantined > 0 || self.sampled || !self.notes.is_empty()
    }

    /// Deterministic JSON object (embedded in run-health JSON).
    pub fn to_json(&self) -> String {
        let mut obj = json::Obj::new()
            .str_("kind", "ingest")
            .str_("source", &self.source)
            .u64_("chunks", self.chunks)
            .u64_("rows_read", self.rows_read)
            .u64_("rows_kept", self.rows_kept)
            .u64_("rows_quarantined", self.rows_quarantined)
            .u64_("bytes_read", self.bytes_read)
            .u64_("peak_bytes", self.peak_bytes)
            .str_("policy", &self.policy)
            .bool_("sampled", self.sampled)
            .u64_("keep_every", self.keep_every);
        if let Some(b) = self.memory_budget {
            obj = obj.u64_("memory_budget", b);
        }
        if let Some(p) = &self.quarantine_path {
            obj = obj.str_("quarantine_path", p);
        }
        obj.raw(
            "notes",
            &json::array(
                self.notes
                    .iter()
                    .map(|n| format!("\"{}\"", json::escape(n))),
            ),
        )
        .bool_("degraded", self.degraded())
        .finish()
    }

    /// One-line summary for `RunHealth::render`.
    pub fn render(&self) -> String {
        let mut s = format!(
            "ingest: {} chunk(s), {} row(s) kept of {}",
            self.chunks, self.rows_kept, self.rows_read
        );
        if self.rows_quarantined > 0 {
            s.push_str(&format!(
                ", {} quarantined ({})",
                self.rows_quarantined, self.policy
            ));
        }
        if self.sampled {
            s.push_str(&format!(", sampled 1/{}", self.keep_every));
        }
        s
    }
}

/// Errors from chunked ingestion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// Filesystem-level failure.
    Io {
        /// Source path (or label).
        path: String,
        /// OS error rendering.
        detail: String,
    },
    /// The input is not valid UTF-8.
    Encoding {
        /// Source path (or label).
        path: String,
        /// Offset of the first invalid byte.
        byte_offset: u64,
    },
    /// Structural failure before any data row (missing/malformed header).
    Header {
        /// Source path (or label).
        path: String,
        /// What was wrong.
        detail: String,
    },
    /// A malformed row under [`BadRowPolicy::Abort`].
    BadRow {
        /// Source path (or label).
        path: String,
        /// 1-based physical line.
        line: usize,
        /// Absolute byte offset of the offending character.
        byte_offset: u64,
        /// Rendered typed error.
        reason: String,
    },
    /// The working set cannot fit the memory budget even after the
    /// sampling rung bottomed out.
    MemoryBudget {
        /// Which ingest stage was charging when the budget bottomed out.
        stage: &'static str,
        /// Bytes charged at that point.
        bytes: u64,
    },
    /// The quarantine file could not be written.
    QuarantineIo {
        /// Quarantine file path.
        path: String,
        /// OS error rendering.
        detail: String,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io { path, detail } => write!(f, "{path}: {detail}"),
            IngestError::Encoding { path, byte_offset } => {
                write!(
                    f,
                    "{path}: not valid UTF-8 (first invalid byte at offset {byte_offset})"
                )
            }
            IngestError::Header { path, detail } => write!(f, "{path}: {detail}"),
            IngestError::BadRow {
                path,
                line,
                byte_offset,
                reason,
            } => write!(
                f,
                "{path}: line {line} (byte offset {byte_offset}): {reason}"
            ),
            IngestError::MemoryBudget { stage, bytes } => write!(
                f,
                "memory budget exceeded in ingest stage '{stage}' ({bytes} bytes charged)"
            ),
            IngestError::QuarantineIo { path, detail } => {
                write!(f, "quarantine file {path}: {detail}")
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// Everything an ingest run produces.
#[derive(Debug, Clone)]
pub struct Ingested {
    /// The (possibly sampled) dataset.
    pub dataset: Dataset,
    /// Ingest health: totals, policy, degradation flags, notes.
    pub health: IngestHealth,
    /// Bounded in-memory sample of quarantined rows (first
    /// [`QUARANTINE_KEEP`]); the quarantine file, when configured, holds
    /// all of them.
    pub quarantined: Vec<QuarantinedRow>,
}

/// Approximate heap bytes of an interned value.
fn value_bytes(v: &Value) -> u64 {
    let text = match v {
        Value::Text(s) => s.len() as u64 + ALLOC_OVERHEAD,
        _ => 0,
    };
    std::mem::size_of::<Value>() as u64 + text
}

/// Approximate transient bytes of one pending (parsed, not yet merged) row.
fn row_bytes(fields: &[String]) -> u64 {
    fields
        .iter()
        .map(|s| s.len() as u64 + ALLOC_OVERHEAD)
        .sum::<u64>()
        + ALLOC_OVERHEAD
}

/// A parsed record waiting for its chunk to fill.
struct PendingRow {
    line: usize,
    byte_offset: u64,
    fields: Vec<String>,
    bytes: u64,
}

/// One chunk's dictionary page: chunk-local interning of every cell, plus
/// chunk-local codes. Pages are merged into the global columns by
/// translating local codes through the global dictionary in row order,
/// which preserves the resident path's first-appearance interning order.
struct ChunkPage {
    /// Per column: local dictionary in chunk-first-appearance order.
    dicts: Vec<Vec<Value>>,
    /// Per column: local codes, row-major within the column.
    codes: Vec<Vec<u32>>,
    rows: usize,
}

impl ChunkPage {
    fn build(rows: &[PendingRow], k: usize) -> ChunkPage {
        let mut dicts: Vec<Vec<Value>> = vec![Vec::new(); k];
        let mut maps: Vec<HashMap<Value, u32>> = vec![HashMap::new(); k];
        let mut codes: Vec<Vec<u32>> = vec![Vec::with_capacity(rows.len()); k];
        for row in rows {
            for (a, cell) in row.fields.iter().enumerate() {
                let v = Value::infer(cell);
                if v.is_null() {
                    codes[a].push(NULL_CODE);
                    continue;
                }
                let next = dicts[a].len() as u32;
                let code = *maps[a].entry(v.clone()).or_insert_with(|| {
                    dicts[a].push(v);
                    next
                });
                codes[a].push(code);
            }
        }
        ChunkPage {
            dicts,
            codes,
            rows: rows.len(),
        }
    }
}

/// Global column accumulator with the deterministic sampling rung.
struct GlobalBuilder {
    k: usize,
    dicts: Vec<Vec<Value>>,
    maps: Vec<HashMap<Value, u32>>,
    codes: Vec<Vec<u32>>,
    /// Data rows offered so far (global row index of the next row).
    rows_offered: u64,
    rows_kept: u64,
    /// Keep rows whose global index is ≡ 0 (mod `keep_every`).
    keep_every: u64,
    codes_bytes: u64,
    dict_bytes: u64,
}

impl GlobalBuilder {
    fn new(k: usize) -> GlobalBuilder {
        GlobalBuilder {
            k,
            dicts: vec![Vec::new(); k],
            maps: vec![HashMap::new(); k],
            codes: vec![Vec::new(); k],
            rows_offered: 0,
            rows_kept: 0,
            keep_every: 1,
            codes_bytes: 0,
            dict_bytes: 0,
        }
    }

    /// Merges a chunk page: translates local codes of kept rows through
    /// the global dictionaries, appending unseen values in row order.
    fn merge(&mut self, page: &ChunkPage, meter: &mut MemoryMeter) {
        // Lazy local→global code translation, filled on first use so the
        // global dictionary only ever sees values from kept rows.
        let mut translate: Vec<Vec<u32>> =
            page.dicts.iter().map(|d| vec![u32::MAX; d.len()]).collect();
        for r in 0..page.rows {
            let keep = self.rows_offered % self.keep_every == 0;
            self.rows_offered += 1;
            if !keep {
                continue;
            }
            self.rows_kept += 1;
            for a in 0..self.k {
                let local = page.codes[a][r];
                let global = if local == NULL_CODE {
                    NULL_CODE
                } else {
                    let slot = translate[a][local as usize];
                    if slot != u32::MAX {
                        slot
                    } else {
                        let v = &page.dicts[a][local as usize];
                        let next = self.dicts[a].len() as u32;
                        let code = *self.maps[a].entry(v.clone()).or_insert_with(|| {
                            self.dicts[a].push(v.clone());
                            next
                        });
                        if code == next {
                            let b = value_bytes(v);
                            self.dict_bytes += b;
                            meter.charge(b);
                        }
                        translate[a][local as usize] = code;
                        code
                    }
                };
                self.codes[a].push(global);
            }
            self.codes_bytes += 4 * self.k as u64;
            meter.charge(4 * self.k as u64);
        }
    }

    /// One halving of the sampling rung: keep every other currently-kept
    /// row (equivalently, double `keep_every`). Deterministic — no RNG.
    fn halve(&mut self, meter: &mut MemoryMeter) {
        for col in &mut self.codes {
            let mut w = 0;
            for r in (0..col.len()).step_by(2) {
                col[w] = col[r];
                w += 1;
            }
            col.truncate(w);
        }
        let new_kept = self.codes.first().map(|c| c.len() as u64).unwrap_or(0);
        let freed = (self.rows_kept - new_kept) * 4 * self.k as u64;
        self.codes_bytes -= freed;
        meter.release(freed);
        self.rows_kept = new_kept;
        self.keep_every *= 2;
    }
}

/// Ingests a CSV file through the chunked, quarantining, budget-aware
/// reader. On clean data the resulting dataset is bit-identical to
/// [`crate::read_csv_str`] on the same bytes.
pub fn ingest_csv_file(
    path: impl AsRef<Path>,
    cfg: &IngestConfig,
) -> Result<Ingested, IngestError> {
    let p = path.as_ref();
    let label = p.display().to_string();
    let file = File::open(p).map_err(|e| IngestError::Io {
        path: label.clone(),
        detail: e.to_string(),
    })?;
    ingest_csv_reader(file, &label, cfg)
}

/// Ingests in-memory bytes through the same chunked machinery (tests, and
/// the serve path's csv-by-value requests).
pub fn ingest_csv_bytes(
    bytes: &[u8],
    label: &str,
    cfg: &IngestConfig,
) -> Result<Ingested, IngestError> {
    ingest_csv_reader(bytes, label, cfg)
}

/// Core driver: byte reads → UTF-8 carry → [`CsvMachine`] → chunk pages →
/// global merge, with faults, quarantine, and the memory budget applied at
/// the stage each failure would really surface.
fn ingest_csv_reader<R: Read>(
    mut reader: R,
    label: &str,
    cfg: &IngestConfig,
) -> Result<Ingested, IngestError> {
    let _span = Span::enter("fdx.ingest");
    let chunk_rows = cfg.chunk_rows.unwrap_or(DEFAULT_CHUNK_ROWS).max(1);

    let mut machine = CsvMachine::new();
    let mut carry: Vec<u8> = Vec::new();
    let mut buf = vec![0u8; READ_BUF_BYTES];
    let mut events: Vec<CsvEvent> = Vec::new();

    let mut header: Option<Vec<String>> = None;
    let mut expected = 0usize;
    let mut builder: Option<GlobalBuilder> = None;
    let mut pending: Vec<PendingRow> = Vec::new();
    let mut meter = MemoryMeter::default();
    let mut quarantined: Vec<QuarantinedRow> = Vec::new();
    let mut qwriter: Option<BufWriter<File>> = None;
    let mut merge_secs = 0f64;

    let mut health = IngestHealth {
        source: label.to_string(),
        policy: cfg.on_bad_row.label().to_string(),
        keep_every: 1,
        memory_budget: cfg.memory_budget,
        quarantine_path: match &cfg.on_bad_row {
            BadRowPolicy::Quarantine(p) => Some(p.display().to_string()),
            _ => None,
        },
        ..IngestHealth::default()
    };

    // Applies the bad-row policy to one malformed row.
    macro_rules! bad_row {
        ($line:expr, $off:expr, $reason:expr, $raw:expr) => {{
            let (line, off, reason, raw): (usize, u64, String, String) =
                ($line, $off, $reason, $raw);
            match &cfg.on_bad_row {
                BadRowPolicy::Abort => {
                    return Err(IngestError::BadRow {
                        path: label.to_string(),
                        line,
                        byte_offset: off,
                        reason,
                    });
                }
                policy => {
                    let row = QuarantinedRow {
                        line,
                        byte_offset: off,
                        reason,
                        raw,
                    };
                    if let BadRowPolicy::Quarantine(qpath) = policy {
                        if qwriter.is_none() {
                            // fdx-allow: L015 append-only quarantine stream written row-by-row as bad rows surface; an atomic rename would drop rows on a mid-ingest kill
                            let f = File::create(qpath).map_err(|e| IngestError::QuarantineIo {
                                path: qpath.display().to_string(),
                                detail: e.to_string(),
                            })?;
                            qwriter = Some(BufWriter::new(f));
                        }
                        if let Some(w) = qwriter.as_mut() {
                            writeln!(w, "{}", row.to_json()).map_err(|e| {
                                IngestError::QuarantineIo {
                                    path: qpath.display().to_string(),
                                    detail: e.to_string(),
                                }
                            })?;
                        }
                    }
                    health.rows_quarantined += 1;
                    if quarantined.len() < QUARANTINE_KEEP {
                        quarantined.push(row);
                    }
                }
            }
        }};
    }

    // Merges the first `take` pending rows as one chunk.
    macro_rules! flush_chunk {
        ($take:expr) => {{
            let take: usize = $take;
            if take > 0 {
                let chunk_index = health.chunks;
                let rows: Vec<PendingRow> = pending.drain(..take).collect();
                let freed: u64 = rows.iter().map(|r| r.bytes).sum();
                if fdx_obs::faults::fire(FAULT_CORRUPT_CHUNK) {
                    // The whole chunk fails its integrity check at once.
                    health
                        .notes
                        .push(format!("chunk {chunk_index} failed integrity check"));
                    for row in &rows {
                        bad_row!(
                            row.line,
                            row.byte_offset,
                            "corrupt chunk (integrity check failed)".to_string(),
                            row.fields.join(",")
                        );
                    }
                } else {
                    let b = builder.get_or_insert_with(|| GlobalBuilder::new(expected));
                    let span = Span::enter("fdx.ingest.merge");
                    let page = ChunkPage::build(&rows, expected);
                    b.merge(&page, &mut meter);
                    merge_secs += span.elapsed_secs();
                    health.rows_read += rows.len() as u64;
                }
                health.chunks += 1;
                meter.release(freed);
                // Budget enforcement at the merge boundary: engage (or
                // deepen) the sampling rung until the working set fits.
                let forced_oom = fdx_obs::faults::fire(FAULT_OOM_AT_CHUNK);
                if forced_oom {
                    health.notes.push(format!(
                        "injected allocation failure at chunk {chunk_index}"
                    ));
                }
                if let Some(b) = builder.as_mut() {
                    let over_budget =
                        |m: &MemoryMeter| cfg.memory_budget.is_some_and(|l| m.current() > l);
                    if forced_oom || over_budget(&meter) {
                        let mut halvings = 0u32;
                        while (halvings == 0 && forced_oom) || over_budget(&meter) {
                            if b.rows_kept <= 2 && (halvings > 0 || !forced_oom) {
                                return Err(IngestError::MemoryBudget {
                                    stage: "chunk merge",
                                    bytes: meter.current(),
                                });
                            }
                            b.halve(&mut meter);
                            halvings += 1;
                        }
                        if !health.sampled {
                            health
                                .notes
                                .push("memory budget: sampled-rows rung engaged".to_string());
                        }
                        health.sampled = true;
                        health.keep_every = b.keep_every;
                    }
                }
            }
        }};
    }

    let mut eof = false;
    while !eof {
        if fdx_obs::faults::fire(FAULT_DISK_STALL) {
            // A stalled read that recovered on retry: degraded, not fatal.
            health.notes.push(format!(
                "disk stall reading after byte {}; retried",
                machine.bytes_consumed()
            ));
        }
        let mut n = reader.read(&mut buf).map_err(|e| IngestError::Io {
            path: label.to_string(),
            detail: e.to_string(),
        })?;
        if n == 0 {
            eof = true;
        } else if fdx_obs::faults::fire(FAULT_SHORT_READ) {
            n /= 2;
            eof = true;
            health.notes.push(format!(
                "short read: input truncated near byte {}",
                machine.bytes_consumed() + n as u64
            ));
        }
        carry.extend_from_slice(&buf[..n]);

        // Decode the maximal valid UTF-8 prefix; an incomplete trailing
        // char is carried into the next read.
        match std::str::from_utf8(&carry) {
            Ok(text) => {
                machine.push(text, &mut |ev| events.push(ev));
                carry.clear();
            }
            Err(e) if e.error_len().is_none() && !eof => {
                let valid = e.valid_up_to();
                if valid > 0 {
                    if let Ok(text) = std::str::from_utf8(&carry[..valid]) {
                        machine.push(text, &mut |ev| events.push(ev));
                    }
                    carry.drain(..valid);
                }
            }
            Err(e) => {
                return Err(IngestError::Encoding {
                    path: label.to_string(),
                    byte_offset: machine.bytes_consumed() + e.valid_up_to() as u64,
                })
            }
        }
        if eof {
            machine.finish(&mut |ev| events.push(ev));
        }

        for ev in std::mem::take(&mut events) {
            match ev {
                CsvEvent::Record {
                    line,
                    byte_offset,
                    fields,
                } => {
                    if header.is_none() {
                        expected = fields.len();
                        header = Some(fields);
                        continue;
                    }
                    if fields.len() != expected {
                        bad_row!(
                            line,
                            byte_offset,
                            format!(
                                "CSV line {line} has {} fields, expected {expected}",
                                fields.len()
                            ),
                            fields.join(",")
                        );
                        continue;
                    }
                    let bytes = row_bytes(&fields);
                    meter.charge(bytes);
                    pending.push(PendingRow {
                        line,
                        byte_offset,
                        fields,
                        bytes,
                    });
                    // Flush as soon as a chunk fills so the transient
                    // working set never exceeds one chunk of parsed rows,
                    // whatever the read-buffer size.
                    if pending.len() >= chunk_rows {
                        flush_chunk!(chunk_rows);
                    }
                }
                CsvEvent::BadRow {
                    line,
                    byte_offset,
                    error,
                    raw,
                } => {
                    if header.is_none() {
                        // A broken header is structural: no policy can
                        // recover column identity, so this is fatal even
                        // under skip/quarantine.
                        return Err(IngestError::Header {
                            path: label.to_string(),
                            detail: error.to_string(),
                        });
                    }
                    bad_row!(line, byte_offset, error.to_string(), raw);
                }
            }
        }
        if eof {
            flush_chunk!(pending.len());
        }
    }

    if let Some(w) = qwriter.as_mut() {
        w.flush().map_err(|e| IngestError::QuarantineIo {
            path: health
                .quarantine_path
                .clone()
                .unwrap_or_else(|| "<quarantine>".to_string()),
            detail: e.to_string(),
        })?;
    }

    let header = header.ok_or_else(|| IngestError::Header {
        path: label.to_string(),
        detail: "CSV input is empty (no header row)".to_string(),
    })?;
    let names: Vec<&str> = header.iter().map(String::as_str).collect();
    let schema = Schema::from_names(&names);
    let builder = builder.unwrap_or_else(|| GlobalBuilder::new(schema.len()));
    // Compact each dictionary to the codes the kept rows actually
    // reference, renumbered in first-appearance order. On a clean run
    // this is the identity; after the sampling rung it drops values that
    // only dropped rows referenced, so a sampled ingest equals a resident
    // read of exactly the kept rows.
    let columns: Vec<Column> = builder
        .dicts
        .into_iter()
        .zip(builder.codes)
        .map(|(dict, mut codes)| {
            let mut remap = vec![u32::MAX; dict.len()];
            let mut compacted: Vec<Value> = Vec::new();
            for c in codes.iter_mut() {
                if *c == NULL_CODE {
                    continue;
                }
                let m = remap[*c as usize];
                if m == u32::MAX {
                    let next = compacted.len() as u32;
                    compacted.push(dict[*c as usize].clone());
                    remap[*c as usize] = next;
                    *c = next;
                } else {
                    *c = m;
                }
            }
            Column::from_codes(codes, compacted)
        })
        .collect();
    let dataset = Dataset::new(schema, columns);

    health.rows_kept = builder.rows_kept;
    health.bytes_read = machine.bytes_consumed();
    health.peak_bytes = meter.peak();

    counter_add("fdx.ingest.chunks", health.chunks);
    counter_add("fdx.ingest.rows", health.rows_read);
    counter_add("fdx.ingest.quarantined", health.rows_quarantined);
    gauge_set("fdx.ingest.peak_bytes", health.peak_bytes as f64);
    observe("fdx.ingest.merge_ms", (merge_secs * 1_000.0) as u64);
    if health.sampled {
        counter_add("fdx.ingest.sampled_runs", 1);
    }

    Ok(Ingested {
        dataset,
        health,
        quarantined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read_csv_str;

    fn clean_csv(rows: usize) -> String {
        let mut s = String::from("zip,city,state\n");
        for i in 0..rows {
            let z = i % 16;
            s.push_str(&format!("z{z},c{},s{}\n", z / 2, z / 8));
        }
        s
    }

    fn ingest_str(input: &str, cfg: &IngestConfig) -> Result<Ingested, IngestError> {
        ingest_csv_bytes(input.as_bytes(), "<mem>", cfg)
    }

    #[test]
    fn clean_chunked_ingest_is_bit_identical_to_resident() {
        let csv = clean_csv(100);
        let resident = read_csv_str(&csv).unwrap();
        for chunk_rows in [1, 7, 64, 100, 4096] {
            let got = ingest_str(
                &csv,
                &IngestConfig {
                    chunk_rows: Some(chunk_rows),
                    ..IngestConfig::default()
                },
            )
            .unwrap();
            assert_eq!(got.dataset, resident, "chunk_rows={chunk_rows}");
            assert!(!got.health.degraded());
            assert_eq!(got.health.rows_read, 100);
            assert_eq!(got.health.rows_kept, 100);
            assert_eq!(got.health.keep_every, 1);
            assert_eq!(got.health.bytes_read, csv.len() as u64);
        }
    }

    #[test]
    fn dictionary_page_merge_preserves_interning_order() {
        // Values that first appear in different chunks, including repeats
        // across chunk boundaries — the interning order must match the
        // resident path's first-appearance order exactly.
        let csv = "a,b\nx,1\ny,2\nx,3\nz,1\nw,2\ny,9\n";
        let resident = read_csv_str(csv).unwrap();
        for chunk_rows in [1, 2, 3] {
            let got = ingest_str(
                csv,
                &IngestConfig {
                    chunk_rows: Some(chunk_rows),
                    ..IngestConfig::default()
                },
            )
            .unwrap();
            assert_eq!(got.dataset, resident, "chunk_rows={chunk_rows}");
            for a in 0..2 {
                assert_eq!(
                    got.dataset.column(a).dictionary(),
                    resident.column(a).dictionary()
                );
            }
        }
    }

    #[test]
    fn abort_policy_matches_resident_error_line() {
        let csv = "a,b\n1,2\nonly-one\n3,4\n";
        let err = ingest_str(csv, &IngestConfig::default()).unwrap_err();
        match err {
            IngestError::BadRow { line, reason, .. } => {
                assert_eq!(line, 3);
                assert!(reason.contains("1 fields, expected 2"), "{reason}");
            }
            other => panic!("expected BadRow, got {other:?}"),
        }
    }

    #[test]
    fn skip_policy_drops_and_counts() {
        let csv = "a,b\n1,2\nonly-one\nbad\"q,5\n3,4\n";
        let got = ingest_str(
            csv,
            &IngestConfig {
                on_bad_row: BadRowPolicy::Skip,
                ..IngestConfig::default()
            },
        )
        .unwrap();
        assert_eq!(got.dataset.nrows(), 2);
        assert_eq!(got.health.rows_quarantined, 2);
        assert!(got.health.degraded());
        assert_eq!(got.quarantined.len(), 2);
        assert_eq!(got.quarantined[0].line, 3);
        assert_eq!(got.quarantined[1].line, 4);
    }

    #[test]
    fn quarantine_policy_writes_jsonl() {
        let dir = std::env::temp_dir().join("fdx_ingest_test_q");
        std::fs::create_dir_all(&dir).unwrap();
        let qpath = dir.join("rows.jsonl");
        let csv = "a,b\n1,2\noops\n3,4\n";
        let got = ingest_str(
            csv,
            &IngestConfig {
                on_bad_row: BadRowPolicy::Quarantine(qpath.clone()),
                ..IngestConfig::default()
            },
        )
        .unwrap();
        assert_eq!(got.health.rows_quarantined, 1);
        let text = std::fs::read_to_string(&qpath).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"kind\":\"quarantine\""), "{text}");
        assert!(text.contains("\"line\":3"), "{text}");
        assert!(text.contains("expected 2"), "{text}");
        std::fs::remove_file(&qpath).ok();
    }

    #[test]
    fn broken_header_is_fatal_under_every_policy() {
        for policy in [BadRowPolicy::Abort, BadRowPolicy::Skip] {
            let err = ingest_str(
                "a\"b,c\n1,2\n",
                &IngestConfig {
                    on_bad_row: policy,
                    ..IngestConfig::default()
                },
            )
            .unwrap_err();
            assert!(matches!(err, IngestError::Header { .. }), "{err:?}");
        }
        let err = ingest_str("", &IngestConfig::default()).unwrap_err();
        assert!(matches!(err, IngestError::Header { .. }), "{err:?}");
    }

    #[test]
    fn memory_budget_engages_sampling_rung() {
        let csv = clean_csv(400);
        // A budget big enough for the dictionaries and the chunk working
        // set but too small for all 400 rows of codes.
        let got = ingest_str(
            &csv,
            &IngestConfig {
                chunk_rows: Some(32),
                memory_budget: Some(6_000),
                ..IngestConfig::default()
            },
        )
        .unwrap();
        assert!(got.health.sampled);
        assert!(got.health.keep_every >= 2);
        assert!(got.health.degraded());
        assert!(got.dataset.nrows() < 400);
        assert!(got.dataset.nrows() > 0);
        assert!(got.health.peak_bytes > 0);
        // The kept rows are the deterministic stride-k subsample.
        let stride = got.health.keep_every as usize;
        let resident = read_csv_str(&csv).unwrap();
        for (kept_idx, orig_idx) in (0..400).step_by(stride).enumerate() {
            if kept_idx >= got.dataset.nrows() {
                break;
            }
            assert_eq!(
                got.dataset.value(kept_idx, 0),
                resident.value(orig_idx, 0),
                "kept row {kept_idx} should be original row {orig_idx}"
            );
        }
    }

    #[test]
    fn impossible_budget_is_a_typed_error() {
        let csv = clean_csv(64);
        let err = ingest_str(
            &csv,
            &IngestConfig {
                chunk_rows: Some(8),
                memory_budget: Some(16),
                ..IngestConfig::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                IngestError::MemoryBudget {
                    stage: "chunk merge",
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn budget_sampling_matches_resident_read_of_sampled_rows() {
        // Bit-identity of the degraded run: ingesting under a budget must
        // equal the resident read of exactly the kept row subset.
        let csv = clean_csv(256);
        let got = ingest_str(
            &csv,
            &IngestConfig {
                chunk_rows: Some(32),
                memory_budget: Some(4_000),
                ..IngestConfig::default()
            },
        )
        .unwrap();
        assert!(got.health.sampled);
        let stride = got.health.keep_every as usize;
        let mut sampled_csv = String::from("zip,city,state\n");
        for (i, line) in clean_csv(256).lines().skip(1).enumerate() {
            if i % stride == 0 {
                sampled_csv.push_str(line);
                sampled_csv.push('\n');
            }
        }
        let resident = read_csv_str(&sampled_csv).unwrap();
        assert_eq!(got.dataset.nrows(), resident.nrows());
        for a in 0..3 {
            assert_eq!(got.dataset.column(a).codes(), resident.column(a).codes());
        }
    }

    #[test]
    fn fault_short_read_truncates_but_degrades_gracefully() {
        let csv = clean_csv(2000);
        let _f = fdx_obs::faults::arm_times(FAULT_SHORT_READ, 1);
        let got = ingest_str(
            &csv,
            &IngestConfig {
                on_bad_row: BadRowPolicy::Skip,
                ..IngestConfig::default()
            },
        )
        .unwrap();
        assert!(got.health.degraded());
        assert!(
            got.health.notes.iter().any(|n| n.contains("short read")),
            "{:?}",
            got.health.notes
        );
        assert!(got.dataset.nrows() < 2000);
    }

    #[test]
    fn fault_disk_stall_is_noted_and_run_completes() {
        let csv = clean_csv(50);
        let _f = fdx_obs::faults::arm_times(FAULT_DISK_STALL, 1);
        let got = ingest_str(&csv, &IngestConfig::default()).unwrap();
        assert_eq!(got.dataset.nrows(), 50, "stall must not lose data");
        assert!(got.health.degraded());
        assert!(
            got.health.notes.iter().any(|n| n.contains("disk stall")),
            "{:?}",
            got.health.notes
        );
    }

    #[test]
    fn fault_corrupt_chunk_quarantines_whole_chunk() {
        let csv = clean_csv(40);
        let _f = fdx_obs::faults::arm_times(FAULT_CORRUPT_CHUNK, 1);
        let got = ingest_str(
            &csv,
            &IngestConfig {
                chunk_rows: Some(10),
                on_bad_row: BadRowPolicy::Skip,
                ..IngestConfig::default()
            },
        )
        .unwrap();
        assert_eq!(got.health.rows_quarantined, 10);
        assert_eq!(got.dataset.nrows(), 30);
        assert!(got.health.degraded());
    }

    #[test]
    fn fault_oom_at_chunk_forces_sampling_rung() {
        let csv = clean_csv(64);
        let _f = fdx_obs::faults::arm_times(FAULT_OOM_AT_CHUNK, 1);
        let got = ingest_str(
            &csv,
            &IngestConfig {
                chunk_rows: Some(16),
                ..IngestConfig::default()
            },
        )
        .unwrap();
        assert!(got.health.sampled);
        assert_eq!(got.health.keep_every, 2);
        assert!(got.health.degraded());
    }

    #[test]
    fn health_json_shape() {
        let csv = "a,b\n1,2\noops\n";
        let got = ingest_str(
            csv,
            &IngestConfig {
                on_bad_row: BadRowPolicy::Skip,
                ..IngestConfig::default()
            },
        )
        .unwrap();
        let j = got.health.to_json();
        assert!(j.starts_with(r#"{"kind":"ingest","source":"<mem>""#), "{j}");
        for key in [
            "chunks",
            "rows_read",
            "rows_kept",
            "rows_quarantined",
            "bytes_read",
            "peak_bytes",
            "policy",
            "sampled",
            "keep_every",
            "notes",
            "degraded",
        ] {
            assert!(j.contains(&format!("\"{key}\":")), "{key} missing: {j}");
        }
        assert!(j.contains("\"degraded\":true"), "{j}");
        assert!(got.health.render().contains("quarantined"), "render");
    }

    #[test]
    fn meter_tracks_peak() {
        let mut m = MemoryMeter::default();
        m.charge(100);
        m.charge(50);
        m.release(120);
        assert_eq!(m.current(), 30);
        assert_eq!(m.peak(), 150);
        m.release(1000);
        assert_eq!(m.current(), 0);
        assert_eq!(m.peak(), 150);
    }
}
