use std::fmt;

/// Index of an attribute within a [`Schema`].
pub type AttrId = usize;

/// Coarse attribute type, inferred on ingestion or declared by generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// Dictionary-coded categorical data (also the fallback for text).
    Categorical,
    /// Integer-valued data.
    Integer,
    /// Real-valued data.
    Real,
}

/// A named, typed attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name, unique within its schema.
    pub name: String,
    /// Declared or inferred type.
    pub ty: AttrType,
}

impl Attribute {
    /// Creates a categorical attribute — the common case for FD discovery.
    pub fn categorical(name: impl Into<String>) -> Attribute {
        Attribute {
            name: name.into(),
            ty: AttrType::Categorical,
        }
    }

    /// Creates an attribute with an explicit type.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Attribute {
        Attribute {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of attributes describing a relation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema from attributes.
    ///
    /// # Panics
    ///
    /// Panics if two attributes share a name — FD output would be ambiguous.
    pub fn new(attributes: Vec<Attribute>) -> Schema {
        for i in 0..attributes.len() {
            for j in (i + 1)..attributes.len() {
                assert_ne!(
                    attributes[i].name, attributes[j].name,
                    "duplicate attribute name {:?}",
                    attributes[i].name
                );
            }
        }
        Schema { attributes }
    }

    /// Builds an all-categorical schema from names.
    pub fn from_names(names: &[&str]) -> Schema {
        Schema::new(names.iter().map(|n| Attribute::categorical(*n)).collect())
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// `true` if the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// The attribute at `id`.
    pub fn attribute(&self, id: AttrId) -> &Attribute {
        &self.attributes[id]
    }

    /// The attribute name at `id`.
    pub fn name(&self, id: AttrId) -> &str {
        &self.attributes[id].name
    }

    /// All attributes, in schema order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Looks up an attribute id by name.
    pub fn id_of(&self, name: &str) -> Option<AttrId> {
        self.attributes.iter().position(|a| a.name == name)
    }

    /// All attribute ids, in schema order.
    pub fn ids(&self) -> impl Iterator<Item = AttrId> + '_ {
        0..self.attributes.len()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R(")?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", a.name)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_names_builds_categoricals() {
        let s = Schema::from_names(&["a", "b"]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.name(1), "b");
        assert_eq!(s.attribute(0).ty, AttrType::Categorical);
    }

    #[test]
    fn id_lookup() {
        let s = Schema::from_names(&["zip", "city", "state"]);
        assert_eq!(s.id_of("city"), Some(1));
        assert_eq!(s.id_of("nope"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute name")]
    fn duplicate_names_rejected() {
        Schema::from_names(&["a", "a"]);
    }

    #[test]
    fn display_lists_names() {
        let s = Schema::from_names(&["x", "y"]);
        assert_eq!(s.to_string(), "R(x, y)");
    }
}
