//! Checksummed, versioned snapshot records for crash-safe dataset sessions.
//!
//! The serve layer persists uploaded datasets (and cached discovery
//! results) as *snapshot records* under `--session-dir`. A record is a
//! single self-validating blob:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "FDXSNAP1"
//! 8       2     format version (little-endian u16, currently 1)
//! 10      2     record kind    (little-endian u16; 1 = dataset, 2 = result)
//! 12      8     payload length (little-endian u64)
//! 20      n     payload bytes
//! 20+n    4     CRC-32 (IEEE) over bytes [0, 20+n)
//! ```
//!
//! Every field a reader needs to reject a damaged file comes *before* the
//! payload, and the trailing CRC covers header and payload both, so the
//! recovery scan can classify any torn, truncated, or bit-flipped file
//! with a typed [`SnapshotError`] — never a panic, never a silent
//! half-read. Records are written through `fdx_obs::write_atomic`, which
//! makes a *whole* record appear or nothing; the decoder's job is to
//! survive the cases where that contract was violated underneath us
//! (power loss mid-rename on exotic filesystems, manual tampering, fault
//! injection in tests).
//!
//! The dataset payload codec is canonical and bit-exact: dictionary
//! values serialize tagged (ints as little-endian two's complement,
//! floats by IEEE bit pattern), so `decode_dataset(encode_dataset(ds))`
//! reproduces `ds` exactly and the FNV-1a [`dataset_content_hash`] over
//! the payload is a stable content address for upload deduplication.

use std::fmt;

use crate::column::{Column, NULL_CODE};
use crate::dataset::Dataset;
use crate::schema::{AttrType, Attribute, Schema};
use crate::value::Value;

/// Leading magic of every snapshot record.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"FDXSNAP1";

/// Current record format version.
pub const SNAPSHOT_VERSION: u16 = 1;

/// Record kind tag for a serialized [`Dataset`].
pub const KIND_DATASET: u16 = 1;

/// Record kind tag for a cached discovery result.
pub const KIND_RESULT: u16 = 2;

/// Header bytes before the payload: magic + version + kind + length.
pub const HEADER_LEN: usize = 8 + 2 + 2 + 8;

/// Why a snapshot failed to decode. Every variant is a *typed* recovery
/// outcome — the startup scan quarantines the file and keeps serving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file is shorter than its header + declared payload + CRC
    /// claim — the classic torn/truncated write.
    Truncated {
        /// Bytes the record claims to need.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The leading magic is not `FDXSNAP1` — not a snapshot at all.
    BadMagic,
    /// The format version is newer (or older) than this reader speaks.
    BadVersion {
        /// Version found in the header.
        found: u16,
    },
    /// The trailing CRC-32 does not match the header + payload bytes.
    BadCrc {
        /// CRC stored in the record.
        stored: u32,
        /// CRC computed over the bytes present.
        computed: u32,
    },
    /// Extra bytes follow a structurally complete record.
    TrailingBytes {
        /// Number of surplus bytes.
        extra: usize,
    },
    /// The payload passed the CRC but does not decode as its kind claims
    /// (an encoder bug or a hand-crafted record).
    Corrupt {
        /// What failed inside the payload.
        detail: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated snapshot: {actual} of {expected} bytes present"
                )
            }
            SnapshotError::BadMagic => write!(f, "bad snapshot magic"),
            SnapshotError::BadVersion { found } => {
                write!(f, "unsupported snapshot version {found}")
            }
            SnapshotError::BadCrc { stored, computed } => write!(
                f,
                "snapshot crc mismatch: stored {stored:08x}, computed {computed:08x}"
            ),
            SnapshotError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after snapshot record")
            }
            SnapshotError::Corrupt { detail } => write!(f, "corrupt snapshot payload: {detail}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl SnapshotError {
    /// Short machine-readable reason, used in quarantine records and
    /// recovery metrics.
    pub fn reason(&self) -> &'static str {
        match self {
            SnapshotError::Truncated { .. } => "truncated",
            SnapshotError::BadMagic => "bad_magic",
            SnapshotError::BadVersion { .. } => "bad_version",
            SnapshotError::BadCrc { .. } => "bad_crc",
            SnapshotError::TrailingBytes { .. } => "trailing_bytes",
            SnapshotError::Corrupt { .. } => "corrupt_payload",
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over `bytes`.
/// Bitwise — no table — because snapshot I/O is dominated by disk, not
/// the checksum, and a 4-line loop cannot drift from its table.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// A decoded snapshot record: kind tag plus the validated payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotRecord {
    /// Record kind ([`KIND_DATASET`] or [`KIND_RESULT`]).
    pub kind: u16,
    /// Payload bytes, CRC-validated.
    pub payload: Vec<u8>,
}

/// Encode one snapshot record (header + payload + CRC).
pub fn encode_record(kind: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decode and validate one snapshot record. Checks, in order: magic,
/// version, declared length vs bytes present, trailing garbage, CRC.
pub fn decode_record(bytes: &[u8]) -> Result<SnapshotRecord, SnapshotError> {
    if bytes.len() < HEADER_LEN + 4 {
        // Too short even for an empty record; magic first so a wholly
        // foreign file reads as BadMagic, a cut-off real one as Truncated.
        if bytes.len() >= 8 && bytes[..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        return Err(SnapshotError::Truncated {
            expected: HEADER_LEN + 4,
            actual: bytes.len(),
        });
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[8], bytes[9]]);
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::BadVersion { found: version });
    }
    let kind = u16::from_le_bytes([bytes[10], bytes[11]]);
    let mut len8 = [0u8; 8];
    len8.copy_from_slice(&bytes[12..20]);
    let payload_len = u64::from_le_bytes(len8) as usize;
    let expected = HEADER_LEN
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(4))
        .ok_or(SnapshotError::Corrupt {
            detail: "payload length overflows".to_string(),
        })?;
    if bytes.len() < expected {
        return Err(SnapshotError::Truncated {
            expected,
            actual: bytes.len(),
        });
    }
    if bytes.len() > expected {
        return Err(SnapshotError::TrailingBytes {
            extra: bytes.len() - expected,
        });
    }
    let body = &bytes[..HEADER_LEN + payload_len];
    let mut crc4 = [0u8; 4];
    crc4.copy_from_slice(&bytes[HEADER_LEN + payload_len..expected]);
    let stored = u32::from_le_bytes(crc4);
    let computed = crc32(body);
    if stored != computed {
        return Err(SnapshotError::BadCrc { stored, computed });
    }
    Ok(SnapshotRecord {
        kind,
        payload: bytes[HEADER_LEN..HEADER_LEN + payload_len].to_vec(),
    })
}

// ---------------------------------------------------------------------------
// Canonical dataset payload codec.

fn corrupt(detail: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt {
        detail: detail.into(),
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        // Nulls never intern into a dictionary, but the codec stays total.
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(2);
            out.extend_from_slice(&f.0.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            out.push(3);
            put_str(out, s);
        }
    }
}

/// Sequential little-endian reader with typed exhaustion errors.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| corrupt(format!("payload exhausted reading {what}")))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self, what: &str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, SnapshotError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, SnapshotError> {
        let b = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn str(&mut self, what: &str) -> Result<String, SnapshotError> {
        let len = self.u32(what)? as usize;
        let b = self.take(len, what)?;
        String::from_utf8(b.to_vec()).map_err(|_| corrupt(format!("{what} is not utf-8")))
    }

    fn value(&mut self) -> Result<Value, SnapshotError> {
        match self.u8("value tag")? {
            0 => Ok(Value::Null),
            1 => {
                let b = self.take(8, "int value")?;
                let mut a = [0u8; 8];
                a.copy_from_slice(b);
                Ok(Value::Int(i64::from_le_bytes(a)))
            }
            2 => {
                let bits = self.u64("float value")?;
                Ok(Value::float(f64::from_bits(bits)))
            }
            3 => Ok(Value::Text(self.str("text value")?)),
            t => Err(corrupt(format!("unknown value tag {t}"))),
        }
    }

    fn done(&self) -> Result<(), SnapshotError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(corrupt(format!(
                "{} unread payload bytes",
                self.bytes.len() - self.pos
            )))
        }
    }
}

fn attr_type_tag(ty: AttrType) -> u8 {
    match ty {
        AttrType::Categorical => 0,
        AttrType::Integer => 1,
        AttrType::Real => 2,
    }
}

fn attr_type_from_tag(tag: u8) -> Result<AttrType, SnapshotError> {
    match tag {
        0 => Ok(AttrType::Categorical),
        1 => Ok(AttrType::Integer),
        2 => Ok(AttrType::Real),
        t => Err(corrupt(format!("unknown attribute type tag {t}"))),
    }
}

/// Serialize a dataset to its canonical snapshot payload: schema, row
/// count, then per column the interned dictionary and the code vector.
pub fn encode_dataset(ds: &Dataset) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(ds.ncols() as u32).to_le_bytes());
    for attr in ds.schema().attributes() {
        put_str(&mut out, &attr.name);
        out.push(attr_type_tag(attr.ty));
    }
    out.extend_from_slice(&(ds.nrows() as u64).to_le_bytes());
    for col in ds.columns() {
        out.extend_from_slice(&(col.dictionary().len() as u32).to_le_bytes());
        for v in col.dictionary() {
            put_value(&mut out, v);
        }
        for &code in col.codes() {
            out.extend_from_slice(&code.to_le_bytes());
        }
    }
    out
}

/// Rebuild a dataset from its canonical payload — the bit-exact inverse
/// of [`encode_dataset`].
pub fn decode_dataset(payload: &[u8]) -> Result<Dataset, SnapshotError> {
    let mut cur = Cursor {
        bytes: payload,
        pos: 0,
    };
    let ncols = cur.u32("attribute count")? as usize;
    let mut attrs = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name = cur.str("attribute name")?;
        let ty = attr_type_from_tag(cur.u8("attribute type")?)?;
        attrs.push(Attribute::new(name, ty));
    }
    for i in 0..attrs.len() {
        for j in (i + 1)..attrs.len() {
            if attrs[i].name == attrs[j].name {
                return Err(corrupt(format!("duplicate attribute {:?}", attrs[i].name)));
            }
        }
    }
    let nrows = cur.u64("row count")? as usize;
    let mut columns = Vec::with_capacity(ncols);
    for c in 0..ncols {
        let dict_len = cur.u32("dictionary length")? as usize;
        let mut dict = Vec::with_capacity(dict_len);
        for _ in 0..dict_len {
            dict.push(cur.value()?);
        }
        let mut codes = Vec::with_capacity(nrows);
        for _ in 0..nrows {
            let code = cur.u32("code")?;
            if code != NULL_CODE && code as usize >= dict_len {
                return Err(corrupt(format!(
                    "code {code} out of range for dictionary of {dict_len} in column {c}"
                )));
            }
            codes.push(code);
        }
        columns.push(Column::from_codes(codes, dict));
    }
    cur.done()?;
    Ok(Dataset::new(Schema::new(attrs), columns))
}

/// FNV-1a 64-bit over the canonical dataset payload — the content address
/// of an uploaded dataset. Two uploads with identical values (in identical
/// row order) hash alike no matter how the CSV was formatted.
pub fn content_hash(payload: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in payload {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// [`content_hash`] of a dataset's canonical encoding.
pub fn dataset_content_hash(ds: &Dataset) -> u64 {
    content_hash(&encode_dataset(ds))
}

/// Render a content hash as the 16-hex-digit handle used on the wire.
pub fn handle_hex(hash: u64) -> String {
    format!("{hash:016x}")
}

/// Parse a 16-hex-digit dataset handle.
pub fn parse_handle(s: &str) -> Option<u64> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset() -> Dataset {
        let schema = Schema::new(vec![
            Attribute::new("city", AttrType::Categorical),
            Attribute::new("pop", AttrType::Integer),
            Attribute::new("temp", AttrType::Real),
        ]);
        let cities = Column::from_values(&[
            Value::text("nyc"),
            Value::text("sf"),
            Value::Null,
            Value::text("nyc"),
        ]);
        let pops =
            Column::from_values(&[Value::Int(8), Value::Int(1), Value::Int(8), Value::Int(-3)]);
        let temps = Column::from_values(&[
            Value::float(1.5),
            Value::float(-0.0),
            Value::Null,
            Value::float(f64::MAX),
        ]);
        Dataset::new(schema, vec![cities, pops, temps])
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn record_roundtrip() {
        let rec = encode_record(KIND_DATASET, b"hello");
        let dec = decode_record(&rec).unwrap();
        assert_eq!(dec.kind, KIND_DATASET);
        assert_eq!(dec.payload, b"hello");
        let empty = decode_record(&encode_record(KIND_RESULT, b"")).unwrap();
        assert_eq!(empty.kind, KIND_RESULT);
        assert!(empty.payload.is_empty());
    }

    #[test]
    fn truncation_is_typed_at_every_cut() {
        let rec = encode_record(KIND_DATASET, b"payload-bytes");
        for cut in 0..rec.len() {
            let err = decode_record(&rec[..cut]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated { .. })
                    || matches!(err, SnapshotError::BadCrc { .. }),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn corruption_is_typed_at_every_byte() {
        let rec = encode_record(KIND_DATASET, b"payload");
        for i in 0..rec.len() {
            let mut bad = rec.clone();
            bad[i] ^= 0x40;
            let err = decode_record(&bad).unwrap_err();
            match i {
                0..=7 => assert_eq!(err, SnapshotError::BadMagic, "byte {i}"),
                8..=9 => assert!(matches!(err, SnapshotError::BadVersion { .. }), "byte {i}"),
                12..=19 => assert!(
                    matches!(err, SnapshotError::Truncated { .. })
                        | matches!(err, SnapshotError::TrailingBytes { .. })
                        | matches!(err, SnapshotError::Corrupt { .. }),
                    "byte {i}: {err:?}"
                ),
                _ => assert!(
                    matches!(err, SnapshotError::BadCrc { .. }),
                    "byte {i}: {err:?}"
                ),
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut rec = encode_record(KIND_DATASET, b"x");
        rec.extend_from_slice(b"junk");
        assert_eq!(
            decode_record(&rec).unwrap_err(),
            SnapshotError::TrailingBytes { extra: 4 }
        );
    }

    #[test]
    fn bad_magic_and_version() {
        assert_eq!(
            decode_record(b"NOTASNAP________________").unwrap_err(),
            SnapshotError::BadMagic
        );
        let mut rec = encode_record(KIND_DATASET, b"x");
        rec[8] = 9; // version 9
                    // Version check precedes CRC: an unreadable future format must not
                    // masquerade as bit rot.
        assert_eq!(
            decode_record(&rec).unwrap_err(),
            SnapshotError::BadVersion { found: 9 }
        );
    }

    #[test]
    fn dataset_roundtrips_bit_identically() {
        let ds = sample_dataset();
        let payload = encode_dataset(&ds);
        let back = decode_dataset(&payload).unwrap();
        assert_eq!(back, ds);
        // Bit-exact: re-encoding the decoded dataset is byte-identical.
        assert_eq!(encode_dataset(&back), payload);
    }

    #[test]
    fn content_hash_is_stable_and_format_insensitive() {
        let ds = sample_dataset();
        let h1 = dataset_content_hash(&ds);
        let h2 = dataset_content_hash(&sample_dataset());
        assert_eq!(h1, h2);
        let other = Dataset::from_string_rows(&["a"], &[&["1"], &["2"]]);
        assert_ne!(h1, dataset_content_hash(&other));
        // CSV formatting differences that parse to equal values hash alike.
        let a = crate::read_csv_str("x,y\n1, a\n2,b\n").unwrap();
        let b = crate::read_csv_str("x,y\n1,a\n2,b \n").unwrap();
        assert_eq!(dataset_content_hash(&a), dataset_content_hash(&b));
    }

    #[test]
    fn handles_roundtrip_and_reject_garbage() {
        let h = 0x0123_4567_89ab_cdef_u64;
        assert_eq!(handle_hex(h), "0123456789abcdef");
        assert_eq!(parse_handle(&handle_hex(h)), Some(h));
        assert_eq!(parse_handle("0123456789abcde"), None, "too short");
        assert_eq!(parse_handle("0123456789abcdeg"), None, "non-hex");
        assert_eq!(parse_handle(""), None);
    }

    #[test]
    fn corrupt_payload_is_typed_not_a_panic() {
        // A CRC-valid record whose payload lies about its structure.
        let mut payload = encode_dataset(&sample_dataset());
        payload.truncate(payload.len() - 3);
        let err = decode_dataset(&payload).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt { .. }), "{err:?}");
        // Out-of-range code.
        let schema_only = {
            let mut out = Vec::new();
            out.extend_from_slice(&1u32.to_le_bytes());
            put_str(&mut out, "a");
            out.push(0);
            out.extend_from_slice(&1u64.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes()); // empty dictionary
            out.extend_from_slice(&7u32.to_le_bytes()); // code 7 into empty dict
            out
        };
        let err = decode_dataset(&schema_only).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt { .. }), "{err:?}");
        // Reasons are stable strings for metrics.
        assert_eq!(err.reason(), "corrupt_payload");
        assert_eq!(SnapshotError::BadMagic.reason(), "bad_magic");
    }
}
