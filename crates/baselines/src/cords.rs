//! CORDS (Ilyas, Markl, Haas, Brown, Aboulnaga — SIGMOD 2004).
//!
//! CORDS analyzes *pairs* of columns on a sample: soft FDs are detected
//! from distinct-value counts (`|d(A)| ≈ |d(A,B)|` means `A` nearly
//! determines `B`) and correlations via a chi-squared test. This is a
//! best-effort reimplementation, as is the paper's (§5.1: "this baseline is
//! a best-effort implementation of CORDS since the code is not available").
//! Its pairwise, marginal view is exactly what the paper critiques: it
//! detects dependence, not the conditional-independence structure true FDs
//! induce.

use fdx_data::{Dataset, Fd, FdSet};
use fdx_stats::{chi_squared, group_ids};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration of [`Cords`].
#[derive(Debug, Clone)]
pub struct CordsConfig {
    /// Row sample size (CORDS works on samples by design).
    pub sample_rows: usize,
    /// Minimum soft-FD strength `|d(A)| / |d(A,B)|`.
    pub min_strength: f64,
    /// Keys are skipped: attributes with more distinct values than this
    /// fraction of the sample cannot be useful determinants.
    pub max_key_ratio: f64,
    /// Chi-squared p-value below which a pair also counts as correlated
    /// (used to corroborate borderline soft FDs).
    pub p_value: f64,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for CordsConfig {
    fn default() -> Self {
        CordsConfig {
            sample_rows: 2_000,
            min_strength: 0.90,
            max_key_ratio: 0.85,
            p_value: 1e-3,
            seed: 0xC02D5,
        }
    }
}

/// The CORDS discoverer.
#[derive(Debug, Clone, Default)]
pub struct Cords {
    config: CordsConfig,
}

impl Cords {
    /// Creates a CORDS instance.
    pub fn new(config: CordsConfig) -> Cords {
        Cords { config }
    }

    /// Detects soft FDs between column pairs on a row sample.
    pub fn discover(&self, ds: &Dataset) -> FdSet {
        let n = ds.nrows();
        let k = ds.ncols();
        let mut fds = FdSet::new();
        if n < 2 || k < 2 {
            return fds;
        }
        // Sample rows without replacement (reservoir-free: shuffle prefix).
        let sample = if n <= self.config.sample_rows {
            ds.clone()
        } else {
            let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..self.config.sample_rows {
                let j = rng.gen_range(i..n);
                idx.swap(i, j);
            }
            ds.gather(&idx[..self.config.sample_rows])
        };
        let m = sample.nrows() as f64;

        let distinct: Vec<usize> = (0..k).map(|a| group_ids(&sample, &[a]).count).collect();
        for a in 0..k {
            // Key and constant filters.
            if distinct[a] as f64 / m > self.config.max_key_ratio || distinct[a] < 2 {
                continue;
            }
            for b in 0..k {
                if a == b || distinct[b] < 2 {
                    continue;
                }
                // Soft-FD strength: the fraction of sampled rows whose `b`
                // value is the majority within their `a` group (1 - g3) --
                // robust to the few violations noise introduces, unlike a
                // raw distinct-count ratio.
                let ga = group_ids(&sample, &[a]);
                let gab = group_ids(&sample, &[a, b]);
                let mut joint_sizes: std::collections::HashMap<(u32, u32), usize> =
                    std::collections::HashMap::new();
                for (&gia, &giab) in ga.ids.iter().zip(&gab.ids) {
                    *joint_sizes.entry((gia, giab)).or_insert(0) += 1;
                }
                // Collect-then-sort before walking the cells: integer max is
                // order-insensitive in value, but result paths must not
                // depend on hash iteration order (FDX-L009).
                let mut cells: Vec<((u32, u32), usize)> = joint_sizes.into_iter().collect();
                cells.sort_unstable();
                let mut majority = vec![0usize; ga.count];
                for ((gia, _), c) in cells {
                    let slot = &mut majority[gia as usize];
                    *slot = (*slot).max(c);
                }
                let strength = majority.iter().sum::<usize>() as f64 / m;
                if strength >= self.config.min_strength {
                    fds.insert(Fd::new([a], b));
                } else if strength >= self.config.min_strength - 0.05 {
                    // Borderline: corroborate with the chi-squared test.
                    let gb = group_ids(&sample, &[b]);
                    let test = chi_squared(&ga, &gb);
                    if test.p_value < self.config.p_value && test.cramers_v > 0.5 {
                        fds.insert(Fd::new([a], b));
                    }
                }
            }
        }
        fds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        let mut rows = Vec::new();
        for i in 0..120 {
            let zip = i % 12;
            rows.push([
                format!("z{zip}"),
                format!("c{}", zip / 4),
                format!("n{}", (i * 31 + 7) % 9),
            ]);
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        Dataset::from_string_rows(&["zip", "city", "noise"], &slices)
    }

    #[test]
    fn finds_soft_fd() {
        let fds = Cords::default().discover(&ds());
        assert!(fds.fds().contains(&Fd::new([0], 1)), "{fds:?}");
        assert!(!fds.fds().contains(&Fd::new([1], 0)), "reverse is not soft");
    }

    #[test]
    fn ignores_independent_noise() {
        let fds = Cords::default().discover(&ds());
        assert!(!fds.fds().contains(&Fd::new([0], 2)), "{fds:?}");
        assert!(!fds.fds().contains(&Fd::new([2], 1)), "{fds:?}");
    }

    #[test]
    fn skips_key_determinants() {
        let mut rows = Vec::new();
        for i in 0..50 {
            rows.push([format!("k{i}"), format!("v{}", i % 3)]);
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        let keyed = Dataset::from_string_rows(&["id", "v"], &slices);
        let fds = Cords::default().discover(&keyed);
        assert!(fds.is_empty(), "keys are not useful determinants: {fds:?}");
    }

    #[test]
    fn tolerates_mild_noise() {
        let mut noisy = ds();
        // Violate zip -> city in 2 of 120 rows: strength 12/14 stays above
        // the 0.8 default.
        for r in [0usize, 40] {
            noisy
                .column_mut(1)
                .set_value(r, fdx_data::Value::text("weird"));
        }
        let fds = Cords::default().discover(&noisy);
        assert!(fds.fds().contains(&Fd::new([0], 1)), "{fds:?}");
    }

    #[test]
    fn sampling_is_deterministic() {
        let big = {
            let mut rows = Vec::new();
            for i in 0..5_000 {
                let zip = i % 40;
                rows.push([format!("z{zip}"), format!("c{}", zip / 5)]);
            }
            let refs: Vec<Vec<&str>> = rows
                .iter()
                .map(|r| r.iter().map(String::as_str).collect())
                .collect();
            let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
            Dataset::from_string_rows(&["zip", "city"], &slices)
        };
        let a = Cords::default().discover(&big);
        let b = Cords::default().discover(&big);
        assert_eq!(a, b);
        assert!(a.fds().contains(&Fd::new([0], 1)));
    }
}
