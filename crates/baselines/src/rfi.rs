//! Reliable Fraction of Information (Mandros, Boley, Vreeken — KDD 2017).
//!
//! RFI scores a candidate determinant `X` for a target `Y` with the
//! bias-corrected `F̂₀(X, Y) = (Î(X;Y) − E[Î(X;Y)]) / Ĥ(Y)`, where the
//! expectation is taken under the permutation (hypergeometric) null model
//! and computed *exactly* — the cost centre that makes RFI the slowest
//! method in the paper's Tables 5–6, which this implementation reproduces
//! deliberately. Per target attribute a best-first search with an
//! admissible plug-in upper bound explores determinant sets; the
//! `α` parameter relaxes the bound (`α < 1` prunes more aggressively,
//! matching the paper's RFI(.3)/RFI(.5)/RFI(1.0) variants), and as in the
//! paper's methodology only the top-1 FD per attribute is kept.

use fdx_data::{AttrId, Dataset, Fd, FdSet};
use fdx_obs::Span;
use fdx_stats::{entropy, expected_mutual_information, group_ids, mutual_information};

/// Configuration of [`Rfi`].
#[derive(Debug, Clone)]
pub struct RfiConfig {
    /// Approximation parameter `α ∈ (0, 1]`: a branch is explored only if
    /// its optimistic bound times `α` exceeds the best score so far.
    pub alpha: f64,
    /// Maximum determinant size.
    pub max_lhs: usize,
    /// Minimum score for an FD to be reported.
    pub min_score: f64,
    /// Wall-clock budget across all targets.
    pub max_seconds: f64,
}

impl Default for RfiConfig {
    fn default() -> Self {
        RfiConfig {
            alpha: 1.0,
            max_lhs: 3,
            min_score: 0.2,
            max_seconds: 120.0,
        }
    }
}

/// The RFI discoverer.
#[derive(Debug, Clone, Default)]
pub struct Rfi {
    config: RfiConfig,
}

impl Rfi {
    /// Creates an RFI instance.
    pub fn new(config: RfiConfig) -> Rfi {
        Rfi { config }
    }

    /// The reliable fraction of information of `x → y` on `ds`.
    ///
    /// Returns a large negative sentinel when the exact expected-MI
    /// computation is infeasible (near-key marginals on large relations):
    /// the hypergeometric sum is `O(|X|·|Y|·n)` and such determinants are
    /// exactly the ones the correction would zero out anyway.
    pub fn score(&self, ds: &Dataset, x: &[AttrId], y: AttrId) -> f64 {
        let hy = entropy(ds, &[y]);
        if hy <= 0.0 {
            return 0.0;
        }
        let gx = group_ids(ds, x);
        let gy = group_ids(ds, &[y]);
        let cost = gx.count as u64 * gy.count as u64;
        if cost.saturating_mul(ds.nrows() as u64 / (gx.count.max(1) as u64)) > 50_000_000 {
            return -1.0;
        }
        let mi = mutual_information(ds, y, x);
        let emi = expected_mutual_information(&gx.sizes(), &gy.sizes(), ds.nrows());
        (mi - emi) / hy
    }

    /// Discovers the top-1 FD per attribute (the paper's protocol: "we keep
    /// the top-1 FD per attribute to obtain a parsimonious model").
    pub fn discover(&self, ds: &Dataset) -> FdSet {
        // The span doubles as the budget clock across all targets.
        let span = Span::enter("rfi.discover");
        let k = ds.ncols();
        let mut fds = FdSet::new();
        let mut total_expansions = 0u64;
        let mut total_scored = 0u64;
        for y in 0..k {
            if span.elapsed_secs() > self.config.max_seconds {
                break;
            }
            if let Some((best_x, best_score)) =
                self.search_target(ds, y, &span, &mut total_expansions, &mut total_scored)
            {
                if best_score >= self.config.min_score {
                    fds.insert(Fd::new(best_x, y));
                }
            }
        }
        fdx_obs::counter_add("rfi.expansions", total_expansions);
        fdx_obs::counter_add("rfi.scored", total_scored);
        fds
    }

    /// Best-first search over determinant sets for one target.
    fn search_target(
        &self,
        ds: &Dataset,
        y: AttrId,
        span: &Span,
        total_expansions: &mut u64,
        total_scored: &mut u64,
    ) -> Option<(Vec<AttrId>, f64)> {
        let k = ds.ncols();
        let hy = entropy(ds, &[y]);
        if hy <= 0.0 {
            return None;
        }
        // Optimistic bound: the plug-in fraction of information, which only
        // grows with supersets and ignores the (always non-negative)
        // correction.
        let bound = |x: &[AttrId]| mutual_information(ds, y, x) / hy;

        let mut best: Option<(Vec<AttrId>, f64)> = None;
        // Frontier of (score, set), expanded best-score-first.
        let mut frontier: Vec<(f64, Vec<AttrId>)> = Vec::new();
        for a in 0..k {
            if a == y {
                continue;
            }
            if span.elapsed_secs() > self.config.max_seconds {
                break;
            }
            let x = vec![a];
            *total_scored += 1;
            let s = self.score(ds, &x, y);
            if best.as_ref().map_or(true, |(_, b)| s > *b) {
                best = Some((x.clone(), s));
            }
            frontier.push((s, x));
        }
        let mut expansions = 0usize;
        loop {
            // Best-first: extract the frontier's top-scoring node.
            let Some(top) = frontier
                .iter()
                .enumerate()
                .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
                .map(|(i, _)| i)
            else {
                break;
            };
            let (_, x) = frontier.swap_remove(top);
            expansions += 1;
            *total_expansions += 1;
            if expansions > 5_000 || span.elapsed_secs() > self.config.max_seconds {
                break;
            }
            if x.len() >= self.config.max_lhs {
                continue;
            }
            let best_score = best.as_ref().map_or(0.0, |(_, b)| *b);
            // α-relaxed admissible pruning.
            if bound(&x) * self.config.alpha <= best_score {
                continue;
            }
            for a in 0..k {
                if a == y || x.contains(&a) {
                    continue;
                }
                let mut ext = x.clone();
                ext.push(a);
                ext.sort_unstable();
                *total_scored += 1;
                let s = self.score(ds, &ext, y);
                if best.as_ref().map_or(true, |(_, b)| s > *b) {
                    best = Some((ext.clone(), s));
                }
                frontier.push((s, ext));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd_ds() -> Dataset {
        let mut rows = Vec::new();
        for i in 0..60 {
            let a = i % 10;
            rows.push([
                format!("a{a}"),
                format!("b{}", a / 2),
                format!("r{}", (i * 17 + 5) % 7),
            ]);
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        Dataset::from_string_rows(&["a", "b", "rand"], &slices)
    }

    #[test]
    fn true_fd_outscores_reverse_and_noise() {
        let ds = fd_ds();
        let rfi = Rfi::default();
        let s_true = rfi.score(&ds, &[0], 1);
        let s_rev = rfi.score(&ds, &[1], 0);
        let s_noise = rfi.score(&ds, &[2], 1);
        assert!(s_true > s_rev, "{s_true} vs {s_rev}");
        assert!(s_true > s_noise + 0.3, "{s_true} vs {s_noise}");
    }

    #[test]
    fn discovers_top1_per_attribute() {
        let fds = Rfi::default().discover(&fd_ds());
        // At most one FD per rhs.
        let mut seen = std::collections::HashSet::new();
        for fd in fds.iter() {
            assert!(seen.insert(fd.rhs()), "two FDs for one rhs: {fds:?}");
        }
        assert!(
            fds.iter().any(|fd| fd.rhs() == 1 && fd.lhs() == [0]),
            "{fds:?}"
        );
    }

    #[test]
    fn alpha_only_affects_pruning_not_correctness_here() {
        let ds = fd_ds();
        let full = Rfi::new(RfiConfig {
            alpha: 1.0,
            ..Default::default()
        })
        .discover(&ds);
        let pruned = Rfi::new(RfiConfig {
            alpha: 0.3,
            ..Default::default()
        })
        .discover(&ds);
        // The dominant FD a -> b survives any pruning level.
        for fds in [&full, &pruned] {
            assert!(fds.iter().any(|fd| fd.rhs() == 1 && fd.lhs() == [0]));
        }
    }

    #[test]
    fn unique_key_lhs_is_penalized() {
        // Unique key empirically "determines" b, but RFI's correction kills
        // it (the §2.1 overfitting critique).
        let mut rows = Vec::new();
        for i in 0..40 {
            rows.push([format!("k{i}"), format!("b{}", i % 2)]);
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        let ds = Dataset::from_string_rows(&["key", "b"], &slices);
        let s = Rfi::default().score(&ds, &[0], 1);
        assert!(s < 0.15, "key lhs should score near zero, got {s}");
    }
}
