//! TANE (Huhtala, Kärkkäinen, Porkka, Toivonen 1999) with approximate FDs.

use std::collections::HashMap;

use fdx_data::{Dataset, Fd, FdSet};

use crate::lattice::{self, AttrSet};
use crate::partition::StrippedPartition;

/// Configuration of [`Tane`].
#[derive(Debug, Clone)]
pub struct TaneConfig {
    /// Maximum `g3` error an approximate FD may have. The paper tunes this
    /// to the known noise level per dataset; the released TANE's default is
    /// (near-)exact discovery.
    pub max_error: f64,
    /// Maximum determinant size explored (lattice level cap).
    pub max_lhs: usize,
    /// Wall-clock budget; the search stops cleanly when exceeded, matching
    /// the paper's 8-hour-timeout methodology at bench scale.
    pub max_seconds: f64,
}

impl Default for TaneConfig {
    fn default() -> Self {
        TaneConfig {
            max_error: 0.01,
            max_lhs: 4,
            max_seconds: 60.0,
        }
    }
}

/// The TANE discoverer: levelwise lattice search over stripped partitions
/// with candidate-rhs (`C⁺`) and key pruning.
#[derive(Debug, Clone, Default)]
pub struct Tane {
    config: TaneConfig,
}

impl Tane {
    /// Creates a TANE instance.
    pub fn new(config: TaneConfig) -> Tane {
        Tane { config }
    }

    /// Discovers all minimal (approximate) FDs with determinant size up to
    /// `max_lhs` and error at most `max_error`.
    ///
    /// Returns whatever was found so far if the time budget runs out.
    pub fn discover(&self, ds: &Dataset) -> FdSet {
        let k = ds.ncols();
        assert!(
            k <= lattice::MAX_ATTRS,
            "TANE's lattice supports at most {} attributes",
            lattice::MAX_ATTRS
        );
        // The span doubles as the budget clock: `elapsed_secs` works whether
        // or not recording is enabled.
        let span = fdx_obs::Span::enter("tane.discover");
        let mut candidates_checked = 0u64;
        let mut validated = 0u64;
        let mut pruned = 0u64;
        let full: AttrSet = if k == lattice::MAX_ATTRS {
            u128::MAX
        } else {
            (1u128 << k) - 1
        };
        let mut fds = FdSet::new();

        // Level 1 setup.
        let mut level: Vec<AttrSet> = (0..k).map(lattice::singleton).collect();
        let mut partitions: HashMap<AttrSet, StrippedPartition> = level
            .iter()
            .enumerate()
            .map(|(a, &s)| (s, StrippedPartition::from_column(ds, a)))
            .collect();
        // C⁺ of the previous level (C⁺(∅) = R for level 1).
        let mut cplus_prev: HashMap<AttrSet, AttrSet> = HashMap::from([(0, full)]);

        'levels: for _depth in 1..=(self.config.max_lhs + 1) {
            if level.is_empty() || span.elapsed_secs() > self.config.max_seconds {
                break;
            }
            let mut cplus: HashMap<AttrSet, AttrSet> = HashMap::with_capacity(level.len());
            // compute_dependencies
            for &x in &level {
                if span.elapsed_secs() > self.config.max_seconds {
                    break 'levels;
                }
                let mut cp = full;
                for a in lattice::members(x) {
                    let sub = x & !lattice::singleton(a);
                    cp &= cplus_prev.get(&sub).copied().unwrap_or(0);
                }
                for a in lattice::members(x & cp) {
                    let sub = x & !lattice::singleton(a);
                    if sub == 0 {
                        continue; // FDs with empty determinants are not emitted
                    }
                    let (Some(px), Some(psub)) = (partitions.get(&x), partitions.get(&sub)) else {
                        continue;
                    };
                    candidates_checked += 1;
                    let error = psub.fd_error(px);
                    if error <= self.config.max_error {
                        validated += 1;
                        fds.insert(Fd::new(lattice::members(sub), a));
                        cp &= !lattice::singleton(a);
                        if fdx_linalg::is_exact_zero(error) {
                            // Exact FD: no attribute outside X can extend a
                            // minimal FD through this set.
                            cp &= x | !full;
                        }
                    }
                }
                cplus.insert(x, cp);
            }
            // prune: emit the key rule first — a (super)key trivially
            // determines every remaining rhs candidate (TANE's key pruning).
            for &x in &level {
                let Some(p) = partitions.get(&x) else {
                    continue;
                };
                if !p.is_key() {
                    continue;
                }
                let cp = cplus.get(&x).copied().unwrap_or(0);
                for a in lattice::members(cp & !x) {
                    // TANE's full key rule: X → A only if A survives in the
                    // C⁺ of every same-level neighbor X ∪ {A} ∖ {B} — this
                    // is what keeps key-derived FDs minimal.
                    let bit_a = lattice::singleton(a);
                    let minimal = lattice::members(x).into_iter().all(|b| {
                        let neighbor = (x | bit_a) & !lattice::singleton(b);
                        cplus.get(&neighbor).is_some_and(|&cp_n| cp_n & bit_a != 0)
                    });
                    if minimal {
                        validated += 1;
                        fds.insert(Fd::new(lattice::members(x), a));
                    }
                }
            }
            let before_prune = level.len();
            level.retain(|x| {
                cplus.get(x).map_or(false, |&cp| cp != 0)
                    && partitions.get(x).map_or(false, |p| !p.is_key())
            });
            pruned += (before_prune - level.len()) as u64;
            // generate next level with partition products
            let next = lattice::next_level(&level);
            let mut next_partitions: HashMap<AttrSet, StrippedPartition> =
                HashMap::with_capacity(next.len());
            for &cand in &next {
                if span.elapsed_secs() > self.config.max_seconds {
                    break;
                }
                // Split into two subsets whose partitions we hold.
                let m = lattice::members(cand);
                let first = lattice::singleton(m[0]);
                let rest = cand & !first;
                if let (Some(p1), Some(p2)) = (partitions.get(&first), partitions.get(&rest)) {
                    next_partitions.insert(cand, p1.product(p2));
                }
            }
            level = next
                .into_iter()
                .filter(|s| next_partitions.contains_key(s))
                .collect();
            // Accumulate: fd_error at level ℓ+1 reads the level-ℓ partition
            // of every one-smaller subset.
            partitions.extend(next_partitions);
            cplus_prev = cplus;
        }
        fdx_obs::counter_add("tane.candidates", candidates_checked);
        fdx_obs::counter_add("tane.validated", validated);
        fdx_obs::counter_add("tane.pruned", pruned);
        fds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_ds() -> Dataset {
        // a -> b exactly, c independent.
        let mut rows = Vec::new();
        for i in 0..24 {
            rows.push([
                format!("a{}", i % 6),
                format!("b{}", (i % 6) / 2),
                format!("c{}", (i * 7 + 3) % 5),
            ]);
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        Dataset::from_string_rows(&["a", "b", "c"], &slices)
    }

    #[test]
    fn finds_exact_fd() {
        let fds = Tane::default().discover(&exact_ds());
        assert!(
            fds.fds().contains(&Fd::new([0], 1)),
            "a -> b missing: {fds:?}"
        );
        // And does not invent b -> a (violated: b value maps to 2 a values).
        assert!(!fds.fds().contains(&Fd::new([1], 0)));
    }

    #[test]
    fn tolerates_noise_with_error_budget() {
        let mut ds = exact_ds();
        // Violate a -> b in one row out of 24.
        ds.column_mut(1).set_value(0, fdx_data::Value::text("zz"));
        let strict = Tane::new(TaneConfig {
            max_error: 0.0,
            ..Default::default()
        })
        .discover(&ds);
        assert!(!strict.fds().contains(&Fd::new([0], 1)));
        let tolerant = Tane::new(TaneConfig {
            max_error: 0.05,
            ..Default::default()
        })
        .discover(&ds);
        assert!(tolerant.fds().contains(&Fd::new([0], 1)), "{tolerant:?}");
    }

    #[test]
    fn emits_only_minimal_fds() {
        let fds = Tane::default().discover(&exact_ds());
        // {a, c} -> b must not appear: a -> b already holds.
        assert!(!fds.fds().contains(&Fd::new([0, 2], 1)), "{fds:?}");
    }

    #[test]
    fn multi_attribute_determinant() {
        // y = f(a, b); neither a nor b alone suffices.
        let mut rows = Vec::new();
        for a in 0..4 {
            for b in 0..4 {
                for _ in 0..2 {
                    rows.push([
                        format!("a{a}"),
                        format!("b{b}"),
                        format!("y{}", (a * 3 + b * 5) % 7),
                    ]);
                }
            }
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        let ds = Dataset::from_string_rows(&["a", "b", "y"], &slices);
        let fds = Tane::default().discover(&ds);
        assert!(fds.fds().contains(&Fd::new([0, 1], 2)), "{fds:?}");
        assert!(!fds.fds().contains(&Fd::new([0], 2)));
        assert!(!fds.fds().contains(&Fd::new([1], 2)));
    }

    #[test]
    fn key_attributes_determine_everything() {
        let ds = Dataset::from_string_rows(&["id", "v"], &[&["1", "x"], &["2", "y"], &["3", "x"]]);
        let fds = Tane::default().discover(&ds);
        // id is a key: id -> v follows (trivially, zero error).
        assert!(fds.fds().contains(&Fd::new([0], 1)), "{fds:?}");
    }

    #[test]
    fn respects_time_budget() {
        let data = fdx_synth::generator::generate(&fdx_synth::SynthConfig {
            tuples: 400,
            attributes: 14,
            ..Default::default()
        });
        let t = Tane::new(TaneConfig {
            max_seconds: 0.001,
            ..Default::default()
        });
        let span = fdx_obs::Span::enter("tane.time_budget_test");
        let _ = t.discover(&data.noisy);
        assert!(span.elapsed_secs() < 5.0);
    }
}
