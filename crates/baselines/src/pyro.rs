//! A Pyro-flavoured approximate-FD search (Kruse & Naumann 2018).
//!
//! Pyro's defining idea relative to TANE: per-RHS searches that *estimate*
//! FD errors from samples of agreeing tuple pairs and only *validate*
//! promising candidates exactly. This reimplementation keeps that
//! estimate-then-validate structure (DESIGN.md, substitution #3): for every
//! RHS attribute it ascends the determinant lattice, discards candidates
//! whose sampled error is hopeless, validates survivors with exact
//! stripped-partition errors, and emits all minimal approximate FDs — the
//! near-exhaustive, high-recall/low-precision behaviour the paper observes
//! for Pyro (hundreds of FDs on real datasets, Table 6).

use std::collections::HashMap;

use fdx_data::{AttrId, Dataset, Fd, FdSet};
use fdx_obs::Span;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::lattice::{self, AttrSet};
use crate::partition::StrippedPartition;

/// Configuration of [`Pyro`].
#[derive(Debug, Clone)]
pub struct PyroConfig {
    /// Maximum error of an approximate FD (the paper sets this to the known
    /// noise rate per dataset).
    pub max_error: f64,
    /// Tuple pairs sampled for error estimation.
    pub sample_pairs: usize,
    /// Estimation slack: candidates whose estimated error exceeds
    /// `max_error + slack` are discarded without exact validation.
    pub estimate_slack: f64,
    /// Maximum determinant size.
    pub max_lhs: usize,
    /// Wall-clock budget.
    pub max_seconds: f64,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for PyroConfig {
    fn default() -> Self {
        PyroConfig {
            max_error: 0.01,
            sample_pairs: 5_000,
            estimate_slack: 0.05,
            max_lhs: 3,
            max_seconds: 60.0,
            seed: 0xB12D,
        }
    }
}

/// The Pyro-flavoured discoverer.
#[derive(Debug, Clone, Default)]
pub struct Pyro {
    config: PyroConfig,
}

/// Lattice counters accumulated across the per-RHS searches and flushed to
/// the metrics registry in one batch when discovery finishes.
#[derive(Debug, Default)]
struct SearchStats {
    candidates: u64,
    estimated_out: u64,
    validations: u64,
    validated: u64,
}

impl Pyro {
    /// Creates a Pyro instance.
    pub fn new(config: PyroConfig) -> Pyro {
        Pyro { config }
    }

    /// Discovers all minimal approximate FDs (per RHS) within the error
    /// budget.
    pub fn discover(&self, ds: &Dataset) -> FdSet {
        let k = ds.ncols();
        assert!(k <= lattice::MAX_ATTRS);
        let n = ds.nrows();
        // The span doubles as the budget clock for the per-RHS searches.
        let span = Span::enter("pyro.discover");
        let mut fds = FdSet::new();
        if n < 2 || k < 2 {
            return fds;
        }

        // Agreement bitmask per sampled tuple pair — the "agree set sample"
        // every per-RHS search shares.
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let pairs = self.config.sample_pairs.min(n * (n - 1) / 2).max(1);
        let mut agree: Vec<AttrSet> = Vec::with_capacity(pairs);
        for _ in 0..pairs {
            let i = rng.gen_range(0..n);
            let mut j = rng.gen_range(0..n - 1);
            if j >= i {
                j += 1;
            }
            let mut mask: AttrSet = 0;
            for a in 0..k {
                let ci = ds.code(i, a);
                if ci != fdx_data::NULL_CODE && ci == ds.code(j, a) {
                    mask |= lattice::singleton(a);
                }
            }
            agree.push(mask);
        }

        let singles: Vec<StrippedPartition> = (0..k)
            .map(|a| StrippedPartition::from_column(ds, a))
            .collect();

        let mut stats = SearchStats::default();
        for rhs in 0..k {
            if span.elapsed_secs() > self.config.max_seconds {
                break;
            }
            self.search_rhs(ds, rhs, &agree, &singles, &span, &mut stats, &mut fds);
        }
        fdx_obs::counter_add("pyro.candidates", stats.candidates);
        fdx_obs::counter_add("pyro.estimated_out", stats.estimated_out);
        fdx_obs::counter_add("pyro.validations", stats.validations);
        fdx_obs::counter_add("pyro.validated", stats.validated);
        fds
    }

    /// Per-RHS lattice ascension with estimate-then-validate.
    #[allow(clippy::too_many_arguments)]
    fn search_rhs(
        &self,
        ds: &Dataset,
        rhs: AttrId,
        agree: &[AttrSet],
        singles: &[StrippedPartition],
        span: &Span,
        stats: &mut SearchStats,
        fds: &mut FdSet,
    ) {
        let k = ds.ncols();
        let rhs_bit = lattice::singleton(rhs);
        // Estimated error of X → rhs from the agree-set sample:
        // P(disagree on rhs | agree on X).
        let estimate = |x: AttrSet| -> f64 {
            let mut agree_x = 0usize;
            let mut violate = 0usize;
            for &mask in agree {
                if mask & x == x {
                    agree_x += 1;
                    if mask & rhs_bit == 0 {
                        violate += 1;
                    }
                }
            }
            if agree_x == 0 {
                0.0 // unsupported: optimistic, forces exact validation
            } else {
                violate as f64 / agree_x as f64
            }
        };

        let mut level: Vec<AttrSet> = (0..k)
            .filter(|&a| a != rhs)
            .map(lattice::singleton)
            .collect();
        let mut partitions: HashMap<AttrSet, StrippedPartition> = level
            .iter()
            .map(|&s| {
                let a = s.trailing_zeros() as usize;
                (s, singles[a].clone())
            })
            .collect();
        let mut minimal_found: Vec<AttrSet> = Vec::new();

        for _depth in 1..=self.config.max_lhs {
            if level.is_empty() || span.elapsed_secs() > self.config.max_seconds {
                break;
            }
            let mut survivors: Vec<AttrSet> = Vec::new();
            for &x in &level {
                if span.elapsed_secs() > self.config.max_seconds {
                    return;
                }
                // Minimality: skip supersets of found determinants.
                if minimal_found.iter().any(|&m| x & m == m) {
                    continue;
                }
                stats.candidates += 1;
                let est = estimate(x);
                if est > self.config.max_error + self.config.estimate_slack {
                    // Hopeless by estimate — but keep ascending through it.
                    stats.estimated_out += 1;
                    survivors.push(x);
                    continue;
                }
                // Exact validation.
                stats.validations += 1;
                let px = partitions
                    .get(&x)
                    // fdx-allow: L001 ascend() inserts a partition before queuing any member
                    .expect("partition maintained for every level member");
                let pxr = px.product(&singles[rhs]);
                let error = px.fd_error(&pxr);
                if error <= self.config.max_error {
                    stats.validated += 1;
                    fds.insert(Fd::new(lattice::members(x), rhs));
                    minimal_found.push(x);
                } else {
                    survivors.push(x);
                }
            }
            // Generate the next level from non-FD survivors.
            survivors.sort_unstable();
            let next = lattice::next_level(&survivors);
            let mut next_partitions = HashMap::with_capacity(next.len());
            for &cand in &next {
                if span.elapsed_secs() > self.config.max_seconds {
                    return;
                }
                let m = lattice::members(cand);
                let first = lattice::singleton(m[0]);
                let rest = cand & !first;
                if let (Some(p1), Some(p2)) = (partitions.get(&first), partitions.get(&rest)) {
                    next_partitions.insert(cand, p1.product(p2));
                }
            }
            // Singletons stay available for products.
            for (a, p) in singles.iter().enumerate() {
                next_partitions.insert(lattice::singleton(a), p.clone());
            }
            partitions = next_partitions;
            level = next
                .into_iter()
                .filter(|s| partitions.contains_key(s))
                .collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_ds() -> Dataset {
        // a -> b -> c, 36 rows.
        let mut rows = Vec::new();
        for i in 0..36 {
            let a = i % 12;
            rows.push([
                format!("a{a}"),
                format!("b{}", a / 2),
                format!("c{}", a / 4),
            ]);
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        Dataset::from_string_rows(&["a", "b", "c"], &slices)
    }

    #[test]
    fn finds_chain_fds() {
        let fds = Pyro::default().discover(&chain_ds());
        assert!(fds.fds().contains(&Fd::new([0], 1)), "{fds:?}");
        assert!(fds.fds().contains(&Fd::new([1], 2)), "{fds:?}");
        assert!(
            fds.fds().contains(&Fd::new([0], 2)),
            "transitive syntactic FD"
        );
        assert!(!fds.fds().contains(&Fd::new([2], 0)));
    }

    #[test]
    fn minimality_suppresses_supersets() {
        let fds = Pyro::default().discover(&chain_ds());
        assert!(!fds.fds().contains(&Fd::new([0, 1], 2)), "{fds:?}");
    }

    #[test]
    fn near_exhaustive_on_keyed_data() {
        // A key column syntactically determines everything: Pyro reports it
        // all (the low-precision flood the paper describes).
        let ds = Dataset::from_string_rows(
            &["id", "u", "v"],
            &[
                &["1", "p", "q"],
                &["2", "p", "r"],
                &["3", "s", "q"],
                &["4", "s", "r"],
            ],
        );
        let fds = Pyro::default().discover(&ds);
        assert!(fds.fds().contains(&Fd::new([0], 1)));
        assert!(fds.fds().contains(&Fd::new([0], 2)));
        assert!(fds.fds().contains(&Fd::new([1, 2], 0)), "{fds:?}");
    }

    #[test]
    fn error_budget_admits_noisy_fd() {
        let mut ds = chain_ds();
        ds.column_mut(1).set_value(0, fdx_data::Value::text("zz"));
        let strict = Pyro::new(PyroConfig {
            max_error: 0.0,
            ..Default::default()
        })
        .discover(&ds);
        assert!(!strict.fds().contains(&Fd::new([0], 1)));
        let tolerant = Pyro::new(PyroConfig {
            max_error: 0.06,
            ..Default::default()
        })
        .discover(&ds);
        assert!(tolerant.fds().contains(&Fd::new([0], 1)), "{tolerant:?}");
    }
}
