//! Attribute-set lattice utilities shared by the levelwise searches
//! (TANE, Pyro). Attribute sets are `u128` bitmasks, which bounds the
//! lattice methods at 128 attributes — beyond that they would not terminate
//! in reasonable time anyway (the paper's own finding for wide tables).

use fdx_data::AttrId;

/// An attribute set as a bitmask.
pub type AttrSet = u128;

/// Maximum attribute count supported by the lattice representation.
pub const MAX_ATTRS: usize = 128;

/// The singleton set `{a}`.
#[inline]
pub fn singleton(a: AttrId) -> AttrSet {
    debug_assert!(a < MAX_ATTRS);
    1u128 << a
}

/// `true` if `a ∈ set`.
#[inline]
pub fn contains(set: AttrSet, a: AttrId) -> bool {
    set & singleton(a) != 0
}

/// The members of `set`, ascending.
pub fn members(set: AttrSet) -> Vec<AttrId> {
    let mut out = Vec::with_capacity(set.count_ones() as usize);
    let mut s = set;
    while s != 0 {
        let a = s.trailing_zeros() as AttrId;
        out.push(a);
        s &= s - 1;
    }
    out
}

/// Apriori candidate generation: joins size-ℓ sets sharing all but their
/// highest attribute, keeping only candidates whose every ℓ-subset is in
/// `level`. `level` must be sorted.
pub fn next_level(level: &[AttrSet]) -> Vec<AttrSet> {
    use std::collections::HashSet;
    let present: HashSet<AttrSet> = level.iter().copied().collect();
    let mut out = Vec::new();
    for (i, &x) in level.iter().enumerate() {
        let x_top = 127 - x.leading_zeros() as usize;
        let x_prefix = x & !(singleton(x_top));
        for &y in &level[i + 1..] {
            let y_top = 127 - y.leading_zeros() as usize;
            let y_prefix = y & !(singleton(y_top));
            if x_prefix != y_prefix {
                continue;
            }
            let candidate = x | y;
            // Every subset obtained by dropping one member must be present.
            let ok = members(candidate)
                .into_iter()
                .all(|a| present.contains(&(candidate & !singleton(a))));
            if ok {
                out.push(candidate);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_roundtrip() {
        let s = singleton(0) | singleton(3) | singleton(7);
        assert_eq!(members(s), vec![0, 3, 7]);
        assert!(contains(s, 3));
        assert!(!contains(s, 2));
    }

    #[test]
    fn next_level_joins_prefix_pairs() {
        // Level 1: {0},{1},{2} → level 2: all pairs.
        let l1 = vec![singleton(0), singleton(1), singleton(2)];
        let l2 = next_level(&l1);
        assert_eq!(l2.len(), 3);
        assert!(l2.contains(&(singleton(0) | singleton(1))));
        assert!(l2.contains(&(singleton(1) | singleton(2))));
    }

    #[test]
    fn next_level_requires_all_subsets() {
        // {0,1} and {0,2} present but {1,2} missing → no {0,1,2}.
        let l2 = vec![singleton(0) | singleton(1), singleton(0) | singleton(2)];
        assert!(next_level(&l2).is_empty());
        // Add {1,2}: now {0,1,2} generates.
        let l2_full = vec![
            singleton(0) | singleton(1),
            singleton(0) | singleton(2),
            singleton(1) | singleton(2),
        ];
        let l3 = next_level(&l2_full);
        assert_eq!(l3, vec![singleton(0) | singleton(1) | singleton(2)]);
    }
}
