//! Competitor FD-discovery methods for the FDX reproduction (paper §5.1).
//!
//! * [`Tane`] — TANE (Huhtala et al. 1999): levelwise lattice search over
//!   stripped partitions with the `g3` error measure for approximate FDs.
//! * [`Pyro`] — a Pyro-flavoured approximate-FD search (Kruse & Naumann
//!   2018): per-RHS lattice ascension with sample-based error estimates and
//!   exact validation of promising candidates (see `DESIGN.md`,
//!   substitution #3).
//! * [`Rfi`] — Reliable Fraction of Information (Mandros et al. 2017):
//!   per-RHS top-1 search maximizing the bias-corrected score
//!   `F̂ = (Î − E[Î])/Ĥ(Y)` with exact expected mutual information — the
//!   cost that makes RFI the slowest method in Tables 5–6.
//! * [`Cords`] — CORDS (Ilyas et al. 2004): sampled pairwise column
//!   analysis detecting soft FDs and correlations (best-effort
//!   reimplementation, like the paper's own).
//! * [`GlRaw`] — Graphical Lasso applied directly to the raw
//!   (integer-encoded, standardized) data, *without* FDX's pair transform:
//!   the structure-learning ablation of §4.3 and Table 4's "GL" column.
//!
//! Every method consumes a [`fdx_data::Dataset`] and returns a
//! [`fdx_data::FdSet`], the common currency of the evaluation harness.

mod cords;
mod glraw;
pub mod lattice;
mod partition;
mod pyro;
mod rfi;
mod tane;

pub use cords::{Cords, CordsConfig};
pub use glraw::{GlRaw, GlRawConfig};
pub use partition::StrippedPartition;
pub use pyro::{Pyro, PyroConfig};
pub use rfi::{Rfi, RfiConfig};
pub use tane::{Tane, TaneConfig};
