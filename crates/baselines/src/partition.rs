//! Stripped partitions — TANE's core data structure.

use fdx_data::{AttrId, Dataset};

/// A stripped partition: the equivalence classes of rows under "agrees on
/// the attribute set", with singleton classes removed (they can never
/// witness an FD violation). Rows are `u32` indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrippedPartition {
    classes: Vec<Vec<u32>>,
    nrows: usize,
}

impl StrippedPartition {
    /// Builds the partition of a single attribute from its dictionary
    /// codes. Nulls intern as their own shared value (the TANE convention:
    /// two nulls agree).
    pub fn from_column(ds: &Dataset, attr: AttrId) -> StrippedPartition {
        let col = ds.column(attr);
        let distinct = col.distinct_count();
        // NULL_CODE maps to the extra bucket `distinct`.
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); distinct + 1];
        for (row, &code) in col.codes().iter().enumerate() {
            let b = if code == fdx_data::NULL_CODE {
                distinct
            } else {
                code as usize
            };
            buckets[b].push(row as u32);
        }
        StrippedPartition {
            classes: buckets.into_iter().filter(|c| c.len() >= 2).collect(),
            nrows: ds.nrows(),
        }
    }

    /// Builds a partition from explicit classes (tests).
    pub fn from_classes(nrows: usize, classes: Vec<Vec<u32>>) -> StrippedPartition {
        StrippedPartition {
            classes: classes.into_iter().filter(|c| c.len() >= 2).collect(),
            nrows,
        }
    }

    /// The stripped classes.
    pub fn classes(&self) -> &[Vec<u32>] {
        &self.classes
    }

    /// Number of rows of the underlying relation.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// `‖π‖ = Σ (|c| − 1)` — TANE's partition "error" measure; zero iff the
    /// attribute set is a (super)key.
    pub fn rank(&self) -> usize {
        self.classes.iter().map(|c| c.len() - 1).sum()
    }

    /// `true` when the partition has no class of size ≥ 2, i.e. the
    /// attribute set is a key.
    pub fn is_key(&self) -> bool {
        self.classes.is_empty()
    }

    /// The product `π_X · π_Y` (the partition of `X ∪ Y`), computed with
    /// the standard two-pass stripped-product algorithm: linear in the
    /// number of rows contained in stripped classes.
    pub fn product(&self, other: &StrippedPartition) -> StrippedPartition {
        debug_assert_eq!(self.nrows, other.nrows);
        // T[row] = class index within self, or MAX if row is a singleton.
        let mut t = vec![u32::MAX; self.nrows];
        for (i, class) in self.classes.iter().enumerate() {
            for &r in class {
                t[r as usize] = i as u32;
            }
        }
        let mut out: Vec<Vec<u32>> = Vec::new();
        // Scratch: per-self-class accumulation for the current other-class,
        // indexed by self-class id with a touched-list for O(|class|) reset.
        // (A HashMap drained here would emit classes in hash order, making
        // the partition's class order — and everything serialized from it —
        // run-dependent; the indexed scratch is deterministic and faster.)
        let mut scratch: Vec<Vec<u32>> = vec![Vec::new(); self.classes.len()];
        let mut touched: Vec<u32> = Vec::new();
        for class in &other.classes {
            for &r in class {
                let ti = t[r as usize];
                if ti != u32::MAX {
                    let slot = &mut scratch[ti as usize];
                    if slot.is_empty() {
                        touched.push(ti);
                    }
                    slot.push(r);
                }
            }
            for &ti in &touched {
                let group = std::mem::take(&mut scratch[ti as usize]);
                if group.len() >= 2 {
                    out.push(group);
                }
            }
            touched.clear();
        }
        StrippedPartition {
            classes: out,
            nrows: self.nrows,
        }
    }

    /// The `g3`-style error of the FD `X → A`, where `self = π_X` and
    /// `refined = π_{X∪A}`: the minimum fraction of rows that must be
    /// removed for the FD to hold exactly.
    ///
    /// Uses TANE's representative-row trick: each class of the refined
    /// partition is identified by its first row, and for every class `c` of
    /// `π_X` the largest refined subclass inside `c` is found by scanning
    /// `c`'s rows.
    pub fn fd_error(&self, refined: &StrippedPartition) -> f64 {
        debug_assert_eq!(self.nrows, refined.nrows);
        if self.nrows == 0 {
            return 0.0;
        }
        // size_at_rep[row] = size of the refined class whose first row this is.
        let mut size_at_rep: std::collections::HashMap<u32, usize> =
            std::collections::HashMap::with_capacity(refined.classes.len());
        for class in &refined.classes {
            size_at_rep.insert(class[0], class.len());
        }
        let mut removed = 0usize;
        for class in &self.classes {
            let mut largest = 1usize; // singletons survive as size-1 groups
            for &r in class {
                if let Some(&s) = size_at_rep.get(&r) {
                    largest = largest.max(s);
                }
            }
            removed += class.len() - largest;
        }
        removed as f64 / self.nrows as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdx_data::Dataset;

    fn ds() -> Dataset {
        Dataset::from_string_rows(
            &["a", "b"],
            &[
                &["x", "1"],
                &["x", "1"],
                &["x", "2"],
                &["y", "3"],
                &["y", "3"],
                &["z", "4"],
            ],
        )
    }

    #[test]
    fn column_partition_strips_singletons() {
        let p = StrippedPartition::from_column(&ds(), 0);
        // x: {0,1,2}, y: {3,4}; z is a singleton and stripped.
        assert_eq!(p.classes().len(), 2);
        assert_eq!(p.rank(), 3);
        assert!(!p.is_key());
    }

    #[test]
    fn key_detection() {
        let keyed = Dataset::from_string_rows(&["k"], &[&["a"], &["b"], &["c"]]);
        let p = StrippedPartition::from_column(&keyed, 0);
        assert!(p.is_key());
        assert_eq!(p.rank(), 0);
    }

    #[test]
    fn nulls_share_a_class() {
        let d = Dataset::from_string_rows(&["a"], &[&[""], &[""], &["x"]]);
        let p = StrippedPartition::from_column(&d, 0);
        assert_eq!(p.classes().len(), 1);
        assert_eq!(p.classes()[0], vec![0, 1]);
    }

    #[test]
    fn product_refines() {
        let d = ds();
        let pa = StrippedPartition::from_column(&d, 0);
        let pb = StrippedPartition::from_column(&d, 1);
        let pab = pa.product(&pb);
        // (x,1): {0,1}; (y,3): {3,4}; others singletons.
        assert_eq!(pab.classes().len(), 2);
        assert_eq!(pab.rank(), 2);
        // Product is commutative in content.
        let pba = pb.product(&pa);
        assert_eq!(pba.rank(), 2);
    }

    #[test]
    fn exact_fd_has_zero_error() {
        let d = ds();
        let pb = StrippedPartition::from_column(&d, 1);
        let pa = StrippedPartition::from_column(&d, 0);
        let pba = pb.product(&pa);
        // b -> a holds exactly (each b value has one a value).
        assert_eq!(pb.fd_error(&pba), 0.0);
    }

    #[test]
    fn violated_fd_error_counts_min_removals() {
        let d = ds();
        let pa = StrippedPartition::from_column(&d, 0);
        let pb = StrippedPartition::from_column(&d, 1);
        let pab = pa.product(&pb);
        // a -> b: class x={0,1,2} splits into {0,1} and {2}: remove 1 row.
        // class y={3,4} stays together. error = 1/6.
        assert!((pa.fd_error(&pab) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_relation_error_zero() {
        let p = StrippedPartition::from_classes(0, vec![]);
        let q = StrippedPartition::from_classes(0, vec![]);
        assert_eq!(p.fd_error(&q), 0.0);
    }
}
