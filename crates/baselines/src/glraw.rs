//! Graphical Lasso on the raw data — the ablation without FDX's pair
//! transform (paper §4.3 and the "GL" column of Tables 4–6).
//!
//! The raw dataset is integer-encoded (dictionary codes as reals),
//! standardized, and fed to the same graphical-lasso / `U D Uᵀ` machinery
//! FDX uses. Two differences to FDX are deliberate: the covariance is the
//! standard mean-estimated MLE over raw records (sensitive to outliers —
//! the robustness argument of §4.3), and the sample complexity is that of
//! the raw domain sizes rather than FDX's binary transform (§4.3's `k⁴`
//! argument). The paper observes GL doing "reasonably well" but with worse
//! precision than FDX; directed structures are obtained from the same
//! factorization, scored without FDX's validation step.

use fdx_data::{Dataset, Fd, FdSet, NULL_CODE};
use fdx_glasso::{graphical_lasso, GlassoConfig};
use fdx_linalg::{udut, Matrix};
use fdx_order::{compute_order, OrderingMethod};
use fdx_stats::{correlation, covariance, standardize_columns};

/// Configuration of [`GlRaw`].
#[derive(Debug, Clone)]
pub struct GlRawConfig {
    /// Graphical-lasso ℓ₁ penalty.
    pub lambda: f64,
    /// Threshold on autoregression coefficients.
    pub threshold: f64,
    /// Shrinkage toward the identity applied to the correlation estimate.
    pub shrinkage: f64,
    /// Ordering heuristic for the factorization.
    pub ordering: OrderingMethod,
    /// Cap on determinant size.
    pub max_lhs: usize,
}

impl Default for GlRawConfig {
    fn default() -> Self {
        GlRawConfig {
            lambda: 0.0,
            threshold: 0.08,
            shrinkage: 0.10,
            ordering: OrderingMethod::MinDegree,
            max_lhs: 5,
        }
    }
}

/// The raw-data Graphical Lasso discoverer.
#[derive(Debug, Clone, Default)]
pub struct GlRaw {
    config: GlRawConfig,
}

impl GlRaw {
    /// Creates a GL-raw instance.
    pub fn new(config: GlRawConfig) -> GlRaw {
        GlRaw { config }
    }

    /// Runs structure learning directly on the integer-encoded raw data.
    pub fn discover(&self, ds: &Dataset) -> FdSet {
        let n = ds.nrows();
        let k = ds.ncols();
        let mut fds = FdSet::new();
        if n < 2 || k < 2 {
            return fds;
        }
        // Integer-encode: dictionary codes as reals; nulls become a fresh
        // code (they are just another raw value to this baseline).
        let mut m = Matrix::zeros(n, k);
        for a in 0..k {
            let null_code = ds.column(a).distinct_count() as f64;
            for r in 0..n {
                let c = ds.code(r, a);
                m[(r, a)] = if c == NULL_CODE { null_code } else { c as f64 };
            }
        }
        standardize_columns(&mut m);
        let mut s = correlation(&covariance(&m));
        if self.config.shrinkage > 0.0 {
            let alpha = self.config.shrinkage.min(1.0);
            s.scale_mut(1.0 - alpha);
            s.add_diag_mut(alpha);
        }
        let cfg = GlassoConfig {
            lambda: self.config.lambda,
            ..GlassoConfig::default()
        };
        let Ok(result) = graphical_lasso(&s, &cfg) else {
            return fds;
        };
        let theta = normalize_diagonal(&result.theta);
        let order = compute_order(&theta, 0.05, self.config.ordering);
        let Ok(factor) = udut(&theta, &order) else {
            return fds;
        };
        let b = factor.autoregression();
        for j in 0..k {
            let rhs = order.image(j);
            let mut candidates: Vec<(usize, f64)> = (0..j)
                .filter_map(|i| {
                    let w = b[(i, j)];
                    (w.abs() > self.config.threshold).then_some((order.image(i), w.abs()))
                })
                .collect();
            if candidates.is_empty() {
                continue;
            }
            if candidates.len() > self.config.max_lhs {
                candidates.sort_by(|a, b| b.1.total_cmp(&a.1));
                candidates.truncate(self.config.max_lhs);
            }
            fds.insert(Fd::new(candidates.into_iter().map(|(a, _)| a), rhs));
        }
        fds
    }
}

/// Scales a symmetric PD matrix to unit diagonal.
fn normalize_diagonal(theta: &Matrix) -> Matrix {
    let k = theta.rows();
    let d: Vec<f64> = (0..k).map(|i| theta[(i, i)].max(1e-12).sqrt()).collect();
    let mut out = Matrix::zeros(k, k);
    for i in 0..k {
        for j in 0..k {
            out[(i, j)] = theta[(i, j)] / (d[i] * d[j]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_dependent_pair_on_clean_data() {
        // A monotone deterministic relation raw GL can see.
        let mut rows = Vec::new();
        for i in 0..200 {
            let a = i % 10;
            rows.push([
                format!("{a:02}"),
                format!("{:02}", a / 2),
                format!("{}", (i * 13 + 1) % 7),
            ]);
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        let ds = Dataset::from_string_rows(&["a", "b", "noise"], &slices);
        let fds = GlRaw::default().discover(&ds);
        let edges = fds.edge_set();
        assert!(
            edges.contains(&(0, 1)) || edges.contains(&(1, 0)),
            "a—b dependency missing: {fds:?}"
        );
        assert!(
            !edges.contains(&(2, 0)) && !edges.contains(&(2, 1)),
            "{fds:?}"
        );
    }

    #[test]
    fn empty_for_degenerate_inputs() {
        let tiny = Dataset::from_string_rows(&["a"], &[&["1"], &["2"]]);
        assert!(GlRaw::default().discover(&tiny).is_empty());
    }

    #[test]
    fn raw_encoding_misses_permuted_dependencies() {
        // The weakness FDX's transform removes: a categorical bijection with
        // scrambled codes has near-zero *linear* correlation in raw space.
        // GL-raw largely fails on it while the relation is perfectly
        // functional.
        let perm = [7usize, 2, 9, 4, 0, 8, 1, 6, 3, 5];
        let mut rows = Vec::new();
        for i in 0..400 {
            let a = (i * 13 + i / 17) % 10;
            rows.push([format!("{a}"), format!("{}", perm[a])]);
        }
        let refs: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(|v| &v[..]).collect();
        let ds = Dataset::from_string_rows(&["a", "b"], &slices);
        let fds = GlRaw::default().discover(&ds);
        // Dictionary codes follow first-appearance order, which tracks the
        // generation sequence — the linear signal is weak but may not vanish
        // entirely; the essential assertion is that this is *unreliable*,
        // i.e. it must not produce a confident multi-FD output.
        assert!(fds.len() <= 2, "{fds:?}");
    }
}
