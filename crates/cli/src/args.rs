//! Hand-rolled argument parsing (the workspace's dependency policy admits
//! no CLI crates; the grammar is small enough not to need one).

use fdx_order::OrderingMethod;

/// Top-level usage text.
pub const USAGE: &str = "\
Usage:
  fdx discover <file.csv> [options]    discover functional dependencies
  fdx profile  <file.csv>              per-column statistics + FD guidance
  fdx score    <file.csv> --lhs A,B --rhs C
                                       score one candidate FD exactly
  fdx lint     [options]               run workspace static analysis

Discover options:
  --threshold <f>     autoregression threshold (default 0.08)
  --sparsity <f>      graphical-lasso lambda (default 0)
  --min-lift <f>      validation lift threshold (default 0.35)
  --noise <f>         expected cell-noise rate (tunes lift & thresholds)
  --ordering <name>   heuristic|natural|amd|colamd|metis|nesdis
  --seed <n>          transform shuffle seed
  --threads <n>       worker threads (default: FDX_THREADS or all cores)
  --no-validate       emit raw Algorithm 3 output (no validation pass)
  --heatmap           also print the autoregression heatmap
  --trace             print the per-phase wall-clock tree to stderr
  --metrics <path>    write run metrics as JSON-lines to <path>
  --time-budget <f>   abort the run after <f> wall-clock seconds
  --strict            exit non-zero if the run degraded (fallbacks, retries)

Lint options:
  --ratchet           fail only on violations not in lint-baseline.json
  --write-baseline    regenerate lint-baseline.json from the current tree
  --format <fmt>      text (default) or json
  --root <dir>        workspace root (default: auto-detected from cwd)";

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `fdx discover`.
    Discover {
        /// CSV path.
        path: String,
        /// Engine options.
        options: DiscoverOptions,
    },
    /// `fdx profile`.
    Profile {
        /// CSV path.
        path: String,
    },
    /// `fdx score`.
    Score {
        /// CSV path.
        path: String,
        /// Determinant attribute names.
        lhs: Vec<String>,
        /// Determined attribute name.
        rhs: String,
    },
    /// `fdx lint`.
    Lint {
        /// Lint options.
        options: LintArgs,
    },
}

/// Options of the `lint` subcommand.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LintArgs {
    /// Explicit workspace root (auto-detected when absent).
    pub root: Option<String>,
    /// Compare against the committed baseline instead of failing on every
    /// violation.
    pub ratchet: bool,
    /// Regenerate the baseline instead of reporting.
    pub write_baseline: bool,
    /// Emit the deterministic JSON report instead of text.
    pub format_json: bool,
}

/// Options of the `discover` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoverOptions {
    pub threshold: Option<f64>,
    pub sparsity: Option<f64>,
    pub min_lift: Option<f64>,
    pub noise: Option<f64>,
    pub ordering: Option<OrderingMethod>,
    pub seed: Option<u64>,
    pub threads: Option<usize>,
    pub validate: bool,
    pub heatmap: bool,
    pub trace: bool,
    pub metrics: Option<String>,
    pub time_budget: Option<f64>,
    pub strict: bool,
}

impl Default for DiscoverOptions {
    fn default() -> Self {
        DiscoverOptions {
            threshold: None,
            sparsity: None,
            min_lift: None,
            noise: None,
            ordering: None,
            seed: None,
            threads: None,
            validate: true,
            heatmap: false,
            trace: false,
            metrics: None,
            time_budget: None,
            strict: false,
        }
    }
}

/// Parses the argument vector (program name removed).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let mut it = argv.iter();
    let sub = it.next().ok_or("missing subcommand")?;
    match sub.as_str() {
        "discover" => {
            let path = it.next().ok_or("discover: missing <file.csv>")?.clone();
            let mut options = DiscoverOptions::default();
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                let mut value = |name: &str| -> Result<&String, String> {
                    i += 1;
                    rest.get(i)
                        .copied()
                        .ok_or_else(|| format!("{name}: missing value"))
                };
                match flag {
                    "--threshold" => options.threshold = Some(parse_f64(value(flag)?)?),
                    "--sparsity" => options.sparsity = Some(parse_f64(value(flag)?)?),
                    "--min-lift" => options.min_lift = Some(parse_f64(value(flag)?)?),
                    "--noise" => options.noise = Some(parse_f64(value(flag)?)?),
                    "--seed" => {
                        options.seed = Some(
                            value(flag)?
                                .parse()
                                .map_err(|_| "--seed: expected an integer".to_string())?,
                        )
                    }
                    "--threads" => {
                        let n: usize = value(flag)?
                            .parse()
                            .map_err(|_| "--threads: expected a positive integer".to_string())?;
                        if n == 0 {
                            return Err("--threads: expected a positive integer".into());
                        }
                        options.threads = Some(n);
                    }
                    "--ordering" => options.ordering = Some(parse_ordering(value(flag)?)?),
                    "--no-validate" => options.validate = false,
                    "--heatmap" => options.heatmap = true,
                    "--trace" => options.trace = true,
                    "--metrics" => options.metrics = Some(value(flag)?.clone()),
                    "--time-budget" => options.time_budget = Some(parse_f64(value(flag)?)?),
                    "--strict" => options.strict = true,
                    other => return Err(format!("unknown flag {other}")),
                }
                i += 1;
            }
            Ok(Command::Discover { path, options })
        }
        "profile" => {
            let path = it.next().ok_or("profile: missing <file.csv>")?.clone();
            if it.next().is_some() {
                return Err("profile takes no flags".into());
            }
            Ok(Command::Profile { path })
        }
        "score" => {
            let path = it.next().ok_or("score: missing <file.csv>")?.clone();
            let mut lhs: Option<Vec<String>> = None;
            let mut rhs: Option<String> = None;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--lhs" => {
                        i += 1;
                        let v = rest.get(i).ok_or("--lhs: missing value")?;
                        lhs = Some(v.split(',').map(|s| s.trim().to_string()).collect());
                    }
                    "--rhs" => {
                        i += 1;
                        rhs = Some(rest.get(i).ok_or("--rhs: missing value")?.to_string());
                    }
                    other => return Err(format!("unknown flag {other}")),
                }
                i += 1;
            }
            Ok(Command::Score {
                path,
                lhs: lhs.ok_or("score: --lhs is required")?,
                rhs: rhs.ok_or("score: --rhs is required")?,
            })
        }
        "lint" => {
            let mut options = LintArgs::default();
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--ratchet" => options.ratchet = true,
                    "--write-baseline" => options.write_baseline = true,
                    "--format" => {
                        i += 1;
                        match rest.get(i).map(|s| s.as_str()) {
                            Some("text") => options.format_json = false,
                            Some("json") => options.format_json = true,
                            Some(other) => {
                                return Err(format!("--format: unknown format {other:?}"))
                            }
                            None => return Err("--format: missing value".into()),
                        }
                    }
                    "--root" => {
                        i += 1;
                        let v = rest.get(i).ok_or("--root: missing value")?;
                        options.root = Some(v.to_string());
                    }
                    other => return Err(format!("unknown flag {other}")),
                }
                i += 1;
            }
            Ok(Command::Lint { options })
        }
        other => Err(format!("unknown subcommand {other}")),
    }
}

fn parse_f64(s: &str) -> Result<f64, String> {
    s.parse()
        .map_err(|_| format!("expected a number, got {s:?}"))
}

fn parse_ordering(s: &str) -> Result<OrderingMethod, String> {
    OrderingMethod::ALL
        .into_iter()
        .find(|m| m.label() == s)
        .ok_or_else(|| {
            format!("unknown ordering {s:?} (try: heuristic, natural, amd, colamd, metis, nesdis)")
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_discover_defaults() {
        let cmd = parse(&argv("discover data.csv")).unwrap();
        match cmd {
            Command::Discover { path, options } => {
                assert_eq!(path, "data.csv");
                assert_eq!(options, DiscoverOptions::default());
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parses_discover_flags() {
        let cmd = parse(&argv(
            "discover d.csv --threshold 0.2 --sparsity 0.01 --ordering natural --no-validate --heatmap --seed 9",
        ))
        .unwrap();
        match cmd {
            Command::Discover { options, .. } => {
                assert_eq!(options.threshold, Some(0.2));
                assert_eq!(options.sparsity, Some(0.01));
                assert_eq!(options.ordering, Some(OrderingMethod::Natural));
                assert!(!options.validate);
                assert!(options.heatmap);
                assert_eq!(options.seed, Some(9));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parses_score() {
        let cmd = parse(&argv("score d.csv --lhs zip,street --rhs city")).unwrap();
        assert_eq!(
            cmd,
            Command::Score {
                path: "d.csv".into(),
                lhs: vec!["zip".into(), "street".into()],
                rhs: "city".into(),
            }
        );
    }

    #[test]
    fn parses_trace_and_metrics() {
        let cmd = parse(&argv("discover d.csv --trace --metrics out.jsonl")).unwrap();
        match cmd {
            Command::Discover { options, .. } => {
                assert!(options.trace);
                assert_eq!(options.metrics.as_deref(), Some("out.jsonl"));
            }
            _ => unreachable!(),
        }
        // --metrics requires a value.
        assert!(parse(&argv("discover d.csv --metrics")).is_err());
    }

    #[test]
    fn parses_strict_and_time_budget() {
        let cmd = parse(&argv("discover d.csv --strict --time-budget 2.5")).unwrap();
        match cmd {
            Command::Discover { options, .. } => {
                assert!(options.strict);
                assert_eq!(options.time_budget, Some(2.5));
            }
            _ => unreachable!(),
        }
        assert!(parse(&argv("discover d.csv --time-budget")).is_err());
        assert!(parse(&argv("discover d.csv --time-budget nope")).is_err());
        let cmd = parse(&argv("discover d.csv --threads 4")).unwrap();
        match cmd {
            Command::Discover { options, .. } => assert_eq!(options.threads, Some(4)),
            _ => unreachable!(),
        }
        assert!(parse(&argv("discover d.csv --threads 0")).is_err());
        assert!(parse(&argv("discover d.csv --threads nope")).is_err());
        let defaults = parse(&argv("discover d.csv")).unwrap();
        match defaults {
            Command::Discover { options, .. } => {
                assert!(!options.strict);
                assert_eq!(options.time_budget, None);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parses_lint() {
        assert_eq!(
            parse(&argv("lint")).unwrap(),
            Command::Lint {
                options: LintArgs::default()
            }
        );
        let cmd = parse(&argv("lint --ratchet --format json --root /tmp/ws")).unwrap();
        assert_eq!(
            cmd,
            Command::Lint {
                options: LintArgs {
                    root: Some("/tmp/ws".into()),
                    ratchet: true,
                    write_baseline: false,
                    format_json: true,
                }
            }
        );
        assert!(parse(&argv("lint --format yaml")).is_err());
        assert!(parse(&argv("lint --root")).is_err());
        assert!(parse(&argv("lint --bogus")).is_err());
    }

    #[test]
    fn rejects_unknown_flags_and_subcommands() {
        assert!(parse(&argv("discover d.csv --bogus")).is_err());
        assert!(parse(&argv("nonsense")).is_err());
        assert!(parse(&argv("score d.csv --lhs a")).is_err());
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn ordering_names_match_table9_labels() {
        for m in OrderingMethod::ALL {
            assert_eq!(parse_ordering(m.label()).unwrap(), m);
        }
        assert!(parse_ordering("qr").is_err());
    }
}
