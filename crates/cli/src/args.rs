//! Hand-rolled argument parsing (the workspace's dependency policy admits
//! no CLI crates; the grammar is small enough not to need one).

use fdx_order::OrderingMethod;

/// Top-level usage text.
pub const USAGE: &str = "\
Usage:
  fdx discover <file.csv> [options]    discover functional dependencies
  fdx profile  <file.csv>              per-column statistics + FD guidance
  fdx score    <file.csv> --lhs A,B --rhs C
                                       score one candidate FD exactly
  fdx lint     [options]               run workspace static analysis
  fdx serve    [options]               run the discovery service (loopback TCP)
  fdx request  <file.csv> --addr HOST:PORT [options]
                                       send one request to a running server
  fdx stats    <host:port> [options]   one-shot live snapshot of a server
  fdx top      <host:port> [options]   periodically re-polled server view

Discover options:
  --threshold <f>     autoregression threshold (default 0.08)
  --sparsity <f>      graphical-lasso lambda (default 0)
  --min-lift <f>      validation lift threshold (default 0.35)
  --noise <f>         expected cell-noise rate (tunes lift & thresholds)
  --ordering <name>   heuristic|natural|amd|colamd|metis|nesdis
  --seed <n>          transform shuffle seed
  --threads <n>       worker threads (default: FDX_THREADS or all cores)
  --no-validate       emit raw Algorithm 3 output (no validation pass)
  --heatmap           also print the autoregression heatmap
  --trace             print the per-phase wall-clock tree to stderr
  --metrics <path>    write run metrics as JSON-lines to <path>
  --time-budget <f>   abort the run after <f> wall-clock seconds
  --strict            exit non-zero if the run degraded (fallbacks, retries)
  --chunk-rows <n>    streaming-ingest chunk size in rows (default 4096)
  --memory-budget <b> ingest working-set budget in bytes (k/m/g suffixes ok);
                      over budget the reader degrades to sampled rows
  --on-bad-row <p>    malformed-row policy: abort (default) | skip | quarantine
  --quarantine <path> write quarantined rows as JSON lines to <path>
                      (implies --on-bad-row quarantine)

Lint options:
  --ratchet           fail only on violations not in lint-baseline.json
  --write-baseline    regenerate lint-baseline.json from the current tree
  --format <fmt>      text (default) or json
  --sarif <path>      also write the scan as SARIF 2.1.0 to <path>
  --explain <rule>    print rationale and examples for a rule and exit
  --root <dir>        workspace root (default: auto-detected from cwd)

Serve options:
  --addr <host:port>  bind address (default 127.0.0.1:0, prints the port)
  --threads <n>       worker pool size (default: FDX_THREADS or all cores)
  --queue-cap <n>     bounded request queue capacity (default 64)
  --drain-timeout <f> seconds to drain in-flight work on shutdown (default 5)
  --chaos             allow requests to arm fault-injection points
  --metrics <path>    write the final metrics snapshot (atomic rename)
  --journal <path>    write the request journal on drain (atomic rename)
  --session-dir <dir> persist dataset/result snapshots here; a restart
                      recovers every intact session (corrupt snapshots are
                      quarantined with typed reasons, never a crash)
  --session-budget <b> resident-dataset memory budget in bytes (k/m/g
                      suffixes ok; default 256m); LRU eviction past it
  --max-conns <n>     concurrent connection cap (default 64); excess
                      connections get a typed overloaded reply

Request options:
  --addr <host:port>  server address (required)
  --id <s>            request id echoed in the reply (default: request-1)
  --upload            upload <file.csv> as a session dataset; prints the
                      content-hash handle (idempotent: re-uploads dedupe)
  --open <handle>     open a session dataset (no csv path)
  --close <handle>    drop a session dataset from the resident set
  --dataset <handle>  discover against an uploaded dataset instead of
                      sending csv; cached results replay byte-identically
                      and the exchange retries across server restarts
  --deadline-ms <n>   per-request deadline, propagated into the pipeline
  --threshold <f>     autoregression threshold override
  --sparsity <f>      graphical-lasso lambda override
  --min-lift <f>      validation lift threshold override
  --seed <n>          transform shuffle seed override
  --threads <n>       kernel threads for this request (default 1)
  --no-validate       skip the validation pass
  --chaos <list>      comma-separated fault points, each optionally
                      point=value or point:times (server needs --chaos)
  --retries <n>       retries on overloaded/connect failure (default 5)
  --trace             ask the server for the per-phase waterfall and print
                      it to stderr (like discover --trace, remotely)
  --shutdown          send a shutdown frame instead of a discover request

Stats options:
  --text              render a table instead of the raw JSON reply
  --journal <n>       journal-tail entries to request (default 16)

Top options:
  --interval <f>      seconds between polls (default 2)
  --count <n>         stop after <n> polls (default: until interrupted)
  --journal <n>       journal-tail entries to request (default 8)";

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `fdx discover`.
    Discover {
        /// CSV path.
        path: String,
        /// Engine options.
        options: DiscoverOptions,
    },
    /// `fdx profile`.
    Profile {
        /// CSV path.
        path: String,
    },
    /// `fdx score`.
    Score {
        /// CSV path.
        path: String,
        /// Determinant attribute names.
        lhs: Vec<String>,
        /// Determined attribute name.
        rhs: String,
    },
    /// `fdx lint`.
    Lint {
        /// Lint options.
        options: LintArgs,
    },
    /// `fdx serve`.
    Serve {
        /// Server options.
        options: ServeArgs,
    },
    /// `fdx request`.
    Request {
        /// Client options.
        options: RequestArgs,
    },
    /// `fdx stats`.
    Stats {
        /// Probe options.
        options: StatsArgs,
    },
    /// `fdx top`.
    Top {
        /// Poll options.
        options: TopArgs,
    },
}

/// Options of the `stats` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsArgs {
    /// Server address.
    pub addr: String,
    /// Render a human-readable table instead of raw JSON.
    pub text: bool,
    /// Journal-tail entries to request (`None`: server default).
    pub journal: Option<u64>,
}

/// Options of the `top` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct TopArgs {
    /// Server address.
    pub addr: String,
    /// Seconds between polls.
    pub interval_secs: f64,
    /// Stop after this many polls (`None`: until interrupted).
    pub count: Option<u64>,
    /// Journal-tail entries to request per poll.
    pub journal: u64,
}

/// Options of the `serve` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Bind address; `127.0.0.1:0` asks the OS for an ephemeral port.
    pub addr: String,
    /// Worker pool size (`None`: FDX_THREADS, then all cores).
    pub threads: Option<usize>,
    /// Bounded request queue capacity.
    pub queue_cap: usize,
    /// Seconds to drain in-flight work when shutting down.
    pub drain_timeout: f64,
    /// Allow requests to arm fault-injection points.
    pub chaos: bool,
    /// Final metrics snapshot path.
    pub metrics: Option<String>,
    /// Request-journal flush path (written on drain).
    pub journal: Option<String>,
    /// Snapshot directory for crash-safe sessions (`None`: in-memory only).
    pub session_dir: Option<String>,
    /// Resident-dataset memory budget in bytes (`None`: server default).
    pub session_budget: Option<u64>,
    /// Concurrent connection cap.
    pub max_conns: usize,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            addr: "127.0.0.1:0".to_string(),
            threads: None,
            queue_cap: 64,
            drain_timeout: 5.0,
            chaos: false,
            metrics: None,
            journal: None,
            session_dir: None,
            session_budget: None,
            max_conns: 64,
        }
    }
}

/// Options of the `request` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestArgs {
    /// CSV path (absent for `--shutdown`).
    pub path: Option<String>,
    /// Server address.
    pub addr: String,
    /// Request id echoed back in the reply.
    pub id: String,
    pub deadline_ms: Option<u64>,
    pub threshold: Option<f64>,
    pub sparsity: Option<f64>,
    pub min_lift: Option<f64>,
    pub seed: Option<u64>,
    pub threads: Option<usize>,
    pub validate: bool,
    /// Raw chaos entries (`point`, `point=value`, `point:times`); validated
    /// against the protocol's fault-point table when the frame is built.
    pub chaos: Vec<String>,
    /// Retries on `overloaded` / connect failure.
    pub retries: u32,
    /// Ask the server to embed the phase waterfall in the reply.
    pub trace: bool,
    /// Send a shutdown frame instead of a discover request.
    pub shutdown: bool,
    /// Upload `<file.csv>` as a session dataset instead of discovering.
    pub upload: bool,
    /// Open a session dataset by content-hash handle.
    pub open: Option<String>,
    /// Close (evict) a session dataset by content-hash handle.
    pub close: Option<String>,
    /// Discover against an uploaded dataset handle instead of sending csv.
    pub dataset: Option<String>,
}

impl Default for RequestArgs {
    fn default() -> Self {
        RequestArgs {
            path: None,
            addr: String::new(),
            id: "request-1".to_string(),
            deadline_ms: None,
            threshold: None,
            sparsity: None,
            min_lift: None,
            seed: None,
            threads: None,
            validate: true,
            chaos: Vec::new(),
            retries: 5,
            trace: false,
            shutdown: false,
            upload: false,
            open: None,
            close: None,
            dataset: None,
        }
    }
}

/// Options of the `lint` subcommand.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LintArgs {
    /// Explicit workspace root (auto-detected when absent).
    pub root: Option<String>,
    /// Compare against the committed baseline instead of failing on every
    /// violation.
    pub ratchet: bool,
    /// Regenerate the baseline instead of reporting.
    pub write_baseline: bool,
    /// Emit the deterministic JSON report instead of text.
    pub format_json: bool,
    /// Also write the scan as SARIF 2.1.0 to this path.
    pub sarif: Option<String>,
    /// Print the documentation page for one rule and exit (rule id as
    /// typed; validated against the rule table when the command runs).
    pub explain: Option<String>,
}

/// Malformed-row policy of `fdx discover` (maps onto
/// `fdx_data::BadRowPolicy`; the quarantine path rides in
/// [`DiscoverOptions::quarantine`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnBadRow {
    /// Fail the run on the first malformed row.
    #[default]
    Abort,
    /// Drop malformed rows, count them in ingest health.
    Skip,
    /// Drop malformed rows and append them to the quarantine file.
    Quarantine,
}

/// Options of the `discover` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoverOptions {
    pub threshold: Option<f64>,
    pub sparsity: Option<f64>,
    pub min_lift: Option<f64>,
    pub noise: Option<f64>,
    pub ordering: Option<OrderingMethod>,
    pub seed: Option<u64>,
    pub threads: Option<usize>,
    pub validate: bool,
    pub heatmap: bool,
    pub trace: bool,
    pub metrics: Option<String>,
    pub time_budget: Option<f64>,
    pub strict: bool,
    /// Streaming-ingest chunk size in rows.
    pub chunk_rows: Option<usize>,
    /// Ingest working-set budget in bytes.
    pub memory_budget: Option<u64>,
    /// Malformed-row policy.
    pub on_bad_row: OnBadRow,
    /// Quarantine file path (requires/implies `on_bad_row == Quarantine`).
    pub quarantine: Option<String>,
}

impl Default for DiscoverOptions {
    fn default() -> Self {
        DiscoverOptions {
            threshold: None,
            sparsity: None,
            min_lift: None,
            noise: None,
            ordering: None,
            seed: None,
            threads: None,
            validate: true,
            heatmap: false,
            trace: false,
            metrics: None,
            time_budget: None,
            strict: false,
            chunk_rows: None,
            memory_budget: None,
            on_bad_row: OnBadRow::Abort,
            quarantine: None,
        }
    }
}

/// Parses the argument vector (program name removed).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let mut it = argv.iter();
    let sub = it.next().ok_or("missing subcommand")?;
    match sub.as_str() {
        "discover" => {
            let path = it.next().ok_or("discover: missing <file.csv>")?.clone();
            let mut options = DiscoverOptions::default();
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                let mut value = |name: &str| -> Result<&String, String> {
                    i += 1;
                    rest.get(i)
                        .copied()
                        .ok_or_else(|| format!("{name}: missing value"))
                };
                match flag {
                    "--threshold" => options.threshold = Some(parse_f64(value(flag)?)?),
                    "--sparsity" => options.sparsity = Some(parse_f64(value(flag)?)?),
                    "--min-lift" => options.min_lift = Some(parse_f64(value(flag)?)?),
                    "--noise" => options.noise = Some(parse_f64(value(flag)?)?),
                    "--seed" => {
                        options.seed = Some(
                            value(flag)?
                                .parse()
                                .map_err(|_| "--seed: expected an integer".to_string())?,
                        )
                    }
                    "--threads" => {
                        let n: usize = value(flag)?
                            .parse()
                            .map_err(|_| "--threads: expected a positive integer".to_string())?;
                        if n == 0 {
                            return Err("--threads: expected a positive integer".into());
                        }
                        options.threads = Some(n);
                    }
                    "--ordering" => options.ordering = Some(parse_ordering(value(flag)?)?),
                    "--no-validate" => options.validate = false,
                    "--heatmap" => options.heatmap = true,
                    "--trace" => options.trace = true,
                    "--metrics" => options.metrics = Some(value(flag)?.clone()),
                    "--time-budget" => options.time_budget = Some(parse_f64(value(flag)?)?),
                    "--strict" => options.strict = true,
                    "--chunk-rows" => {
                        let n: usize = value(flag)?
                            .parse()
                            .map_err(|_| "--chunk-rows: expected a positive integer".to_string())?;
                        if n == 0 {
                            return Err("--chunk-rows: expected a positive integer".into());
                        }
                        options.chunk_rows = Some(n);
                    }
                    "--memory-budget" => {
                        options.memory_budget = Some(parse_bytes(value(flag)?)?);
                    }
                    "--on-bad-row" => {
                        options.on_bad_row = match value(flag)?.as_str() {
                            "abort" => OnBadRow::Abort,
                            "skip" => OnBadRow::Skip,
                            "quarantine" => OnBadRow::Quarantine,
                            other => {
                                return Err(format!(
                                "--on-bad-row: unknown policy {other:?} (abort, skip, quarantine)"
                            ))
                            }
                        };
                    }
                    "--quarantine" => {
                        options.quarantine = Some(value(flag)?.clone());
                        options.on_bad_row = OnBadRow::Quarantine;
                    }
                    other => return Err(format!("unknown flag {other}")),
                }
                i += 1;
            }
            if options.on_bad_row == OnBadRow::Quarantine && options.quarantine.is_none() {
                return Err("--on-bad-row quarantine requires --quarantine <path>".into());
            }
            Ok(Command::Discover { path, options })
        }
        "profile" => {
            let path = it.next().ok_or("profile: missing <file.csv>")?.clone();
            if it.next().is_some() {
                return Err("profile takes no flags".into());
            }
            Ok(Command::Profile { path })
        }
        "score" => {
            let path = it.next().ok_or("score: missing <file.csv>")?.clone();
            let mut lhs: Option<Vec<String>> = None;
            let mut rhs: Option<String> = None;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--lhs" => {
                        i += 1;
                        let v = rest.get(i).ok_or("--lhs: missing value")?;
                        lhs = Some(v.split(',').map(|s| s.trim().to_string()).collect());
                    }
                    "--rhs" => {
                        i += 1;
                        rhs = Some(rest.get(i).ok_or("--rhs: missing value")?.to_string());
                    }
                    other => return Err(format!("unknown flag {other}")),
                }
                i += 1;
            }
            Ok(Command::Score {
                path,
                lhs: lhs.ok_or("score: --lhs is required")?,
                rhs: rhs.ok_or("score: --rhs is required")?,
            })
        }
        "lint" => {
            let mut options = LintArgs::default();
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--ratchet" => options.ratchet = true,
                    "--write-baseline" => options.write_baseline = true,
                    "--format" => {
                        i += 1;
                        match rest.get(i).map(|s| s.as_str()) {
                            Some("text") => options.format_json = false,
                            Some("json") => options.format_json = true,
                            Some(other) => {
                                return Err(format!("--format: unknown format {other:?}"))
                            }
                            None => return Err("--format: missing value".into()),
                        }
                    }
                    "--root" => {
                        i += 1;
                        let v = rest.get(i).ok_or("--root: missing value")?;
                        options.root = Some(v.to_string());
                    }
                    "--sarif" => {
                        i += 1;
                        let v = rest.get(i).ok_or("--sarif: missing value")?;
                        options.sarif = Some(v.to_string());
                    }
                    "--explain" => {
                        i += 1;
                        let v = rest.get(i).ok_or("--explain: missing rule id")?;
                        options.explain = Some(v.to_string());
                    }
                    other => return Err(format!("unknown flag {other}")),
                }
                i += 1;
            }
            Ok(Command::Lint { options })
        }
        "serve" => {
            let mut options = ServeArgs::default();
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                let mut value = |name: &str| -> Result<&String, String> {
                    i += 1;
                    rest.get(i)
                        .copied()
                        .ok_or_else(|| format!("{name}: missing value"))
                };
                match flag {
                    "--addr" => options.addr = value(flag)?.clone(),
                    "--threads" => {
                        let n: usize = value(flag)?
                            .parse()
                            .map_err(|_| "--threads: expected a positive integer".to_string())?;
                        if n == 0 {
                            return Err("--threads: expected a positive integer".into());
                        }
                        options.threads = Some(n);
                    }
                    "--queue-cap" => {
                        let n: usize = value(flag)?
                            .parse()
                            .map_err(|_| "--queue-cap: expected a positive integer".to_string())?;
                        if n == 0 {
                            return Err("--queue-cap: expected a positive integer".into());
                        }
                        options.queue_cap = n;
                    }
                    "--drain-timeout" => {
                        let f = parse_f64(value(flag)?)?;
                        if f.is_nan() || f < 0.0 {
                            return Err("--drain-timeout: expected a non-negative number".into());
                        }
                        options.drain_timeout = f;
                    }
                    "--chaos" => options.chaos = true,
                    "--metrics" => options.metrics = Some(value(flag)?.clone()),
                    "--journal" => options.journal = Some(value(flag)?.clone()),
                    "--session-dir" => options.session_dir = Some(value(flag)?.clone()),
                    "--session-budget" => {
                        options.session_budget = Some(parse_bytes(value(flag)?)?);
                    }
                    "--max-conns" => {
                        let n: usize = value(flag)?
                            .parse()
                            .map_err(|_| "--max-conns: expected a positive integer".to_string())?;
                        if n == 0 {
                            return Err("--max-conns: expected a positive integer".into());
                        }
                        options.max_conns = n;
                    }
                    other => return Err(format!("unknown flag {other}")),
                }
                i += 1;
            }
            Ok(Command::Serve { options })
        }
        "stats" => {
            let addr = it.next().ok_or("stats: missing <host:port>")?.clone();
            let mut options = StatsArgs {
                addr,
                text: false,
                journal: None,
            };
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                let mut value = |name: &str| -> Result<&String, String> {
                    i += 1;
                    rest.get(i)
                        .copied()
                        .ok_or_else(|| format!("{name}: missing value"))
                };
                match flag {
                    "--text" => options.text = true,
                    "--journal" => {
                        options.journal = Some(
                            value(flag)?
                                .parse()
                                .map_err(|_| "--journal: expected an integer".to_string())?,
                        );
                    }
                    other => return Err(format!("unknown flag {other}")),
                }
                i += 1;
            }
            Ok(Command::Stats { options })
        }
        "top" => {
            let addr = it.next().ok_or("top: missing <host:port>")?.clone();
            let mut options = TopArgs {
                addr,
                interval_secs: 2.0,
                count: None,
                journal: 8,
            };
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                let mut value = |name: &str| -> Result<&String, String> {
                    i += 1;
                    rest.get(i)
                        .copied()
                        .ok_or_else(|| format!("{name}: missing value"))
                };
                match flag {
                    "--interval" => {
                        let f = parse_f64(value(flag)?)?;
                        if f.is_nan() || f <= 0.0 {
                            return Err("--interval: expected a positive number".into());
                        }
                        options.interval_secs = f;
                    }
                    "--count" => {
                        let n: u64 = value(flag)?
                            .parse()
                            .map_err(|_| "--count: expected a positive integer".to_string())?;
                        if n == 0 {
                            return Err("--count: expected a positive integer".into());
                        }
                        options.count = Some(n);
                    }
                    "--journal" => {
                        options.journal = value(flag)?
                            .parse()
                            .map_err(|_| "--journal: expected an integer".to_string())?;
                    }
                    other => return Err(format!("unknown flag {other}")),
                }
                i += 1;
            }
            Ok(Command::Top { options })
        }
        "request" => {
            let mut options = RequestArgs::default();
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            // Optional leading positional: the CSV path.
            if rest.first().is_some_and(|a| !a.starts_with("--")) {
                options.path = Some(rest[0].clone());
                i = 1;
            }
            let mut saw_addr = false;
            while i < rest.len() {
                let flag = rest[i].as_str();
                let mut value = |name: &str| -> Result<&String, String> {
                    i += 1;
                    rest.get(i)
                        .copied()
                        .ok_or_else(|| format!("{name}: missing value"))
                };
                match flag {
                    "--addr" => {
                        options.addr = value(flag)?.clone();
                        saw_addr = true;
                    }
                    "--id" => options.id = value(flag)?.clone(),
                    "--deadline-ms" => {
                        options.deadline_ms = Some(
                            value(flag)?
                                .parse()
                                .map_err(|_| "--deadline-ms: expected an integer".to_string())?,
                        )
                    }
                    "--threshold" => options.threshold = Some(parse_f64(value(flag)?)?),
                    "--sparsity" => options.sparsity = Some(parse_f64(value(flag)?)?),
                    "--min-lift" => options.min_lift = Some(parse_f64(value(flag)?)?),
                    "--seed" => {
                        options.seed = Some(
                            value(flag)?
                                .parse()
                                .map_err(|_| "--seed: expected an integer".to_string())?,
                        )
                    }
                    "--threads" => {
                        let n: usize = value(flag)?
                            .parse()
                            .map_err(|_| "--threads: expected a positive integer".to_string())?;
                        if n == 0 {
                            return Err("--threads: expected a positive integer".into());
                        }
                        options.threads = Some(n);
                    }
                    "--no-validate" => options.validate = false,
                    "--chaos" => {
                        options
                            .chaos
                            .extend(value(flag)?.split(',').map(|s| s.trim().to_string()));
                    }
                    "--retries" => {
                        options.retries = value(flag)?
                            .parse()
                            .map_err(|_| "--retries: expected an integer".to_string())?;
                    }
                    "--trace" => options.trace = true,
                    "--shutdown" => options.shutdown = true,
                    "--upload" => options.upload = true,
                    "--open" => options.open = Some(value(flag)?.clone()),
                    "--close" => options.close = Some(value(flag)?.clone()),
                    "--dataset" => options.dataset = Some(value(flag)?.clone()),
                    other => return Err(format!("unknown flag {other}")),
                }
                i += 1;
            }
            if !saw_addr {
                return Err("request: --addr is required".into());
            }
            let ops = [
                options.shutdown,
                options.upload,
                options.open.is_some(),
                options.close.is_some(),
                options.dataset.is_some(),
            ]
            .iter()
            .filter(|b| **b)
            .count();
            if ops > 1 {
                return Err(
                    "request: --shutdown, --upload, --open, --close and --dataset \
                     are mutually exclusive"
                        .into(),
                );
            }
            // Only the csv-bearing forms (plain discover, --upload) take a path.
            let wants_path = !options.shutdown
                && options.open.is_none()
                && options.close.is_none()
                && options.dataset.is_none();
            if wants_path && options.path.is_none() {
                return Err("request: missing <file.csv> (or pass --shutdown)".into());
            }
            if !wants_path && options.path.is_some() {
                return Err("request: this form takes no <file.csv>".into());
            }
            Ok(Command::Request { options })
        }
        other => Err(format!("unknown subcommand {other}")),
    }
}

fn parse_f64(s: &str) -> Result<f64, String> {
    s.parse()
        .map_err(|_| format!("expected a number, got {s:?}"))
}

/// Parses a byte count with an optional binary k/m/g suffix ("4096",
/// "64k", "8M", "1g").
fn parse_bytes(s: &str) -> Result<u64, String> {
    let t = s.trim();
    let (digits, mult) = match t.chars().last() {
        Some('k') | Some('K') => (&t[..t.len() - 1], 1u64 << 10),
        Some('m') | Some('M') => (&t[..t.len() - 1], 1u64 << 20),
        Some('g') | Some('G') => (&t[..t.len() - 1], 1u64 << 30),
        _ => (t, 1u64),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("expected a byte count (k/m/g suffix ok), got {s:?}"))?;
    if n == 0 {
        return Err("expected a positive byte count".into());
    }
    n.checked_mul(mult)
        .ok_or_else(|| format!("byte count {s:?} overflows u64"))
}

fn parse_ordering(s: &str) -> Result<OrderingMethod, String> {
    OrderingMethod::ALL
        .into_iter()
        .find(|m| m.label() == s)
        .ok_or_else(|| {
            format!("unknown ordering {s:?} (try: heuristic, natural, amd, colamd, metis, nesdis)")
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_discover_defaults() {
        let cmd = parse(&argv("discover data.csv")).unwrap();
        match cmd {
            Command::Discover { path, options } => {
                assert_eq!(path, "data.csv");
                assert_eq!(options, DiscoverOptions::default());
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parses_discover_flags() {
        let cmd = parse(&argv(
            "discover d.csv --threshold 0.2 --sparsity 0.01 --ordering natural --no-validate --heatmap --seed 9",
        ))
        .unwrap();
        match cmd {
            Command::Discover { options, .. } => {
                assert_eq!(options.threshold, Some(0.2));
                assert_eq!(options.sparsity, Some(0.01));
                assert_eq!(options.ordering, Some(OrderingMethod::Natural));
                assert!(!options.validate);
                assert!(options.heatmap);
                assert_eq!(options.seed, Some(9));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parses_score() {
        let cmd = parse(&argv("score d.csv --lhs zip,street --rhs city")).unwrap();
        assert_eq!(
            cmd,
            Command::Score {
                path: "d.csv".into(),
                lhs: vec!["zip".into(), "street".into()],
                rhs: "city".into(),
            }
        );
    }

    #[test]
    fn parses_trace_and_metrics() {
        let cmd = parse(&argv("discover d.csv --trace --metrics out.jsonl")).unwrap();
        match cmd {
            Command::Discover { options, .. } => {
                assert!(options.trace);
                assert_eq!(options.metrics.as_deref(), Some("out.jsonl"));
            }
            _ => unreachable!(),
        }
        // --metrics requires a value.
        assert!(parse(&argv("discover d.csv --metrics")).is_err());
    }

    #[test]
    fn parses_strict_and_time_budget() {
        let cmd = parse(&argv("discover d.csv --strict --time-budget 2.5")).unwrap();
        match cmd {
            Command::Discover { options, .. } => {
                assert!(options.strict);
                assert_eq!(options.time_budget, Some(2.5));
            }
            _ => unreachable!(),
        }
        assert!(parse(&argv("discover d.csv --time-budget")).is_err());
        assert!(parse(&argv("discover d.csv --time-budget nope")).is_err());
        let cmd = parse(&argv("discover d.csv --threads 4")).unwrap();
        match cmd {
            Command::Discover { options, .. } => assert_eq!(options.threads, Some(4)),
            _ => unreachable!(),
        }
        assert!(parse(&argv("discover d.csv --threads 0")).is_err());
        assert!(parse(&argv("discover d.csv --threads nope")).is_err());
        let defaults = parse(&argv("discover d.csv")).unwrap();
        match defaults {
            Command::Discover { options, .. } => {
                assert!(!options.strict);
                assert_eq!(options.time_budget, None);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parses_ingest_flags() {
        let cmd = parse(&argv(
            "discover d.csv --chunk-rows 512 --memory-budget 64m --on-bad-row skip",
        ))
        .unwrap();
        match cmd {
            Command::Discover { options, .. } => {
                assert_eq!(options.chunk_rows, Some(512));
                assert_eq!(options.memory_budget, Some(64 << 20));
                assert_eq!(options.on_bad_row, OnBadRow::Skip);
                assert_eq!(options.quarantine, None);
            }
            _ => unreachable!(),
        }
        // --quarantine implies the quarantine policy.
        let cmd = parse(&argv("discover d.csv --quarantine bad.jsonl")).unwrap();
        match cmd {
            Command::Discover { options, .. } => {
                assert_eq!(options.on_bad_row, OnBadRow::Quarantine);
                assert_eq!(options.quarantine.as_deref(), Some("bad.jsonl"));
            }
            _ => unreachable!(),
        }
        // Quarantine policy without a path is rejected.
        assert!(parse(&argv("discover d.csv --on-bad-row quarantine")).is_err());
        assert!(parse(&argv("discover d.csv --on-bad-row nuke")).is_err());
        assert!(parse(&argv("discover d.csv --chunk-rows 0")).is_err());
        assert!(parse(&argv("discover d.csv --memory-budget 0")).is_err());
        assert!(parse(&argv("discover d.csv --memory-budget lots")).is_err());
        // Defaults: resident-identical ingest, abort policy.
        match parse(&argv("discover d.csv")).unwrap() {
            Command::Discover { options, .. } => {
                assert_eq!(options.chunk_rows, None);
                assert_eq!(options.memory_budget, None);
                assert_eq!(options.on_bad_row, OnBadRow::Abort);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parses_byte_suffixes() {
        assert_eq!(parse_bytes("4096").unwrap(), 4096);
        assert_eq!(parse_bytes("64k").unwrap(), 64 << 10);
        assert_eq!(parse_bytes("8M").unwrap(), 8 << 20);
        assert_eq!(parse_bytes("1g").unwrap(), 1 << 30);
        assert!(parse_bytes("0").is_err());
        assert!(parse_bytes("1t").is_err());
        assert!(parse_bytes("99999999999g").is_err(), "overflow is caught");
    }

    #[test]
    fn parses_lint() {
        assert_eq!(
            parse(&argv("lint")).unwrap(),
            Command::Lint {
                options: LintArgs::default()
            }
        );
        let cmd = parse(&argv("lint --ratchet --format json --root /tmp/ws")).unwrap();
        assert_eq!(
            cmd,
            Command::Lint {
                options: LintArgs {
                    root: Some("/tmp/ws".into()),
                    ratchet: true,
                    write_baseline: false,
                    format_json: true,
                    sarif: None,
                    explain: None,
                }
            }
        );
        assert!(parse(&argv("lint --format yaml")).is_err());
        assert!(parse(&argv("lint --root")).is_err());
        assert!(parse(&argv("lint --bogus")).is_err());
    }

    #[test]
    fn parses_lint_sarif_and_explain() {
        let cmd = parse(&argv("lint --ratchet --sarif lint.sarif")).unwrap();
        match cmd {
            Command::Lint { options } => {
                assert!(options.ratchet);
                assert_eq!(options.sarif.as_deref(), Some("lint.sarif"));
            }
            _ => unreachable!(),
        }
        let cmd = parse(&argv("lint --explain L009")).unwrap();
        match cmd {
            Command::Lint { options } => assert_eq!(options.explain.as_deref(), Some("L009")),
            _ => unreachable!(),
        }
        assert!(parse(&argv("lint --sarif")).is_err());
        assert!(parse(&argv("lint --explain")).is_err());
    }

    #[test]
    fn parses_serve() {
        assert_eq!(
            parse(&argv("serve")).unwrap(),
            Command::Serve {
                options: ServeArgs::default()
            }
        );
        let cmd = parse(&argv(
            "serve --addr 127.0.0.1:7777 --threads 4 --queue-cap 2 --drain-timeout 0.5 --chaos --metrics m.jsonl --journal j.jsonl",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                options: ServeArgs {
                    addr: "127.0.0.1:7777".into(),
                    threads: Some(4),
                    queue_cap: 2,
                    drain_timeout: 0.5,
                    chaos: true,
                    metrics: Some("m.jsonl".into()),
                    journal: Some("j.jsonl".into()),
                    session_dir: None,
                    session_budget: None,
                    max_conns: 64,
                }
            }
        );
        assert!(parse(&argv("serve --queue-cap 0")).is_err());
        assert!(parse(&argv("serve --threads 0")).is_err());
        assert!(parse(&argv("serve --drain-timeout -1")).is_err());
        assert!(parse(&argv("serve --bogus")).is_err());
    }

    #[test]
    fn parses_serve_session_flags() {
        let cmd = parse(&argv(
            "serve --session-dir /tmp/sess --session-budget 64m --max-conns 8",
        ))
        .unwrap();
        match cmd {
            Command::Serve { options } => {
                assert_eq!(options.session_dir.as_deref(), Some("/tmp/sess"));
                assert_eq!(options.session_budget, Some(64 << 20));
                assert_eq!(options.max_conns, 8);
            }
            _ => unreachable!(),
        }
        assert!(parse(&argv("serve --max-conns 0")).is_err());
        assert!(parse(&argv("serve --session-budget 0")).is_err());
        assert!(parse(&argv("serve --session-dir")).is_err());
    }

    #[test]
    fn parses_request_session_ops() {
        // Upload carries the csv path; the handle forms must not.
        let cmd = parse(&argv("request d.csv --addr 1:2 --upload")).unwrap();
        match cmd {
            Command::Request { options } => {
                assert!(options.upload);
                assert_eq!(options.path.as_deref(), Some("d.csv"));
            }
            _ => unreachable!(),
        }
        let cmd = parse(&argv("request --addr 1:2 --open 00000000000000aa")).unwrap();
        match cmd {
            Command::Request { options } => {
                assert_eq!(options.open.as_deref(), Some("00000000000000aa"));
                assert_eq!(options.path, None);
            }
            _ => unreachable!(),
        }
        let cmd = parse(&argv(
            "request --addr 1:2 --dataset 00000000000000aa --sparsity 0.05",
        ))
        .unwrap();
        match cmd {
            Command::Request { options } => {
                assert_eq!(options.dataset.as_deref(), Some("00000000000000aa"));
                assert_eq!(options.sparsity, Some(0.05));
            }
            _ => unreachable!(),
        }
        // Handle forms reject a csv path; ops are mutually exclusive.
        assert!(parse(&argv("request d.csv --addr 1:2 --open aa")).is_err());
        assert!(parse(&argv("request d.csv --addr 1:2 --dataset aa")).is_err());
        assert!(parse(&argv("request --addr 1:2 --open aa --close bb")).is_err());
        assert!(parse(&argv("request d.csv --addr 1:2 --upload --shutdown")).is_err());
        // Plain upload without a path is rejected.
        assert!(parse(&argv("request --addr 1:2 --upload")).is_err());
    }

    #[test]
    fn parses_request() {
        let cmd = parse(&argv(
            "request d.csv --addr 127.0.0.1:7777 --id r1 --deadline-ms 500 --seed 3 \
             --chaos glasso.force_no_converge,clock.skew=1e6 --retries 2 --no-validate",
        ))
        .unwrap();
        match cmd {
            Command::Request { options } => {
                assert_eq!(options.path.as_deref(), Some("d.csv"));
                assert_eq!(options.addr, "127.0.0.1:7777");
                assert_eq!(options.id, "r1");
                assert_eq!(options.deadline_ms, Some(500));
                assert_eq!(options.seed, Some(3));
                assert_eq!(
                    options.chaos,
                    vec!["glasso.force_no_converge", "clock.skew=1e6"]
                );
                assert_eq!(options.retries, 2);
                assert!(!options.validate);
                assert!(!options.shutdown);
            }
            _ => unreachable!(),
        }
        // Shutdown form: no csv path, addr still required.
        let cmd = parse(&argv("request --addr 127.0.0.1:7777 --shutdown")).unwrap();
        match cmd {
            Command::Request { options } => {
                assert!(options.shutdown);
                assert_eq!(options.path, None);
            }
            _ => unreachable!(),
        }
        assert!(parse(&argv("request d.csv")).is_err(), "--addr is required");
        assert!(parse(&argv("request --addr 1:2")).is_err(), "csv required");
        assert!(parse(&argv("request d.csv --addr 1:2 --shutdown")).is_err());
    }

    #[test]
    fn parses_request_trace() {
        let cmd = parse(&argv("request d.csv --addr 1:2 --trace")).unwrap();
        match cmd {
            Command::Request { options } => assert!(options.trace),
            _ => unreachable!(),
        }
        let cmd = parse(&argv("request d.csv --addr 1:2")).unwrap();
        match cmd {
            Command::Request { options } => assert!(!options.trace),
            _ => unreachable!(),
        }
    }

    #[test]
    fn parses_stats() {
        assert_eq!(
            parse(&argv("stats 127.0.0.1:7777")).unwrap(),
            Command::Stats {
                options: StatsArgs {
                    addr: "127.0.0.1:7777".into(),
                    text: false,
                    journal: None,
                }
            }
        );
        assert_eq!(
            parse(&argv("stats 127.0.0.1:7777 --text --journal 32")).unwrap(),
            Command::Stats {
                options: StatsArgs {
                    addr: "127.0.0.1:7777".into(),
                    text: true,
                    journal: Some(32),
                }
            }
        );
        assert!(parse(&argv("stats")).is_err(), "addr is required");
        assert!(parse(&argv("stats 1:2 --journal nope")).is_err());
        assert!(parse(&argv("stats 1:2 --bogus")).is_err());
    }

    #[test]
    fn parses_top() {
        assert_eq!(
            parse(&argv("top 127.0.0.1:7777")).unwrap(),
            Command::Top {
                options: TopArgs {
                    addr: "127.0.0.1:7777".into(),
                    interval_secs: 2.0,
                    count: None,
                    journal: 8,
                }
            }
        );
        assert_eq!(
            parse(&argv("top 1:2 --interval 0.5 --count 3 --journal 4")).unwrap(),
            Command::Top {
                options: TopArgs {
                    addr: "1:2".into(),
                    interval_secs: 0.5,
                    count: Some(3),
                    journal: 4,
                }
            }
        );
        assert!(parse(&argv("top")).is_err(), "addr is required");
        assert!(parse(&argv("top 1:2 --interval 0")).is_err());
        assert!(parse(&argv("top 1:2 --count 0")).is_err());
        assert!(parse(&argv("top 1:2 --bogus")).is_err());
    }

    #[test]
    fn rejects_unknown_flags_and_subcommands() {
        assert!(parse(&argv("discover d.csv --bogus")).is_err());
        assert!(parse(&argv("nonsense")).is_err());
        assert!(parse(&argv("score d.csv --lhs a")).is_err());
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn ordering_names_match_table9_labels() {
        for m in OrderingMethod::ALL {
            assert_eq!(parse_ordering(m.label()).unwrap(), m);
        }
        assert!(parse_ordering("qr").is_err());
    }
}
