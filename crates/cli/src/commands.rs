//! Subcommand implementations.

use std::fmt::Write as _;

use fdx_core::{render_autoregression_heatmap, score_fd, Fdx, FdxConfig};
use fdx_data::{read_csv_str, BadRowPolicy, Dataset, IngestConfig, Ingested};

use crate::args::{
    Command, DiscoverOptions, LintArgs, OnBadRow, RequestArgs, ServeArgs, StatsArgs, TopArgs,
};

/// Runs a parsed command.
pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Discover { path, options } => discover(&path, &options),
        Command::Profile { path } => profile(&path),
        Command::Score { path, lhs, rhs } => score(&path, &lhs, &rhs),
        Command::Lint { options } => lint(&options),
        Command::Serve { options } => serve(&options),
        Command::Request { options } => request(&options),
        Command::Stats { options } => stats(&options),
        Command::Top { options } => top(&options),
    }
}

/// `fdx serve`: run the discovery service until a `shutdown` frame arrives,
/// then drain and exit 0 with a final flushed metrics snapshot.
fn serve(args: &ServeArgs) -> Result<(), String> {
    // The server mirrors its counters into obs; recording must be on for
    // the final snapshot (and any --metrics export) to carry them.
    fdx_obs::set_enabled(true);
    fdx_obs::Registry::global().reset();
    fdx_obs::journal::Journal::global().reset();
    let config = fdx_serve::ServeConfig {
        addr: args.addr.clone(),
        threads: args.threads,
        queue_cap: args.queue_cap,
        drain_timeout_secs: args.drain_timeout,
        chaos: args.chaos,
        metrics_path: args.metrics.as_ref().map(std::path::PathBuf::from),
        journal_path: args.journal.as_ref().map(std::path::PathBuf::from),
        session_dir: args.session_dir.as_ref().map(std::path::PathBuf::from),
        session_budget: args.session_budget,
        max_conns: args.max_conns,
        ..fdx_serve::ServeConfig::default()
    };
    let handle = fdx_serve::Server::start(config).map_err(|e| format!("serve: bind: {e}"))?;
    println!("fdx-serve listening on {}", handle.addr());
    if args.chaos {
        eprintln!("# chaos enabled: requests may arm fault-injection points");
    }
    let rec = handle.recovery();
    if args.session_dir.is_some() {
        eprintln!(
            "# sessions recovered: {} datasets, {} cached results, {} quarantined",
            rec.datasets,
            rec.results,
            rec.quarantined.len()
        );
        for q in &rec.quarantined {
            eprintln!("#   quarantined {}: {}", q.file, q.reason);
        }
    }
    let report = handle.wait();
    eprintln!(
        "# drained: {} requests, {} completed, {} shed, {} panics, {} deadline-exceeded, {} abandoned, {} stats{}",
        report.requests,
        report.completed,
        report.shed,
        report.panics,
        report.deadline_exceeded,
        report.abandoned,
        report.stats_requests,
        if report.drain_timed_out {
            " (drain timed out)"
        } else {
            ""
        }
    );
    Ok(())
}

/// Builds the wire frame for `fdx request` from parsed CLI options.
/// Public to the crate for tests.
fn build_request_frame(args: &RequestArgs, csv: String) -> Result<fdx_serve::RequestFrame, String> {
    let frame = fdx_serve::RequestFrame {
        id: args.id.clone(),
        csv,
        path: None,
        dataset: args.dataset.clone(),
        deadline_ms: args.deadline_ms,
        threshold: args.threshold,
        sparsity: args.sparsity,
        min_lift: args.min_lift,
        seed: args.seed,
        threads: args.threads,
        validate: if args.validate { None } else { Some(false) },
        trace: args.trace,
        chaos: parse_chaos_specs(args)?,
    };
    Ok(frame)
}

/// Parses the raw `--chaos` entries into validated wire specs.
fn parse_chaos_specs(args: &RequestArgs) -> Result<Vec<fdx_serve::ChaosSpec>, String> {
    let mut specs = Vec::new();
    for entry in &args.chaos {
        // Accepted spellings: `point`, `point=value`, `point:times`.
        let (name, times, value) = if let Some((n, v)) = entry.split_once('=') {
            let v: f64 = v
                .parse()
                .map_err(|_| format!("--chaos: bad value in {entry:?}"))?;
            (n, None, Some(v))
        } else if let Some((n, t)) = entry.split_once(':') {
            let t: u64 = t
                .parse()
                .map_err(|_| format!("--chaos: bad count in {entry:?}"))?;
            (n, Some(t), None)
        } else {
            (entry.as_str(), None, None)
        };
        let point = fdx_serve::protocol::intern_fault_point(name).ok_or_else(|| {
            format!(
                "--chaos: unknown fault point {name:?} (known: {})",
                fdx_serve::protocol::FAULT_POINTS.join(", ")
            )
        })?;
        specs.push(fdx_serve::ChaosSpec {
            point,
            times,
            value,
        });
    }
    Ok(specs)
}

/// `fdx request`: one exchange with a running server, retrying
/// `overloaded`/connect failures on the deterministic backoff schedule.
/// Idempotent forms — session ops and `--dataset` discovers — also retry
/// dropped connections, so a server restart mid-session is invisible.
fn request(args: &RequestArgs) -> Result<(), String> {
    let policy = fdx_serve::RetryPolicy {
        retries: args.retries,
        ..fdx_serve::RetryPolicy::default()
    };
    if args.shutdown {
        let line = fdx_serve::shutdown_line(&args.id);
        let resp = fdx_serve::client::send_line_with_retry(&args.addr, &line, &policy)
            .map_err(|e| format!("request: {e}"))?;
        println!("{}", resp.raw_line());
        return Ok(());
    }
    if let Some(line) = session_op_line(args)? {
        let resp = fdx_serve::send_idempotent_line(&args.addr, &line, &policy)
            .map_err(|e| format!("request: {e}"))?;
        println!("{}", resp.raw_line());
        return if resp.is_ok() {
            Ok(())
        } else {
            Err(format!(
                "request {}: {} ({})",
                resp.id,
                resp.code.as_deref().unwrap_or("error"),
                resp.detail.as_deref().unwrap_or("no detail")
            ))
        };
    }
    let csv = match args.path.as_deref() {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?,
        None => String::new(), // --dataset discover: the handle is the payload
    };
    let frame = build_request_frame(args, csv)?;
    let resp = if args.dataset.is_some() {
        // Handle discovers are idempotent (cached results replay verbatim),
        // so they may ride through a dropped connection.
        fdx_serve::send_idempotent_line(&args.addr, &frame.to_line(), &policy)
            .map_err(|e| format!("request: {e}"))?
    } else {
        fdx_serve::request(&args.addr, &frame, &policy).map_err(|e| format!("request: {e}"))?
    };
    println!("{}", resp.raw_line());
    if let Some(trace) = &resp.trace {
        // Same waterfall `fdx discover --trace` prints, captured remotely.
        eprint!("{}", fdx_obs::render_phase_tree(trace));
    }
    if resp.is_ok() {
        Ok(())
    } else {
        Err(format!(
            "request {}: {} ({})",
            resp.id,
            resp.code.as_deref().unwrap_or("error"),
            resp.detail.as_deref().unwrap_or("no detail")
        ))
    }
}

/// Builds the wire line for a session op (`--upload`/`--open`/`--close`),
/// or `None` when the request is a discover/shutdown form.
fn session_op_line(args: &RequestArgs) -> Result<Option<String>, String> {
    if args.upload {
        let path = args.path.as_deref().ok_or("request: missing <file.csv>")?;
        let csv = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let chaos = parse_chaos_specs(args)?;
        return Ok(Some(fdx_serve::upload_line(&args.id, &csv, &chaos)));
    }
    if let Some(handle) = &args.open {
        return Ok(Some(fdx_serve::open_line(&args.id, handle)));
    }
    if let Some(handle) = &args.close {
        return Ok(Some(fdx_serve::close_line(&args.id, handle)));
    }
    Ok(None)
}

/// `fdx stats`: one `stats` exchange with a running server — the raw JSON
/// reply by default, or a rendered table with `--text`. Stats is
/// idempotent, so the exchange retries across dropped connections.
fn stats(args: &StatsArgs) -> Result<(), String> {
    let resp = fdx_serve::stats_request(
        &args.addr,
        "stats-1",
        args.journal,
        &fdx_serve::RetryPolicy::default(),
    )
    .map_err(|e| format!("stats: {e}"))?;
    if !resp.is_ok() {
        return Err(format!(
            "stats: {} ({})",
            resp.code.as_deref().unwrap_or("error"),
            resp.detail.as_deref().unwrap_or("no detail")
        ));
    }
    if args.text {
        print!("{}", render_stats_text(&resp.raw));
    } else {
        println!("{}", resp.raw_line());
    }
    Ok(())
}

/// `fdx top`: periodically re-polled `fdx stats --text`. Errors after the
/// first successful poll are reported and polling continues (the server
/// may be briefly saturated — that is exactly when watching it matters).
fn top(args: &TopArgs) -> Result<(), String> {
    let mut poll: u64 = 0;
    loop {
        poll += 1;
        // No retries: a missed poll is itself the signal when watching live.
        match fdx_serve::stats_request(
            &args.addr,
            &format!("top-{poll}"),
            Some(args.journal),
            &fdx_serve::RetryPolicy::none(),
        ) {
            Ok(resp) if resp.is_ok() => {
                println!("== {}  poll {}", args.addr, poll);
                print!("{}", render_stats_text(&resp.raw));
            }
            Ok(resp) => println!(
                "== {}  poll {}: error {}",
                args.addr,
                poll,
                resp.code.as_deref().unwrap_or("?")
            ),
            Err(e) if poll == 1 => return Err(format!("top: {e}")),
            Err(e) => println!("== {}  poll {}: {e}", args.addr, poll),
        }
        if args.count.is_some_and(|c| poll >= c) {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(args.interval_secs));
    }
}

/// Renders a `stats` reply document as a compact table: server tallies,
/// shed-pressure percentiles, and the journal tail (oldest first).
fn render_stats_text(raw: &fdx_serve::json::JsonValue) -> String {
    let u = |k: &str| raw.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
    let f = |k: &str| raw.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "uptime {:.1}s  workers {}  queue {}/{}  inflight {}",
        f("uptime_secs"),
        u("workers"),
        u("queue_depth"),
        u("queue_cap"),
        u("inflight"),
    );
    let _ = writeln!(
        out,
        "requests {}  completed {}  shed {}  panics {}  bad_frames {}  \
         deadline_exceeded {}  abandoned {}  stats {}",
        u("requests"),
        u("completed"),
        u("shed"),
        u("panics"),
        u("bad_frames"),
        u("deadline_exceeded"),
        u("abandoned"),
        u("stats_requests"),
    );
    // Session/snapshot counters appear once a session op has run (or a
    // recovery scan found snapshots); silent otherwise to keep the plain
    // serve view compact.
    let counters = raw.get("counters");
    let c = |k: &str| {
        counters
            .and_then(|o| o.get(k))
            .and_then(|v| v.as_u64())
            .unwrap_or(0)
    };
    let session_total = c("fdx.session.uploads")
        + c("fdx.session.opens")
        + c("fdx.session.closes")
        + c("fdx.session.cache_hits")
        + c("fdx.session.cache_misses")
        + c("fdx.snapshot.writes")
        + c("fdx.snapshot.recovered")
        + c("fdx.snapshot.quarantined");
    if session_total > 0 {
        let resident = raw
            .get("gauges")
            .and_then(|o| o.get("fdx.session.resident_bytes"))
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        let _ = writeln!(
            out,
            "sessions: uploads {}  opens {}  closes {}  cache {}/{} hit  \
             evictions {}  warm_starts {}  resident {:.0}B",
            c("fdx.session.uploads"),
            c("fdx.session.opens"),
            c("fdx.session.closes"),
            c("fdx.session.cache_hits"),
            c("fdx.session.cache_hits") + c("fdx.session.cache_misses"),
            c("fdx.session.evictions"),
            c("fdx.session.warm_starts"),
            resident,
        );
        let _ = writeln!(
            out,
            "snapshots: writes {}  recovered {}  quarantined {}  conn_rejected {}",
            c("fdx.snapshot.writes"),
            c("fdx.snapshot.recovered"),
            c("fdx.snapshot.quarantined"),
            c("fdx.session.conn_rejected"),
        );
    }
    for name in ["queue_wait_ms", "service_ms"] {
        if let Some(h) = raw.get(name) {
            let hu = |k: &str| h.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
            let mean = h.get("mean").and_then(|v| v.as_f64()).unwrap_or(0.0);
            let _ = writeln!(
                out,
                "{name:<14} count {:<6} mean {mean:>8.1}  p50<={}  p95<={}  p99<={}",
                hu("count"),
                hu("p50"),
                hu("p95"),
                hu("p99"),
            );
        }
    }
    if let Some(journal) = raw.get("journal").and_then(|j| j.as_arr()) {
        if !journal.is_empty() {
            let _ = writeln!(out, "journal (oldest first):");
            let _ = writeln!(
                out,
                "  {:>5}  {:<18} {:<18} {:<16} {:>4}  {:>8}  {:>8}  {:>7}",
                "seq", "id", "outcome", "session", "rung", "wait_s", "total_s", "threads"
            );
            for e in journal {
                let es = |k: &str| e.get(k).and_then(|v| v.as_str()).unwrap_or("-");
                let eu = |k: &str| e.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
                let ef = |k: &str| e.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0);
                let _ = writeln!(
                    out,
                    "  {:>5}  {:<18} {:<18} {:<16} {:>4}  {:>8.3}  {:>8.3}  {:>7}",
                    eu("seq"),
                    es("id"),
                    es("outcome"),
                    es("session"),
                    eu("rung"),
                    ef("queue_wait_secs"),
                    ef("total_secs"),
                    eu("threads"),
                );
            }
        }
    }
    out
}

/// `fdx lint`: delegates to the `fdx-analyze` engine. The report goes to
/// stdout; a failing run (new violations, or any violation outside ratchet
/// mode) comes back as `Err` so `main` exits non-zero.
fn lint(args: &LintArgs) -> Result<(), String> {
    use std::path::{Path, PathBuf};

    if let Some(rule) = &args.explain {
        let rule = fdx_analyze::RuleId::parse(rule)
            .ok_or_else(|| format!("lint: unknown rule `{rule}` (see --list-rules)"))?;
        print!("{}", fdx_analyze::explain::explain(rule));
        return Ok(());
    }

    let root: PathBuf = match &args.root {
        Some(r) => PathBuf::from(r),
        None => std::env::current_dir()
            .ok()
            .and_then(|d| fdx_analyze::find_workspace_root(&d))
            .ok_or("lint: no workspace root found (pass --root)")?,
    };
    if !Path::new(&root).join("Cargo.toml").exists() {
        return Err(format!("lint: {} is not a workspace root", root.display()));
    }
    let mut opts = fdx_analyze::LintOptions::new(&root);
    opts.ratchet = args.ratchet;

    if args.write_baseline {
        let b = fdx_analyze::write_baseline(&opts)?;
        eprintln!(
            "wrote {} ({} entries, {} violations)",
            opts.baseline_path.display(),
            b.entries.len(),
            b.total()
        );
        return Ok(());
    }

    let report = fdx_analyze::run(&opts)?;
    if let Some(path) = &args.sarif {
        let doc = fdx_analyze::sarif::to_sarif(&report);
        fdx_analyze::sarif::validate(&doc)
            .map_err(|e| format!("lint: generated SARIF failed self-validation: {e}"))?;
        fdx_obs::write_atomic(Path::new(path), &doc)
            .map_err(|e| format!("lint: writing {path}: {e}"))?;
        eprintln!("wrote SARIF to {path}");
    }
    if args.format_json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }
    if report.failed() {
        Err(if args.ratchet {
            "lint: new violations not in lint-baseline.json".into()
        } else {
            "lint: violations found".into()
        })
    } else {
        Ok(())
    }
}

fn load(path: &str) -> Result<Dataset, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let raw = String::from_utf8(bytes).map_err(|e| {
        format!(
            "{path}: not valid UTF-8 (first invalid byte at offset {}); convert the file to UTF-8 and retry",
            e.utf8_error().valid_up_to()
        )
    })?;
    read_csv_str(&raw).map_err(|e| format!("{path}: {e}"))
}

fn build_config(options: &DiscoverOptions) -> FdxConfig {
    let mut cfg = FdxConfig::default();
    if let Some(noise) = options.noise {
        cfg = cfg.for_noise_rate(noise);
    }
    if let Some(t) = options.threshold {
        cfg.threshold = t;
    }
    if let Some(s) = options.sparsity {
        cfg.sparsity = s;
    }
    if let Some(l) = options.min_lift {
        cfg.min_lift = l;
    }
    if let Some(o) = options.ordering {
        cfg.ordering = o;
    }
    if let Some(seed) = options.seed {
        cfg.transform.seed = seed;
    }
    if let Some(threads) = options.threads {
        cfg = cfg.with_threads(threads);
    }
    if let Some(budget) = options.time_budget {
        cfg.time_budget = Some(budget);
    }
    cfg.validate = options.validate;
    cfg
}

/// Maps the CLI ingest flags onto an `fdx_data::IngestConfig`.
fn build_ingest_config(options: &DiscoverOptions) -> IngestConfig {
    IngestConfig {
        chunk_rows: options.chunk_rows,
        on_bad_row: match options.on_bad_row {
            OnBadRow::Abort => BadRowPolicy::Abort,
            OnBadRow::Skip => BadRowPolicy::Skip,
            // args::parse guarantees the path is present for this policy.
            OnBadRow::Quarantine => BadRowPolicy::Quarantine(
                options
                    .quarantine
                    .as_deref()
                    .unwrap_or("quarantine.jsonl")
                    .into(),
            ),
        },
        memory_budget: options.memory_budget,
    }
}

fn discover(path: &str, options: &DiscoverOptions) -> Result<(), String> {
    let cfg = build_config(options);
    let observing = options.trace || options.metrics.is_some();
    if observing {
        // Start from a clean slate so the export covers exactly this run.
        fdx_obs::set_enabled(true);
        fdx_obs::Registry::global().reset();
        let _ = fdx_obs::take_trace();
    }
    // Every discover goes through the chunked out-of-core reader; with the
    // default flags it reconstructs the identical dataset a resident read
    // would (asserted in fdx_data), so this is a pure superset.
    let run = fdx_data::ingest_csv_file(path, &build_ingest_config(options))
        .map_err(|e| e.to_string())
        .map(
            |Ingested {
                 dataset, health, ..
             }| (dataset, health),
        )
        .and_then(|(data, ingest_health)| {
            Fdx::new(cfg)
                .discover(&data)
                .map_err(|e| e.to_string())
                .map(|mut result| {
                    result.health.ingest = Some(ingest_health);
                    (result, data)
                })
        });
    let trace = if observing {
        fdx_obs::set_enabled(false);
        fdx_obs::take_trace()
    } else {
        Vec::new()
    };
    let (result, data) = run?;
    if options.heatmap {
        println!(
            "{}",
            render_autoregression_heatmap(&result.autoregression, data.schema())
        );
    }
    if result.fds.is_empty() {
        println!("no functional dependencies found");
    } else {
        print!("{}", result.fds.render(data.schema()));
    }
    eprintln!(
        "# {} rows x {} attributes; transform {:.3}s, model {:.3}s",
        data.nrows(),
        data.ncols(),
        result.timings.transform_secs,
        result.timings.model_secs()
    );
    eprint!("# {}", result.health.render());
    if options.trace {
        eprint!("{}", fdx_obs::render_phase_tree(&trace));
    }
    if let Some(mpath) = &options.metrics {
        let mut out = String::new();
        out.push_str(&result.summary_json());
        out.push('\n');
        for root in &trace {
            out.push_str(
                &fdx_obs::json::Obj::new()
                    .str_("kind", "phase")
                    .raw("tree", &root.to_json())
                    .finish(),
            );
            out.push('\n');
        }
        out.push_str(&fdx_obs::export_jsonl(
            &fdx_obs::Registry::global().snapshot(),
        ));
        // Crash-safe: a killed process must never leave truncated JSONL.
        fdx_obs::write_atomic(std::path::Path::new(mpath), &out)
            .map_err(|e| format!("{mpath}: {e}"))?;
    }
    if observing {
        fdx_obs::Registry::global().reset();
    }
    if options.strict && result.health.degraded() {
        return Err(format!(
            "strict: run degraded (rung {}, {} recoveries)",
            result.health.rung,
            result.health.recoveries.len()
        ));
    }
    Ok(())
}

fn profile(path: &str) -> Result<(), String> {
    let data = load(path)?;
    let result = Fdx::new(FdxConfig::default())
        .discover(&data)
        .map_err(|e| e.to_string())?;
    let mut in_fd = vec![false; data.ncols()];
    for (x, y) in result.fds.edge_set() {
        in_fd[x] = true;
        in_fd[y] = true;
    }
    let name_w = (0..data.ncols())
        .map(|a| data.schema().name(a).len())
        .max()
        .unwrap_or(6)
        .max(6);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<name_w$}  {:>9}  {:>7}  {:>7}  dependency",
        "column", "distinct", "nulls", "null%"
    );
    for a in 0..data.ncols() {
        let col = data.column(a);
        let nulls = col.null_count();
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>9}  {:>7}  {:>6.1}%  {}",
            data.schema().name(a),
            col.distinct_count(),
            nulls,
            100.0 * nulls as f64 / data.nrows().max(1) as f64,
            if in_fd[a] { "yes" } else { "-" }
        );
    }
    print!("{out}");
    println!("\ndependencies:");
    if result.fds.is_empty() {
        println!("  (none)");
    } else {
        for fd in result.fds.iter() {
            println!("  {}", fd.display(data.schema()));
        }
    }
    Ok(())
}

fn score(path: &str, lhs_names: &[String], rhs_name: &str) -> Result<(), String> {
    let data = load(path)?;
    let resolve = |name: &str| {
        data.schema()
            .id_of(name)
            .ok_or_else(|| format!("no column named {name:?} (have: {})", data.schema()))
    };
    let lhs: Vec<usize> = lhs_names
        .iter()
        .map(|n| resolve(n))
        .collect::<Result<_, _>>()?;
    let rhs = resolve(rhs_name)?;
    if lhs.contains(&rhs) {
        return Err("rhs attribute may not appear in lhs".into());
    }
    let s = score_fd(&data, &lhs, rhs);
    println!("FD        {} -> {}", lhs_names.join(","), rhs_name);
    println!(
        "conditional P(rhs agrees | lhs agrees) = {:.4}",
        s.conditional
    );
    println!("baseline    P(rhs agrees)              = {:.4}", s.baseline);
    println!("lift        (rho - beta)/(1 - beta)    = {:.4}", s.lift);
    println!(
        "support     lhs-agreeing tuple pairs   = {}",
        s.support_pairs
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::DiscoverOptions;

    #[test]
    fn config_mapping() {
        let mut opts = DiscoverOptions::default();
        opts.threshold = Some(0.3);
        opts.noise = Some(0.1);
        opts.validate = false;
        let cfg = build_config(&opts);
        // Explicit threshold overrides the noise-derived one.
        assert_eq!(cfg.threshold, 0.3);
        assert!(!cfg.validate);
        assert!(cfg.min_lift < 0.85);
        assert_eq!(cfg.threads, None);
        let threaded = build_config(&DiscoverOptions {
            threads: Some(3),
            ..Default::default()
        });
        assert_eq!(threaded.threads, Some(3));
        assert_eq!(threaded.transform.threads, Some(3));
    }

    #[test]
    fn discover_and_profile_on_temp_csv() {
        let dir = std::env::temp_dir().join("fdx_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let mut csv = String::from("zip,city\n");
        for i in 0..60 {
            let zip = i % 12;
            csv.push_str(&format!("z{zip},c{}\n", zip / 3));
        }
        std::fs::write(&path, csv).unwrap();
        let p = path.to_str().unwrap();
        discover(p, &DiscoverOptions::default()).unwrap();
        profile(p).unwrap();
        score(p, &["zip".to_string()], "city").unwrap();
        assert!(score(p, &["city".to_string()], "nope").is_err());
        assert!(score(p, &["city".to_string()], "city").is_err());
    }

    #[test]
    fn discover_writes_metrics_jsonl() {
        let dir = std::env::temp_dir().join("fdx_cli_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv_path = dir.join("m.csv");
        let mut csv = String::from("zip,city,state\n");
        for i in 0..80 {
            let zip = i % 16;
            csv.push_str(&format!("z{zip},c{},s{}\n", zip / 2, zip / 8));
        }
        std::fs::write(&csv_path, csv).unwrap();
        let metrics_path = dir.join("m.jsonl");
        let opts = DiscoverOptions {
            trace: true,
            metrics: Some(metrics_path.to_str().unwrap().to_string()),
            ..Default::default()
        };
        discover(csv_path.to_str().unwrap(), &opts).unwrap();
        let text = std::fs::read_to_string(&metrics_path).unwrap();
        let first = text.lines().next().unwrap();
        assert!(first.contains(r#""kind":"run_summary""#), "{first}");
        assert!(
            first.contains(r#""health":{"kind":"health","rung":1"#),
            "health report missing from run summary: {first}"
        );
        assert!(text.contains(r#""kind":"phase""#), "phase tree missing");
        assert!(text.contains("fdx.discover"), "root span missing");
        assert!(
            text.contains(r#""name":"fdx.glasso.summary""#),
            "glasso convergence summary missing:\n{text}"
        );
        for phase in [
            "fdx.transform",
            "fdx.covariance",
            "fdx.ordering",
            "fdx.factorization",
            "fdx.generation",
            "fdx.validation.repair",
            "fdx.validation.scoring",
        ] {
            assert!(
                text.contains(phase),
                "{phase} missing from metrics:\n{text}"
            );
        }
        assert!(
            text.contains("fdx.validate.score_calls"),
            "validation scoring counters missing from metrics:\n{text}"
        );
    }

    #[test]
    fn request_frame_building_maps_chaos_spellings() {
        let args = RequestArgs {
            id: "r1".into(),
            deadline_ms: Some(500),
            chaos: vec![
                "glasso.force_no_converge".into(),
                "clock.skew=1e6".into(),
                "udut.force_not_pd:1".into(),
            ],
            validate: false,
            ..RequestArgs::default()
        };
        let frame = build_request_frame(&args, "a,b\n1,2\n".into()).unwrap();
        assert_eq!(frame.id, "r1");
        assert_eq!(frame.deadline_ms, Some(500));
        assert_eq!(frame.validate, Some(false));
        assert_eq!(frame.chaos.len(), 3);
        assert_eq!(frame.chaos[0].point, "glasso.force_no_converge");
        assert_eq!(frame.chaos[1].value, Some(1e6));
        assert_eq!(frame.chaos[2].times, Some(1));
        // Validation defaults to "absent" (server default true).
        let frame = build_request_frame(&RequestArgs::default(), "a\n1\n".into()).unwrap();
        assert_eq!(frame.validate, None);
        // Unknown fault points are rejected client-side with the full list.
        let bad = RequestArgs {
            chaos: vec!["nope.nope".into()],
            ..RequestArgs::default()
        };
        let err = build_request_frame(&bad, String::new()).unwrap_err();
        assert!(err.contains("unknown fault point"), "{err}");
        assert!(err.contains("glasso.force_no_converge"), "{err}");
    }

    #[test]
    fn metrics_file_write_is_atomic_no_temp_left_behind() {
        let dir = std::env::temp_dir().join("fdx_cli_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv_path = dir.join("a.csv");
        let mut csv = String::from("zip,city\n");
        for i in 0..60 {
            let zip = i % 12;
            csv.push_str(&format!("z{zip},c{}\n", zip / 3));
        }
        std::fs::write(&csv_path, csv).unwrap();
        let metrics_path = dir.join("a.jsonl");
        // Pre-existing truncated output from a "killed" earlier run.
        std::fs::write(&metrics_path, "{\"kind\":\"run_su").unwrap();
        let opts = DiscoverOptions {
            metrics: Some(metrics_path.to_str().unwrap().to_string()),
            ..Default::default()
        };
        discover(csv_path.to_str().unwrap(), &opts).unwrap();
        let text = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(text.lines().next().unwrap().contains("run_summary"));
        assert!(text.lines().all(|l| l.ends_with('}')), "truncated line");
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(stray.is_empty(), "temp files left behind: {stray:?}");
    }

    #[test]
    fn request_frame_carries_trace_flag() {
        let args = RequestArgs {
            trace: true,
            ..RequestArgs::default()
        };
        let frame = build_request_frame(&args, "a\n1\n".into()).unwrap();
        assert!(frame.trace);
        assert!(frame.to_line().contains("\"trace\":true"));
    }

    #[test]
    fn render_stats_text_tabulates_reply() {
        let stats = fdx_serve::ServerStats {
            uptime_secs: 12.25,
            workers: 4,
            queue_depth: 2,
            queue_cap: 64,
            inflight: 4,
            requests: 120,
            completed: 110,
            shed: 3,
            deadline_exceeded: 2,
            stats_requests: 5,
            ..fdx_serve::ServerStats::default()
        };
        let entry = fdx_obs::journal::JournalEntry {
            seq: 9,
            id: "r9".into(),
            outcome: "deadline_exceeded".into(),
            session: Some("00000000000000aa".into()),
            queue_wait_secs: 0.125,
            total_secs: 0.5,
            phases: Vec::new(),
            rung: 0,
            threads: 1,
        };
        let line =
            fdx_serve::protocol::stats_frame("s1", &stats, &fdx_obs::Snapshot::default(), &[entry]);
        let resp = fdx_serve::Response::parse(&line).unwrap();
        let text = render_stats_text(&resp.raw);
        assert!(
            text.contains("uptime 12.2s  workers 4  queue 2/64  inflight 4"),
            "{text}"
        );
        assert!(text.contains("requests 120"), "{text}");
        assert!(text.contains("queue_wait_ms"), "{text}");
        assert!(text.contains("journal (oldest first):"), "{text}");
        assert!(text.contains("deadline_exceeded"), "{text}");
        assert!(text.contains("r9"), "{text}");
        assert!(text.contains("00000000000000aa"), "{text}");
        // No session ops recorded → the session summary lines stay silent.
        assert!(!text.contains("sessions:"), "{text}");
    }

    #[test]
    fn stats_and_top_against_live_server() {
        let handle = fdx_serve::Server::start(fdx_serve::ServeConfig {
            threads: Some(1),
            ..fdx_serve::ServeConfig::default()
        })
        .unwrap();
        let addr = handle.addr().to_string();
        stats(&StatsArgs {
            addr: addr.clone(),
            text: false,
            journal: None,
        })
        .unwrap();
        stats(&StatsArgs {
            addr: addr.clone(),
            text: true,
            journal: Some(4),
        })
        .unwrap();
        top(&TopArgs {
            addr: addr.clone(),
            interval_secs: 0.01,
            count: Some(2),
            journal: 4,
        })
        .unwrap();
        // A dead address fails fast on the first poll.
        handle.shutdown();
        let report = handle.wait();
        assert_eq!(report.stats_requests, 4);
        assert!(top(&TopArgs {
            addr,
            interval_secs: 0.01,
            count: Some(1),
            journal: 1,
        })
        .is_err());
    }

    #[test]
    fn discover_quarantines_bad_rows() {
        let dir = std::env::temp_dir().join("fdx_cli_quarantine_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("q.csv");
        let mut csv = String::from("zip,city\n");
        for i in 0..60 {
            let zip = i % 12;
            csv.push_str(&format!("z{zip},c{}\n", zip / 3));
            if i == 30 {
                csv.push_str("ragged,row,extra,fields\n");
            }
        }
        std::fs::write(&path, csv).unwrap();
        let p = path.to_str().unwrap();

        // The default abort policy fails with a typed, line-numbered error.
        let err = discover(p, &DiscoverOptions::default()).unwrap_err();
        assert!(err.contains("line"), "{err}");

        // Quarantine: the run succeeds and the bad row lands in the file.
        let qpath = dir.join("bad.jsonl");
        let _ = std::fs::remove_file(&qpath);
        let opts = DiscoverOptions {
            on_bad_row: OnBadRow::Quarantine,
            quarantine: Some(qpath.to_str().unwrap().to_string()),
            ..Default::default()
        };
        discover(p, &opts).unwrap();
        let q = std::fs::read_to_string(&qpath).unwrap();
        assert!(q.contains(r#""kind":"quarantine""#), "{q}");
        assert!(q.contains("ragged"), "{q}");

        // The same run under --strict fails: quarantined rows degrade it.
        let strict = DiscoverOptions {
            strict: true,
            ..opts
        };
        let err = discover(p, &strict).unwrap_err();
        assert!(err.contains("strict"), "{err}");
    }

    #[test]
    fn discover_respects_memory_budget() {
        let dir = std::env::temp_dir().join("fdx_cli_budget_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("b.csv");
        let mut csv = String::from("zip,city\n");
        for i in 0..400 {
            let zip = i % 12;
            csv.push_str(&format!("z{zip},c{}\n", zip / 3));
        }
        std::fs::write(&path, csv).unwrap();
        let p = path.to_str().unwrap();

        // A tight budget degrades to sampled rows but still completes.
        let opts = DiscoverOptions {
            chunk_rows: Some(32),
            memory_budget: Some(4000),
            ..Default::default()
        };
        discover(p, &opts).unwrap();
        // Under --strict the sampled rung is a failure.
        let strict = DiscoverOptions {
            strict: true,
            ..opts
        };
        assert!(discover(p, &strict).is_err());
        // An impossible budget is a typed error, not a hang or a panic.
        let impossible = DiscoverOptions {
            chunk_rows: Some(32),
            memory_budget: Some(16),
            ..Default::default()
        };
        let err = discover(p, &impossible).unwrap_err();
        assert!(err.contains("memory budget"), "{err}");
    }

    #[test]
    fn missing_file_reports_path() {
        let err = load("/definitely/not/here.csv").unwrap_err();
        assert!(err.contains("here.csv"));
    }

    #[test]
    fn non_utf8_file_reports_path_and_encoding() {
        let dir = std::env::temp_dir().join("fdx_cli_utf8_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("latin1.csv");
        // "a,b\ncafé,x\n" with é encoded as Latin-1 0xE9: invalid UTF-8.
        std::fs::write(&path, b"a,b\ncaf\xE9,x\n").unwrap();
        let err = load(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("latin1.csv"), "{err}");
        assert!(err.contains("not valid UTF-8"), "{err}");
    }

    #[test]
    fn strict_mode_fails_only_degraded_runs() {
        let dir = std::env::temp_dir().join("fdx_cli_strict_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.csv");
        let mut csv = String::from("zip,city\n");
        for i in 0..60 {
            let zip = i % 12;
            csv.push_str(&format!("z{zip},c{}\n", zip / 3));
        }
        std::fs::write(&path, csv).unwrap();
        let p = path.to_str().unwrap();
        let opts = DiscoverOptions {
            strict: true,
            ..Default::default()
        };
        discover(p, &opts).expect("clean run must pass --strict");
        // Force a ladder descent: the same run must now exit non-zero.
        let _f = fdx_obs::faults::arm_times("glasso.force_no_converge", 1);
        let err = discover(p, &opts).unwrap_err();
        assert!(err.contains("strict"), "{err}");
        // Without --strict a degraded run still succeeds.
        let _f = fdx_obs::faults::arm_times("glasso.force_no_converge", 1);
        discover(p, &DiscoverOptions::default()).expect("degraded run passes without --strict");
    }
}
