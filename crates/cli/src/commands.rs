//! Subcommand implementations.

use std::fmt::Write as _;

use fdx_core::{render_autoregression_heatmap, score_fd, Fdx, FdxConfig};
use fdx_data::{read_csv_str, Dataset};

use crate::args::{Command, DiscoverOptions, LintArgs};

/// Runs a parsed command.
pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Discover { path, options } => discover(&path, &options),
        Command::Profile { path } => profile(&path),
        Command::Score { path, lhs, rhs } => score(&path, &lhs, &rhs),
        Command::Lint { options } => lint(&options),
    }
}

/// `fdx lint`: delegates to the `fdx-analyze` engine. The report goes to
/// stdout; a failing run (new violations, or any violation outside ratchet
/// mode) comes back as `Err` so `main` exits non-zero.
fn lint(args: &LintArgs) -> Result<(), String> {
    use std::path::{Path, PathBuf};

    let root: PathBuf = match &args.root {
        Some(r) => PathBuf::from(r),
        None => std::env::current_dir()
            .ok()
            .and_then(|d| fdx_analyze::find_workspace_root(&d))
            .ok_or("lint: no workspace root found (pass --root)")?,
    };
    if !Path::new(&root).join("Cargo.toml").exists() {
        return Err(format!("lint: {} is not a workspace root", root.display()));
    }
    let mut opts = fdx_analyze::LintOptions::new(&root);
    opts.ratchet = args.ratchet;

    if args.write_baseline {
        let b = fdx_analyze::write_baseline(&opts)?;
        eprintln!(
            "wrote {} ({} entries, {} violations)",
            opts.baseline_path.display(),
            b.entries.len(),
            b.total()
        );
        return Ok(());
    }

    let report = fdx_analyze::run(&opts)?;
    if args.format_json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }
    if report.failed() {
        Err(if args.ratchet {
            "lint: new violations not in lint-baseline.json".into()
        } else {
            "lint: violations found".into()
        })
    } else {
        Ok(())
    }
}

fn load(path: &str) -> Result<Dataset, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let raw = String::from_utf8(bytes).map_err(|e| {
        format!(
            "{path}: not valid UTF-8 (first invalid byte at offset {}); convert the file to UTF-8 and retry",
            e.utf8_error().valid_up_to()
        )
    })?;
    read_csv_str(&raw).map_err(|e| format!("{path}: {e}"))
}

fn build_config(options: &DiscoverOptions) -> FdxConfig {
    let mut cfg = FdxConfig::default();
    if let Some(noise) = options.noise {
        cfg = cfg.for_noise_rate(noise);
    }
    if let Some(t) = options.threshold {
        cfg.threshold = t;
    }
    if let Some(s) = options.sparsity {
        cfg.sparsity = s;
    }
    if let Some(l) = options.min_lift {
        cfg.min_lift = l;
    }
    if let Some(o) = options.ordering {
        cfg.ordering = o;
    }
    if let Some(seed) = options.seed {
        cfg.transform.seed = seed;
    }
    if let Some(threads) = options.threads {
        cfg = cfg.with_threads(threads);
    }
    if let Some(budget) = options.time_budget {
        cfg.time_budget = Some(budget);
    }
    cfg.validate = options.validate;
    cfg
}

fn discover(path: &str, options: &DiscoverOptions) -> Result<(), String> {
    let data = load(path)?;
    let cfg = build_config(options);
    let observing = options.trace || options.metrics.is_some();
    if observing {
        // Start from a clean slate so the export covers exactly this run.
        fdx_obs::set_enabled(true);
        fdx_obs::Registry::global().reset();
        let _ = fdx_obs::take_trace();
    }
    let run = Fdx::new(cfg).discover(&data);
    let trace = if observing {
        fdx_obs::set_enabled(false);
        fdx_obs::take_trace()
    } else {
        Vec::new()
    };
    let result = run.map_err(|e| e.to_string())?;
    if options.heatmap {
        println!(
            "{}",
            render_autoregression_heatmap(&result.autoregression, data.schema())
        );
    }
    if result.fds.is_empty() {
        println!("no functional dependencies found");
    } else {
        print!("{}", result.fds.render(data.schema()));
    }
    eprintln!(
        "# {} rows x {} attributes; transform {:.3}s, model {:.3}s",
        data.nrows(),
        data.ncols(),
        result.timings.transform_secs,
        result.timings.model_secs()
    );
    eprint!("# {}", result.health.render());
    if options.trace {
        eprint!("{}", fdx_obs::render_phase_tree(&trace));
    }
    if let Some(mpath) = &options.metrics {
        let mut out = String::new();
        out.push_str(&result.summary_json());
        out.push('\n');
        for root in &trace {
            out.push_str(
                &fdx_obs::json::Obj::new()
                    .str_("kind", "phase")
                    .raw("tree", &root.to_json())
                    .finish(),
            );
            out.push('\n');
        }
        out.push_str(&fdx_obs::export_jsonl(
            &fdx_obs::Registry::global().snapshot(),
        ));
        std::fs::write(mpath, out).map_err(|e| format!("{mpath}: {e}"))?;
    }
    if observing {
        fdx_obs::Registry::global().reset();
    }
    if options.strict && result.health.degraded() {
        return Err(format!(
            "strict: run degraded (rung {}, {} recoveries)",
            result.health.rung,
            result.health.recoveries.len()
        ));
    }
    Ok(())
}

fn profile(path: &str) -> Result<(), String> {
    let data = load(path)?;
    let result = Fdx::new(FdxConfig::default())
        .discover(&data)
        .map_err(|e| e.to_string())?;
    let mut in_fd = vec![false; data.ncols()];
    for (x, y) in result.fds.edge_set() {
        in_fd[x] = true;
        in_fd[y] = true;
    }
    let name_w = (0..data.ncols())
        .map(|a| data.schema().name(a).len())
        .max()
        .unwrap_or(6)
        .max(6);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<name_w$}  {:>9}  {:>7}  {:>7}  dependency",
        "column", "distinct", "nulls", "null%"
    );
    for a in 0..data.ncols() {
        let col = data.column(a);
        let nulls = col.null_count();
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>9}  {:>7}  {:>6.1}%  {}",
            data.schema().name(a),
            col.distinct_count(),
            nulls,
            100.0 * nulls as f64 / data.nrows().max(1) as f64,
            if in_fd[a] { "yes" } else { "-" }
        );
    }
    print!("{out}");
    println!("\ndependencies:");
    if result.fds.is_empty() {
        println!("  (none)");
    } else {
        for fd in result.fds.iter() {
            println!("  {}", fd.display(data.schema()));
        }
    }
    Ok(())
}

fn score(path: &str, lhs_names: &[String], rhs_name: &str) -> Result<(), String> {
    let data = load(path)?;
    let resolve = |name: &str| {
        data.schema()
            .id_of(name)
            .ok_or_else(|| format!("no column named {name:?} (have: {})", data.schema()))
    };
    let lhs: Vec<usize> = lhs_names
        .iter()
        .map(|n| resolve(n))
        .collect::<Result<_, _>>()?;
    let rhs = resolve(rhs_name)?;
    if lhs.contains(&rhs) {
        return Err("rhs attribute may not appear in lhs".into());
    }
    let s = score_fd(&data, &lhs, rhs);
    println!("FD        {} -> {}", lhs_names.join(","), rhs_name);
    println!(
        "conditional P(rhs agrees | lhs agrees) = {:.4}",
        s.conditional
    );
    println!("baseline    P(rhs agrees)              = {:.4}", s.baseline);
    println!("lift        (rho - beta)/(1 - beta)    = {:.4}", s.lift);
    println!(
        "support     lhs-agreeing tuple pairs   = {}",
        s.support_pairs
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::DiscoverOptions;

    #[test]
    fn config_mapping() {
        let mut opts = DiscoverOptions::default();
        opts.threshold = Some(0.3);
        opts.noise = Some(0.1);
        opts.validate = false;
        let cfg = build_config(&opts);
        // Explicit threshold overrides the noise-derived one.
        assert_eq!(cfg.threshold, 0.3);
        assert!(!cfg.validate);
        assert!(cfg.min_lift < 0.85);
        assert_eq!(cfg.threads, None);
        let threaded = build_config(&DiscoverOptions {
            threads: Some(3),
            ..Default::default()
        });
        assert_eq!(threaded.threads, Some(3));
        assert_eq!(threaded.transform.threads, Some(3));
    }

    #[test]
    fn discover_and_profile_on_temp_csv() {
        let dir = std::env::temp_dir().join("fdx_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let mut csv = String::from("zip,city\n");
        for i in 0..60 {
            let zip = i % 12;
            csv.push_str(&format!("z{zip},c{}\n", zip / 3));
        }
        std::fs::write(&path, csv).unwrap();
        let p = path.to_str().unwrap();
        discover(p, &DiscoverOptions::default()).unwrap();
        profile(p).unwrap();
        score(p, &["zip".to_string()], "city").unwrap();
        assert!(score(p, &["city".to_string()], "nope").is_err());
        assert!(score(p, &["city".to_string()], "city").is_err());
    }

    #[test]
    fn discover_writes_metrics_jsonl() {
        let dir = std::env::temp_dir().join("fdx_cli_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv_path = dir.join("m.csv");
        let mut csv = String::from("zip,city,state\n");
        for i in 0..80 {
            let zip = i % 16;
            csv.push_str(&format!("z{zip},c{},s{}\n", zip / 2, zip / 8));
        }
        std::fs::write(&csv_path, csv).unwrap();
        let metrics_path = dir.join("m.jsonl");
        let opts = DiscoverOptions {
            trace: true,
            metrics: Some(metrics_path.to_str().unwrap().to_string()),
            ..Default::default()
        };
        discover(csv_path.to_str().unwrap(), &opts).unwrap();
        let text = std::fs::read_to_string(&metrics_path).unwrap();
        let first = text.lines().next().unwrap();
        assert!(first.contains(r#""kind":"run_summary""#), "{first}");
        assert!(
            first.contains(r#""health":{"kind":"health","rung":1"#),
            "health report missing from run summary: {first}"
        );
        assert!(text.contains(r#""kind":"phase""#), "phase tree missing");
        assert!(text.contains("fdx.discover"), "root span missing");
        assert!(
            text.contains(r#""name":"fdx.glasso.summary""#),
            "glasso convergence summary missing:\n{text}"
        );
        for phase in [
            "fdx.transform",
            "fdx.covariance",
            "fdx.ordering",
            "fdx.factorization",
            "fdx.generation",
        ] {
            assert!(
                text.contains(phase),
                "{phase} missing from metrics:\n{text}"
            );
        }
    }

    #[test]
    fn missing_file_reports_path() {
        let err = load("/definitely/not/here.csv").unwrap_err();
        assert!(err.contains("here.csv"));
    }

    #[test]
    fn non_utf8_file_reports_path_and_encoding() {
        let dir = std::env::temp_dir().join("fdx_cli_utf8_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("latin1.csv");
        // "a,b\ncafé,x\n" with é encoded as Latin-1 0xE9: invalid UTF-8.
        std::fs::write(&path, b"a,b\ncaf\xE9,x\n").unwrap();
        let err = load(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("latin1.csv"), "{err}");
        assert!(err.contains("not valid UTF-8"), "{err}");
    }

    #[test]
    fn strict_mode_fails_only_degraded_runs() {
        let dir = std::env::temp_dir().join("fdx_cli_strict_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.csv");
        let mut csv = String::from("zip,city\n");
        for i in 0..60 {
            let zip = i % 12;
            csv.push_str(&format!("z{zip},c{}\n", zip / 3));
        }
        std::fs::write(&path, csv).unwrap();
        let p = path.to_str().unwrap();
        let opts = DiscoverOptions {
            strict: true,
            ..Default::default()
        };
        discover(p, &opts).expect("clean run must pass --strict");
        // Force a ladder descent: the same run must now exit non-zero.
        let _f = fdx_obs::faults::arm_times("glasso.force_no_converge", 1);
        let err = discover(p, &opts).unwrap_err();
        assert!(err.contains("strict"), "{err}");
        // Without --strict a degraded run still succeeds.
        let _f = fdx_obs::faults::arm_times("glasso.force_no_converge", 1);
        discover(p, &DiscoverOptions::default()).expect("degraded run passes without --strict");
    }
}
