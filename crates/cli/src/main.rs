//! `fdx` — command-line functional-dependency discovery.
//!
//! ```text
//! fdx discover data.csv [--threshold T] [--sparsity L] [--min-lift M]
//!                       [--ordering natural|heuristic|amd|colamd|metis|nesdis]
//!                       [--seed N] [--no-validate] [--heatmap]
//!                       [--trace] [--metrics out.jsonl]
//!                       [--time-budget SECS] [--strict]
//! fdx profile  data.csv
//! fdx score    data.csv --lhs zip,street --rhs city
//! fdx lint     [--ratchet] [--write-baseline] [--format text|json] [--root DIR]
//! ```

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => match commands::run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}
