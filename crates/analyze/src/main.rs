//! `fdx-analyze` binary: scans the workspace, optionally ratchets against
//! `lint-baseline.json`, and prints a text or deterministic JSON report.
//!
//! Exit codes: 0 = clean (or ratchet passed), 1 = violations / ratchet
//! failure, 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use fdx_analyze::{
    explain, find_workspace_root, report, run, sarif, write_baseline, LintOptions, RuleId,
};

const USAGE: &str = "\
fdx-analyze — zero-dependency static analysis for the fdx workspace

USAGE:
    fdx-analyze [OPTIONS]

OPTIONS:
    --root <PATH>        Workspace root (default: auto-detected from cwd)
    --baseline <PATH>    Baseline file (default: <root>/lint-baseline.json)
    --ratchet            Fail only on violations NOT in the baseline
    --write-baseline     Regenerate the baseline from the current tree
    --format <FMT>       Output format: text (default) or json
    --sarif <PATH>       Also write the scan as SARIF 2.1.0 to PATH
    --explain <RULE>     Print rationale and examples for a rule and exit
    --list-rules         Print the rule table and exit
    -h, --help           Show this help
";

struct Args {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    ratchet: bool,
    write_baseline: bool,
    format_json: bool,
    sarif: Option<PathBuf>,
    explain: Option<RuleId>,
    list_rules: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        root: None,
        baseline: None,
        ratchet: false,
        write_baseline: false,
        format_json: false,
        sarif: None,
        explain: None,
        list_rules: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root requires a path")?;
                args.root = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline requires a path")?;
                args.baseline = Some(PathBuf::from(v));
            }
            "--ratchet" => args.ratchet = true,
            "--write-baseline" => args.write_baseline = true,
            "--format" => {
                let v = it.next().ok_or("--format requires `text` or `json`")?;
                match v.as_str() {
                    "text" => args.format_json = false,
                    "json" => args.format_json = true,
                    other => return Err(format!("unknown format `{other}`")),
                }
            }
            "--sarif" => {
                let v = it.next().ok_or("--sarif requires a path")?;
                args.sarif = Some(PathBuf::from(v));
            }
            "--explain" => {
                let v = it.next().ok_or("--explain requires a rule id, e.g. L009")?;
                args.explain = Some(RuleId::parse(v).ok_or_else(|| format!("unknown rule `{v}`"))?);
            }
            "--list-rules" => args.list_rules = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if let Some(rule) = args.explain {
        print!("{}", explain::explain(rule));
        return ExitCode::SUCCESS;
    }

    if args.list_rules {
        print!("{}", report::list_rules());
        return ExitCode::SUCCESS;
    }

    let root = match args.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("error: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    let mut opts = LintOptions::new(&root);
    if let Some(b) = args.baseline {
        opts.baseline_path = b;
    }
    opts.ratchet = args.ratchet;

    if args.write_baseline {
        return match write_baseline(&opts) {
            Ok(b) => {
                eprintln!(
                    "wrote {} ({} entries, {} violations)",
                    opts.baseline_path.display(),
                    b.entries.len(),
                    b.total()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        };
    }

    match run(&opts) {
        Ok(report) => {
            if let Some(path) = &args.sarif {
                let doc = sarif::to_sarif(&report);
                if let Err(e) = sarif::validate(&doc) {
                    eprintln!("error: generated SARIF failed self-validation: {e}");
                    return ExitCode::from(2);
                }
                if let Err(e) = std::fs::write(path, &doc) {
                    eprintln!("error: writing {}: {e}", path.display());
                    return ExitCode::from(2);
                }
                eprintln!("wrote SARIF to {}", path.display());
            }
            if args.format_json {
                print!("{}", report.to_json());
            } else {
                print!("{}", report.to_text());
            }
            if report.failed() {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
