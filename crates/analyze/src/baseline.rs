//! The committed violation baseline and the ratchet comparison.
//!
//! The baseline (`lint-baseline.json`) records pre-existing violations as
//! `(rule, path) → count` buckets. Bucket counts are deliberately
//! line-free: edits that move code around don't spuriously fail CI, while
//! any *growth* in a bucket — or a brand-new bucket — does. Shrinking a
//! bucket produces a "stale baseline" warning prompting a re-baseline, so
//! remediated files can never silently re-acquire debt.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::diag::{Diagnostic, RuleId};
use crate::json::{self, Value};

/// Parsed baseline: `(rule, path) → count`, deterministically ordered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Violation buckets.
    pub entries: BTreeMap<(RuleId, String), u64>,
}

/// One bucket-level difference found by [`Baseline::compare`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    /// Rule of the bucket.
    pub rule: RuleId,
    /// Path of the bucket.
    pub path: String,
    /// Count recorded in the baseline (0 for brand-new buckets).
    pub baseline: u64,
    /// Count observed in the current scan.
    pub current: u64,
}

/// Outcome of a ratchet comparison.
#[derive(Debug, Clone, Default)]
pub struct RatchetOutcome {
    /// Buckets whose count grew (or appeared): these fail the ratchet.
    pub regressions: Vec<Delta>,
    /// Buckets whose count shrank or vanished: baseline is stale (warn).
    pub stale: Vec<Delta>,
}

impl RatchetOutcome {
    /// `true` when the ratchet passes (no new violations anywhere).
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

impl Baseline {
    /// Builds a baseline from the *active* (non-suppressed) diagnostics of a
    /// scan.
    pub fn from_diagnostics(diags: &[Diagnostic]) -> Baseline {
        let mut entries: BTreeMap<(RuleId, String), u64> = BTreeMap::new();
        for d in diags.iter().filter(|d| d.suppressed.is_none()) {
            *entries.entry((d.rule, d.path.clone())).or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Total violation count across all buckets.
    pub fn total(&self) -> u64 {
        self.entries.values().sum()
    }

    /// Loads a baseline file. A missing file is an empty baseline (the
    /// ratchet then treats every violation as new, which is the correct
    /// bootstrap behavior).
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Baseline::default()),
            Err(e) => return Err(format!("{}: {e}", path.display())),
        };
        Baseline::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses the baseline JSON document.
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let version = doc.get("version").and_then(Value::as_u64);
        if version != Some(1) {
            return Err(format!(
                "unsupported baseline version {version:?} (expected 1)"
            ));
        }
        let mut entries = BTreeMap::new();
        for (i, e) in doc
            .get("entries")
            .and_then(Value::as_arr)
            .unwrap_or(&[])
            .iter()
            .enumerate()
        {
            let rule = e
                .get("rule")
                .and_then(Value::as_str)
                .and_then(RuleId::parse)
                .ok_or_else(|| format!("entry {i}: missing or unknown rule"))?;
            let path = e
                .get("path")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("entry {i}: missing path"))?
                .to_string();
            let count = e
                .get("count")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("entry {i}: missing count"))?;
            if count == 0 {
                return Err(format!("entry {i}: zero count is not a valid bucket"));
            }
            if entries.insert((rule, path.clone()), count).is_some() {
                return Err(format!("entry {i}: duplicate bucket {rule} {path}"));
            }
        }
        Ok(Baseline { entries })
    }

    /// Serializes deterministically (sorted by rule then path, one entry per
    /// line, trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [");
        for (i, ((rule, path), count)) in self.entries.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"rule\": ");
            json::write_escaped(&mut out, rule.code());
            out.push_str(", \"path\": ");
            json::write_escaped(&mut out, path);
            let _ = write!(out, ", \"count\": {count}}}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes the serialized baseline to `path`.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        // fdx-allow: L015 the analyzer is dependency-free by design (cannot link fdx-obs), and a torn baseline only fails the next ratchet run, which regenerates it
        fs::write(path, self.to_json()).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Ratchet comparison: `current` is the freshly scanned state.
    pub fn compare(&self, current: &Baseline) -> RatchetOutcome {
        let mut outcome = RatchetOutcome::default();
        let keys: std::collections::BTreeSet<&(RuleId, String)> =
            self.entries.keys().chain(current.entries.keys()).collect();
        for key in keys {
            let base = self.entries.get(key).copied().unwrap_or(0);
            let cur = current.entries.get(key).copied().unwrap_or(0);
            let delta = Delta {
                rule: key.0,
                path: key.1.clone(),
                baseline: base,
                current: cur,
            };
            if cur > base {
                outcome.regressions.push(delta);
            } else if cur < base {
                outcome.stale.push(delta);
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: RuleId, path: &str, line: u32) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.to_string(),
            line,
            col: 1,
            snippet: String::new(),
            severity: rule.severity(),
            suppressed: None,
        }
    }

    #[test]
    fn builds_buckets_excluding_suppressed() {
        let mut d3 = diag(RuleId::L001, "a.rs", 30);
        d3.suppressed = Some("justified".into());
        let b = Baseline::from_diagnostics(&[
            diag(RuleId::L001, "a.rs", 10),
            diag(RuleId::L001, "a.rs", 20),
            diag(RuleId::L003, "b.rs", 5),
            d3,
        ]);
        assert_eq!(b.entries[&(RuleId::L001, "a.rs".into())], 2);
        assert_eq!(b.entries[&(RuleId::L003, "b.rs".into())], 1);
        assert_eq!(b.total(), 3);
    }

    #[test]
    fn json_roundtrip_is_deterministic() {
        let b = Baseline::from_diagnostics(&[
            diag(RuleId::L003, "z.rs", 1),
            diag(RuleId::L001, "a.rs", 1),
            diag(RuleId::L001, "m.rs", 1),
        ]);
        let j1 = b.to_json();
        let parsed = Baseline::from_json(&j1).expect("parse");
        assert_eq!(parsed, b);
        assert_eq!(parsed.to_json(), j1);
        // Rule-major, then path order.
        let a = j1.find("a.rs").expect("a.rs");
        let m = j1.find("m.rs").expect("m.rs");
        let z = j1.find("z.rs").expect("z.rs");
        assert!(a < m && m < z);
    }

    #[test]
    fn ratchet_passes_on_equal_and_fails_on_growth() {
        let base = Baseline::from_diagnostics(&[diag(RuleId::L001, "a.rs", 1)]);
        assert!(base.compare(&base).passed());
        let grown = Baseline::from_diagnostics(&[
            diag(RuleId::L001, "a.rs", 1),
            diag(RuleId::L001, "a.rs", 2),
        ]);
        let out = base.compare(&grown);
        assert!(!out.passed());
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(out.regressions[0].baseline, 1);
        assert_eq!(out.regressions[0].current, 2);
    }

    #[test]
    fn ratchet_flags_new_bucket_and_stale_entry() {
        let base = Baseline::from_diagnostics(&[diag(RuleId::L001, "gone.rs", 1)]);
        let current = Baseline::from_diagnostics(&[diag(RuleId::L002, "new.rs", 1)]);
        let out = base.compare(&current);
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(out.regressions[0].path, "new.rs");
        assert_eq!(out.regressions[0].baseline, 0);
        assert_eq!(out.stale.len(), 1);
        assert_eq!(out.stale[0].path, "gone.rs");
        assert_eq!(out.stale[0].current, 0);
    }

    #[test]
    fn line_moves_do_not_trip_the_ratchet() {
        let base = Baseline::from_diagnostics(&[
            diag(RuleId::L001, "a.rs", 10),
            diag(RuleId::L001, "a.rs", 20),
        ]);
        let moved = Baseline::from_diagnostics(&[
            diag(RuleId::L001, "a.rs", 110),
            diag(RuleId::L001, "a.rs", 220),
        ]);
        assert!(base.compare(&moved).passed());
    }

    #[test]
    fn missing_file_loads_empty() {
        let b = Baseline::load(Path::new("/nonexistent/lint-baseline.json")).expect("load");
        assert!(b.entries.is_empty());
    }

    #[test]
    fn rejects_malformed_baselines() {
        assert!(Baseline::from_json("{}").is_err()); // no version
        assert!(Baseline::from_json("{\"version\": 2, \"entries\": []}").is_err());
        assert!(Baseline::from_json(
            "{\"version\": 1, \"entries\": [{\"rule\": \"FDX-L999\", \"path\": \"x\", \"count\": 1}]}"
        )
        .is_err());
        assert!(Baseline::from_json(
            "{\"version\": 1, \"entries\": [{\"rule\": \"FDX-L001\", \"path\": \"x\", \"count\": 0}]}"
        )
        .is_err());
        // Duplicate bucket.
        assert!(Baseline::from_json(
            "{\"version\": 1, \"entries\": [\
             {\"rule\": \"FDX-L001\", \"path\": \"x\", \"count\": 1},\
             {\"rule\": \"FDX-L001\", \"path\": \"x\", \"count\": 2}]}"
        )
        .is_err());
    }
}
