//! Minimal JSON support: a string escaper/writer for the deterministic
//! reports, and a recursive-descent parser for reading `lint-baseline.json`.
//! Handwritten because this crate is zero-dependency by design.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Objects use `BTreeMap` so iteration (and therefore
/// re-serialization) is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as f64; baseline counts are small integers).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as u64, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // fdx-allow: L002 fract()==0.0 is the exact integrality test
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Escapes `s` into a double-quoted JSON string literal appended to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with a byte offset for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            message: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("malformed \\u escape"))?;
                            // Surrogate pairs are not needed for our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte aware).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unexpected end"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_baseline_shape() {
        let doc = r#"{
  "version": 1,
  "entries": [
    {"rule": "FDX-L001", "path": "crates/core/src/transform.rs", "count": 2},
    {"rule": "FDX-L003", "path": "crates/core/src/discover.rs", "count": 7}
  ]
}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("version").and_then(Value::as_u64), Some(1));
        let entries = v.get("entries").and_then(Value::as_arr).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(
            entries[0].get("rule").and_then(Value::as_str),
            Some("FDX-L001")
        );
        assert_eq!(entries[1].get("count").and_then(Value::as_u64), Some(7));
    }

    #[test]
    fn escape_roundtrip() {
        let nasty = "quote \" backslash \\ newline \n tab \t control \u{0001} unicode é";
        let mut buf = String::new();
        write_escaped(&mut buf, nasty);
        let back = parse(&buf).unwrap();
        assert_eq!(back.as_str(), Some(nasty));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("123 trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("-3.5").unwrap(), Value::Num(-3.5));
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        // as_u64 rejects negatives and fractions.
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
    }
}
