//! `fdx-analyze` — zero-dependency static analysis for the fdx workspace.
//!
//! A handwritten Rust lexer feeds two layers of rules that police the
//! numerical invariants this codebase lives or dies by: token-pattern
//! rules (L001–L008) and semantic rules over a lightweight item/expression
//! tree built by [`parse`] and queried by [`sema`] (L009–L013), plus the
//! suppression-hygiene audit (L014):
//!
//! | rule | checks |
//! |------|--------|
//! | FDX-L001 | `.unwrap()` / `.expect()` in library code |
//! | FDX-L002 | raw float `==` / `!=` comparisons |
//! | FDX-L003 | `Instant::now()` outside `crates/obs` |
//! | FDX-L004 | `panic!` / `todo!` / `unimplemented!` in library code |
//! | FDX-L005 | lossy `as` casts inside linalg / glasso / stats kernels |
//! | FDX-L006 | `unsafe` without a `// SAFETY:` comment |
//! | FDX-L007 | `catch_unwind` outside `crates/serve` / `crates/par` |
//! | FDX-L008 | `fdx.*` metric names missing from the canonical registry |
//! | FDX-L009 | `HashMap`/`HashSet` iteration reaching results unsorted |
//! | FDX-L010 | `Relaxed` read-modify-writes outside obs; any `SeqCst` |
//! | FDX-L011 | thread creation outside `crates/par` / `crates/serve` |
//! | FDX-L012 | float reductions over hash-ordered sources in kernels |
//! | FDX-L013 | `SystemTime::now()` / env reads in result paths |
//! | FDX-L014 | `fdx-allow` suppressions without a reason |
//!
//! Pre-existing debt lives in a committed `lint-baseline.json`; `--ratchet`
//! fails only on *new* violations, so the count can shrink but never grow.
//! Intentional violations are annotated `// fdx-allow: <rule> <reason>` and
//! reported in a suppression audit section rather than vanishing silently.
//! Findings export as SARIF 2.1.0 ([`sarif`]) for CI code-scanning
//! annotations, and every rule documents itself via [`explain`].
//!
//! The crate is deliberately dependency-free (no `syn`, no `serde`): it
//! lexes with [`lexer`], parses its baseline with the tiny [`json`] module,
//! and renders deterministic output from [`report`].

pub mod baseline;
pub mod diag;
pub mod explain;
pub mod json;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod sema;
pub mod walk;

use std::fs;
use std::path::{Path, PathBuf};

pub use baseline::{Baseline, RatchetOutcome};
pub use diag::{Diagnostic, RuleId, Severity};
pub use report::{RatchetResult, ScanReport};
pub use rules::{check_file, check_file_with, check_parsed, FileContext, MetricNames, SourceFile};
pub use walk::find_workspace_root;

/// Configuration for one lint run.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Workspace root to scan.
    pub root: PathBuf,
    /// Baseline file location (default: `<root>/lint-baseline.json`).
    pub baseline_path: PathBuf,
    /// Ratchet mode: compare against the baseline instead of failing on
    /// every active violation.
    pub ratchet: bool,
}

impl LintOptions {
    /// Options rooted at `root` with the conventional baseline path.
    pub fn new(root: &Path) -> LintOptions {
        LintOptions {
            root: root.to_path_buf(),
            baseline_path: root.join("lint-baseline.json"),
            ratchet: false,
        }
    }
}

/// Scans every `.rs` file under `root` and returns the sorted diagnostics.
/// No baseline handling — see [`run`] for the full pipeline.
pub fn scan_workspace(root: &Path) -> Result<ScanReport, String> {
    let files =
        walk::discover_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    // FDX-L008 checks call sites against the canonical metric-name registry;
    // when the workspace has no registry file the rule simply does not run.
    let metric_names = fs::read_to_string(root.join("crates/obs/src/metrics.rs"))
        .ok()
        .map(|src| MetricNames::parse(&src));
    // Pass 1: lex and parse every file once, accumulating the workspace-wide
    // set of hash-returning fn names so FDX-L009/L012 classify bindings like
    // `let joint = joint_counts(…)` even when the helper lives elsewhere.
    let mut sources = Vec::with_capacity(files.len());
    for f in &files {
        let source =
            fs::read_to_string(&f.abs).map_err(|e| format!("reading {}: {e}", f.abs.display()))?;
        sources.push(source);
    }
    let mut parsed_files = Vec::with_capacity(files.len());
    let mut hash_fns = sema::HashFns::default();
    for source in &sources {
        let lexed = lexer::lex(source);
        let parsed = parse::parse(&lexed.tokens);
        hash_fns.collect_file(&lexed.tokens, &parsed);
        parsed_files.push((lexed, parsed));
    }
    hash_fns.finish();
    // Pass 2: run the full rule pipeline over the pre-parsed inputs.
    let mut diagnostics = Vec::new();
    for (i, f) in files.iter().enumerate() {
        let (lexed, parsed) = &parsed_files[i];
        diagnostics.extend(check_parsed(
            &SourceFile {
                rel_path: &f.rel,
                source: &sources[i],
                context: f.context,
            },
            lexed,
            parsed,
            metric_names.as_ref(),
            &hash_fns,
        ));
    }
    diagnostics.sort_by_key(Diagnostic::sort_key);
    Ok(ScanReport {
        files_scanned: files.len(),
        diagnostics,
        ratchet: None,
    })
}

/// Full lint pipeline: scan, then (in ratchet mode) compare against the
/// committed baseline. Errors are I/O or baseline-parse failures — rule
/// violations are reported inside the returned [`ScanReport`], not as `Err`.
pub fn run(opts: &LintOptions) -> Result<ScanReport, String> {
    let mut report = scan_workspace(&opts.root)?;
    if opts.ratchet {
        let committed = Baseline::load(&opts.baseline_path)?;
        let active: Vec<Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| d.suppressed.is_none())
            .cloned()
            .collect();
        let current = Baseline::from_diagnostics(&active);
        let outcome = committed.compare(&current);
        report.ratchet = Some(RatchetResult {
            baseline_total: committed.total(),
            current_total: current.total(),
            outcome,
        });
    }
    Ok(report)
}

/// Regenerates the baseline from the current tree and writes it to
/// `opts.baseline_path`. Returns the refreshed baseline.
pub fn write_baseline(opts: &LintOptions) -> Result<Baseline, String> {
    let report = scan_workspace(&opts.root)?;
    let active: Vec<Diagnostic> = report
        .diagnostics
        .into_iter()
        .filter(|d| d.suppressed.is_none())
        .collect();
    let baseline = Baseline::from_diagnostics(&active);
    baseline.save(&opts.baseline_path)?;
    Ok(baseline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::tests::scratch_workspace;

    const LIB_MANIFEST: &str = "[package]\nname = \"x\"\n\n[lib]\nname = \"x\"\n";

    fn lint_workspace(files: &[(&str, &str)]) -> (PathBuf, LintOptions) {
        let root = scratch_workspace(files);
        let opts = LintOptions::new(&root);
        (root, opts)
    }

    #[test]
    fn end_to_end_scan_finds_library_unwrap_but_not_test_unwrap() {
        let (root, opts) = lint_workspace(&[
            ("Cargo.toml", "[workspace]\n"),
            ("crates/x/Cargo.toml", LIB_MANIFEST),
            (
                "crates/x/src/lib.rs",
                "pub fn f(o: Option<u8>) -> u8 { o.unwrap() }\n",
            ),
            (
                "crates/x/tests/it.rs",
                "#[test]\nfn t() { Some(1u8).unwrap(); }\n",
            ),
        ]);
        let report = run(&opts).expect("run");
        let hits: Vec<&Diagnostic> = report.diagnostics.iter().collect();
        assert_eq!(hits.len(), 1, "only the library unwrap: {hits:?}");
        assert_eq!(hits[0].rule, RuleId::L001);
        assert_eq!(hits[0].path, "crates/x/src/lib.rs");
        assert!(report.failed());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn ratchet_bootstrap_write_then_pass_then_fail_on_new() {
        let (root, mut opts) = lint_workspace(&[
            ("Cargo.toml", "[workspace]\n"),
            ("crates/x/Cargo.toml", LIB_MANIFEST),
            (
                "crates/x/src/lib.rs",
                "pub fn f(o: Option<u8>) -> u8 { o.unwrap() }\n",
            ),
        ]);
        opts.ratchet = true;

        // Bootstrap: baseline the existing debt.
        let b = write_baseline(&opts).expect("write baseline");
        assert_eq!(b.total(), 1);

        // Unchanged tree ratchets clean.
        let report = run(&opts).expect("run");
        assert!(!report.failed(), "{}", report.to_text());

        // A fresh library unwrap in a new file fails the ratchet.
        std::fs::write(
            root.join("crates/x/src/extra.rs"),
            "pub fn g(o: Option<u8>) -> u8 { o.unwrap() }\n",
        )
        .expect("write");
        let report = run(&opts).expect("run");
        assert!(report.failed());
        let r = report.ratchet.as_ref().expect("ratchet result");
        assert_eq!(r.outcome.regressions.len(), 1);
        assert_eq!(r.outcome.regressions[0].path, "crates/x/src/extra.rs");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn ratchet_reports_stale_entries_after_remediation() {
        let (root, mut opts) = lint_workspace(&[
            ("Cargo.toml", "[workspace]\n"),
            ("crates/x/Cargo.toml", LIB_MANIFEST),
            (
                "crates/x/src/lib.rs",
                "pub fn f(o: Option<u8>) -> u8 { o.unwrap() }\n",
            ),
        ]);
        opts.ratchet = true;
        write_baseline(&opts).expect("write baseline");

        // Remediate the unwrap; the baseline entry is now stale but the
        // ratchet still passes.
        std::fs::write(
            root.join("crates/x/src/lib.rs"),
            "pub fn f(o: Option<u8>) -> u8 { o.unwrap_or(0) }\n",
        )
        .expect("write");
        let report = run(&opts).expect("run");
        assert!(!report.failed());
        let r = report.ratchet.as_ref().expect("ratchet result");
        assert_eq!(r.outcome.stale.len(), 1);
        assert!(report.to_text().contains("stale baseline entry"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn suppressed_violations_do_not_enter_the_baseline() {
        let (root, opts) = lint_workspace(&[
            ("Cargo.toml", "[workspace]\n"),
            ("crates/x/Cargo.toml", LIB_MANIFEST),
            (
                "crates/x/src/lib.rs",
                "pub fn f(o: Option<u8>) -> u8 {\n    \
                 // fdx-allow: L001 checked by caller\n    o.unwrap()\n}\n",
            ),
        ]);
        let b = write_baseline(&opts).expect("write baseline");
        assert_eq!(b.total(), 0);
        let report = run(&opts).expect("run");
        assert_eq!(report.suppressed().count(), 1);
        assert!(!report.failed());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn scan_loads_metric_registry_and_flags_unregistered_names() {
        let (root, opts) = lint_workspace(&[
            ("Cargo.toml", "[workspace]\n"),
            ("crates/obs/Cargo.toml", LIB_MANIFEST),
            (
                "crates/obs/src/metrics.rs",
                "pub const METRIC_NAMES: &[&str] = &[\"fdx.discover\"];\n",
            ),
            ("crates/x/Cargo.toml", LIB_MANIFEST),
            (
                "crates/x/src/lib.rs",
                "pub fn f() { counter_add(\"fdx.discover\", 1); counter_add(\"fdx.typo\", 1); }\n",
            ),
        ]);
        let report = run(&opts).expect("run");
        let hits: Vec<&Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == RuleId::L008)
            .collect();
        assert_eq!(hits.len(), 1, "{:?}", report.diagnostics);
        assert_eq!(hits[0].path, "crates/x/src/lib.rs");
        assert!(hits[0].snippet.contains("fdx.typo"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn scan_without_registry_skips_l008() {
        let (root, opts) = lint_workspace(&[
            ("Cargo.toml", "[workspace]\n"),
            ("crates/x/Cargo.toml", LIB_MANIFEST),
            (
                "crates/x/src/lib.rs",
                "pub fn f() { counter_add(\"fdx.typo\", 1); }\n",
            ),
        ]);
        let report = run(&opts).expect("run");
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn cross_file_hash_returning_fn_classifies_caller() {
        // `joint_counts` returns a HashMap in one file; the float
        // accumulation over its result lives in another. Only the
        // workspace-wide pre-pass can connect the two — and inside a
        // kernel crate the finding is the sharper FDX-L012.
        let (root, opts) = lint_workspace(&[
            ("Cargo.toml", "[workspace]\n"),
            ("crates/stats/Cargo.toml", LIB_MANIFEST),
            (
                "crates/stats/src/groups.rs",
                "use std::collections::HashMap;\n\
                 pub fn joint_counts(xs: &[u32]) -> HashMap<(u32, u32), usize> {\n    \
                 let mut m = HashMap::new();\n    \
                 for &x in xs { *m.entry((x, x)).or_insert(0) += 1; }\n    \
                 m\n}\n",
            ),
            (
                "crates/stats/src/entropy.rs",
                "use crate::groups::joint_counts;\n\
                 pub fn mi(xs: &[u32]) -> f64 {\n    \
                 let joint = joint_counts(xs);\n    \
                 let mut acc = 0.0;\n    \
                 for (_, &c) in &joint { acc += c as f64; }\n    \
                 acc\n}\n",
            ),
        ]);
        let report = run(&opts).expect("run");
        let hits: Vec<(&str, RuleId, u32)> = report
            .diagnostics
            .iter()
            .map(|d| (d.path.as_str(), d.rule, d.line))
            .collect();
        assert_eq!(
            hits,
            vec![("crates/stats/src/entropy.rs", RuleId::L012, 5)],
            "{:?}",
            report.diagnostics
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Self-test against the real repository: the committed tree must
    /// ratchet clean. Skipped when no workspace root with a committed
    /// baseline is reachable (e.g. the crate is built out of tree).
    #[test]
    fn committed_tree_ratchets_clean() {
        let Some(root) = std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
        else {
            return;
        };
        let mut opts = LintOptions::new(&root);
        if !opts.baseline_path.exists() {
            return;
        }
        opts.ratchet = true;
        let report = run(&opts).expect("run");
        assert!(!report.failed(), "{}", report.to_text());
    }
}
