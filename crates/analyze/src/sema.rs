//! Semantic queries over the [`crate::parse`] item tree: which local names
//! denote hash-ordered containers, which bindings hold them, and where
//! their iteration order can reach a result-producing path.
//!
//! The analysis is deliberately shallow — one file, no cross-crate type
//! inference — but *sound for the patterns this workspace uses*: std
//! containers are named `HashMap`/`HashSet` (directly, path-qualified, or
//! through a `use … as` alias resolved by the parser), bindings are plain
//! `let` identifiers or typed fn params, and iteration is either a `for`
//! loop or a postfix method chain. Anything the pass cannot see (a hash
//! map returned by a helper fn, say) is out of scope rather than guessed
//! at; the rule stays precise instead of noisy.

use crate::lexer::{Token, TokenKind};
use crate::parse::{match_forward, FnItem, ParsedFile};

/// Methods that begin an iteration over a container's elements.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_keys",
    "into_values",
];

/// Chain terminals whose value is independent of iteration order.
/// `sum`/`product` are handled separately (integer turbofish only).
const ORDER_INSENSITIVE: &[&str] = &[
    "count", "len", "any", "all", "contains", "is_empty", "max", "min",
];

/// Collect destinations that re-establish a deterministic order (sorted
/// trees) or keep set semantics (hash containers feeding further lookups).
const ORDERED_COLLECT_TARGETS: &[&str] = &["BTreeMap", "BTreeSet", "HashMap", "HashSet"];

/// Sort-method prefixes accepted as ordering evidence on a collected Vec.
fn is_sort_method(name: &str) -> bool {
    name.starts_with("sort")
}

/// How an iteration event can leak nondeterminism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Hash-ordered elements reach an order-sensitive consumer.
    HashIter,
    /// A float accumulation folds over hash-ordered elements — the
    /// rounding itself becomes order-dependent.
    FloatReduction,
}

/// One hash-iteration event, positioned for diagnostics.
#[derive(Debug, Clone)]
pub struct IterEvent {
    /// Token index (for `#[cfg(test)]` masking).
    pub token_idx: usize,
    /// 1-based line of the event.
    pub line: u32,
    /// 1-based column of the event.
    pub col: u32,
    /// Event classification.
    pub kind: EventKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Hash,
    FloatAcc,
    Other,
}

/// Function names — workspace-wide — whose return type mentions a hash
/// container. Collected in a pre-pass over every file (like the metric
/// registry for FDX-L008) so that `let joint = joint_counts(&gx, &gy);`
/// classifies as hash-ordered even though `joint_counts` is defined in a
/// different file.
#[derive(Debug, Clone, Default)]
pub struct HashFns {
    names: Vec<String>,
}

impl HashFns {
    /// Collects hash-returning fn names from one parsed file.
    pub fn collect_file(&mut self, tokens: &[Token], parsed: &ParsedFile) {
        let hash_names = hash_type_names(parsed);
        for f in &parsed.fns {
            if mentions_any(tokens, f.ret, &hash_names) {
                self.names.push(f.name.clone());
            }
        }
    }

    /// Sorts and deduplicates after the last `collect_file` call.
    pub fn finish(&mut self) {
        self.names.sort();
        self.names.dedup();
    }

    /// Whether `name` is a known hash-returning fn.
    pub fn contains(&self, name: &str) -> bool {
        self.names
            .binary_search_by(|n| n.as_str().cmp(name))
            .is_ok()
    }

    /// True when no hash-returning fns are known.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[derive(Debug)]
struct Binding {
    name: String,
    class: Class,
    /// Token range of the `let` initializer, when this came from a `let`.
    init: Option<(usize, usize)>,
}

/// The local names that denote std hash containers in this file: the
/// canonical names themselves (covers path-qualified uses) plus any `use
/// … as` aliases whose target is one.
fn hash_type_names(parsed: &ParsedFile) -> Vec<String> {
    let mut names = vec!["HashMap".to_string(), "HashSet".to_string()];
    for u in &parsed.uses {
        let tail = u.path.rsplit("::").next().unwrap_or(&u.path);
        if (tail == "HashMap" || tail == "HashSet") && !names.iter().any(|n| *n == u.name) {
            names.push(u.name.clone());
        }
    }
    names
}

fn mentions_any(tokens: &[Token], range: (usize, usize), names: &[String]) -> bool {
    tokens[range.0..range.1.min(tokens.len())]
        .iter()
        .any(|t| t.kind == TokenKind::Ident && names.iter().any(|n| t.text == *n))
}

/// Extracts `name: Type` param bindings whose type mentions a hash
/// container. `::` is its own token, so every single `:` inside the param
/// range separates a name from its type.
fn scan_params(tokens: &[Token], f: &FnItem, hash_names: &[String], out: &mut Vec<Binding>) {
    let (start, end) = f.params;
    let mut owner: Option<String> = None;
    for i in start..end.min(tokens.len()) {
        let t = &tokens[i];
        if t.is_punct(":") {
            if i > start && tokens[i - 1].kind == TokenKind::Ident {
                owner = Some(tokens[i - 1].text.clone());
            }
        } else if t.kind == TokenKind::Ident && hash_names.iter().any(|n| t.text == *n) {
            if let Some(name) = owner.take() {
                out.push(Binding {
                    name,
                    class: Class::Hash,
                    init: None,
                });
            }
        }
    }
}

/// Extracts classified `let` bindings from a fn body: hash containers (by
/// type annotation, initializer, or a call to a known hash-returning fn),
/// float accumulators (`let mut x = 0.0`), and plain bindings (kept so a
/// `collect()` event can be associated with its binding for sort-evidence).
fn scan_lets(
    tokens: &[Token],
    f: &FnItem,
    hash_names: &[String],
    hash_fns: &HashFns,
    out: &mut Vec<Binding>,
) {
    let (start, end) = f.body;
    let mut i = start;
    while i < end.min(tokens.len()) {
        if !tokens[i].is_ident("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name_tok) = tokens.get(j).filter(|t| t.kind == TokenKind::Ident) else {
            i += 1;
            continue; // destructuring pattern — out of scope
        };
        let name = name_tok.text.clone();
        // Find `=` and the terminating `;` at delimiter depth 0.
        let mut k = j + 1;
        let mut depth = 0usize;
        let mut eq_at = None;
        while k < end.min(tokens.len()) {
            let t = &tokens[k];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_punct("=") && eq_at.is_none() {
                eq_at = Some(k);
            } else if depth == 0 && t.is_punct(";") {
                break;
            }
            k += 1;
        }
        let semi = k;
        let ty_range = (j + 1, eq_at.unwrap_or(semi));
        let init_range = (eq_at.map_or(semi, |e| e + 1), semi);
        let class = if mentions_any(tokens, ty_range, hash_names)
            || mentions_any(tokens, init_range, hash_names)
            || calls_hash_fn(tokens, init_range, hash_fns)
        {
            Class::Hash
        } else if init_range.1 == init_range.0 + 1
            && tokens
                .get(init_range.0)
                .is_some_and(|t| t.kind == TokenKind::Float)
        {
            Class::FloatAcc
        } else {
            Class::Other
        };
        out.push(Binding {
            name,
            class,
            init: Some(init_range),
        });
        // Resume just after the `=`, not after the `;`: a block initializer
        // (`let mi = { let joint = …; … };`) contains further `let`s that
        // would otherwise be skipped — the shape entropy-style accumulators
        // actually take.
        i = eq_at.map_or(semi, |e| e) + 1;
    }
}

/// Whether the initializer calls a known hash-returning fn (`joint_counts(
/// …)` or `groups::joint_counts(…)`).
fn calls_hash_fn(tokens: &[Token], range: (usize, usize), hash_fns: &HashFns) -> bool {
    if hash_fns.is_empty() {
        return false;
    }
    for i in range.0..range.1.min(tokens.len()).saturating_sub(1) {
        if tokens[i].kind == TokenKind::Ident
            && tokens[i + 1].is_punct("(")
            && hash_fns.contains(&tokens[i].text)
        {
            return true;
        }
    }
    false
}

fn is_hash_binding(bindings: &[Binding], name: &str) -> bool {
    bindings
        .iter()
        .any(|b| b.class == Class::Hash && b.name == name)
}

fn is_float_acc(bindings: &[Binding], name: &str) -> bool {
    bindings
        .iter()
        .any(|b| b.class == Class::FloatAcc && b.name == name)
}

/// Whether `range` contains `acc += …` for any float-accumulator binding —
/// the refinement that upgrades a hash iteration to a float reduction.
fn has_float_accumulation(tokens: &[Token], range: (usize, usize), bindings: &[Binding]) -> bool {
    for i in range.0..range.1.min(tokens.len()).saturating_sub(1) {
        if tokens[i + 1].is_punct("+=")
            && tokens[i].kind == TokenKind::Ident
            && is_float_acc(bindings, &tokens[i].text)
        {
            return true;
        }
    }
    false
}

/// Turbofish parse starting at a `::` token: returns the idents inside
/// `::<…>` and the index just past the closing `>`, or `None`.
fn parse_turbofish(tokens: &[Token], at: usize) -> Option<(Vec<String>, usize)> {
    if !tokens.get(at)?.is_punct("::") || !tokens.get(at + 1)?.is_punct("<") {
        return None;
    }
    let mut depth = 0i32;
    let mut idents = Vec::new();
    let mut i = at + 1;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.text.as_str() {
            "<" | "<<" if t.kind == TokenKind::Punct => {
                depth += if t.text == "<<" { 2 } else { 1 };
            }
            ">" | ">>" if t.kind == TokenKind::Punct => {
                depth -= if t.text == ">>" { 2 } else { 1 };
                if depth <= 0 {
                    return Some((idents, i + 1));
                }
            }
            _ => {
                if t.kind == TokenKind::Ident {
                    idents.push(t.text.clone());
                }
            }
        }
        i += 1;
    }
    None
}

/// A postfix method chain: `(method, turbofish)` pairs plus the index
/// just past the chain.
fn walk_chain(tokens: &[Token], mut i: usize) -> (Vec<(String, Vec<String>)>, usize) {
    let mut links = Vec::new();
    loop {
        if !tokens.get(i).is_some_and(|t| t.is_punct(".")) {
            return (links, i);
        }
        let Some(m) = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
            return (links, i);
        };
        let mut j = i + 2;
        let turbofish = match parse_turbofish(tokens, j) {
            Some((idents, next)) => {
                j = next;
                idents
            }
            None => Vec::new(),
        };
        if tokens.get(j).is_some_and(|t| t.is_punct("(")) {
            let close = match_forward(tokens, j);
            links.push((m.text.clone(), turbofish));
            i = close + 1;
        } else {
            // Field access, not a call — stop the chain.
            return (links, i);
        }
    }
}

/// Whether a chain terminal is order-insensitive, given its turbofish.
fn terminal_is_order_insensitive(method: &str, turbofish: &[String]) -> bool {
    if ORDER_INSENSITIVE.contains(&method) {
        return true;
    }
    if method == "sum" || method == "product" {
        // Integer reduction commutes exactly; float reduction does not.
        // Without a turbofish the element type is unknown — stay strict.
        const INT_TYPES: &[&str] = &[
            "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
        ];
        return turbofish.iter().any(|t| INT_TYPES.contains(&t.as_str()))
            && !turbofish.iter().any(|t| t == "f32" || t == "f64");
    }
    false
}

fn terminal_is_float_reduction(method: &str, turbofish: &[String], tokens_after: &[Token]) -> bool {
    if (method == "sum" || method == "product")
        && turbofish.iter().any(|t| t == "f32" || t == "f64")
    {
        return true;
    }
    if method == "fold" || method == "reduce" {
        // `fold(0.0, …)` — float seed makes the accumulation float-typed.
        return tokens_after
            .first()
            .is_some_and(|t| t.kind == TokenKind::Float);
    }
    false
}

/// Searches `tokens[from..to]` for `binding.sort*()` — the evidence that a
/// hash-sourced `collect::<Vec<_>>` was deterministically re-ordered.
fn sorted_later(tokens: &[Token], from: usize, to: usize, binding: &str) -> bool {
    for i in from..to.min(tokens.len()).saturating_sub(2) {
        if tokens[i].is_ident(binding)
            && tokens[i + 1].is_punct(".")
            && tokens[i + 2].kind == TokenKind::Ident
            && is_sort_method(&tokens[i + 2].text)
        {
            return true;
        }
    }
    false
}

/// Analyzes one file and returns every hash-iteration event that can leak
/// iteration order into a result. `hash_fns` carries workspace-level
/// knowledge of hash-returning fns (pass a default for single-file use).
pub fn hash_iter_events(
    tokens: &[Token],
    parsed: &ParsedFile,
    hash_fns: &HashFns,
) -> Vec<IterEvent> {
    let hash_names = hash_type_names(parsed);
    let mut events = Vec::new();
    for f in &parsed.fns {
        if f.body.0 >= f.body.1 {
            continue;
        }
        let mut bindings = Vec::new();
        scan_params(tokens, f, &hash_names, &mut bindings);
        scan_lets(tokens, f, &hash_names, hash_fns, &mut bindings);
        if !bindings.iter().any(|b| b.class == Class::Hash) {
            continue;
        }
        let mut for_expr_ranges: Vec<(usize, usize)> = Vec::new();
        scan_for_loops(tokens, f, &bindings, &mut for_expr_ranges, &mut events);
        scan_chains(tokens, f, &bindings, &for_expr_ranges, &mut events);
    }
    events.sort_by_key(|e| e.token_idx);
    events
}

/// Finds `for <pat> in <hash-source> { … }` loops.
fn scan_for_loops(
    tokens: &[Token],
    f: &FnItem,
    bindings: &[Binding],
    for_expr_ranges: &mut Vec<(usize, usize)>,
    events: &mut Vec<IterEvent>,
) {
    let (start, end) = f.body;
    let mut i = start;
    while i < end.min(tokens.len()) {
        if !tokens[i].is_ident("for") {
            i += 1;
            continue;
        }
        // Locate `in` at delimiter depth 0 (the pattern may contain parens).
        let mut j = i + 1;
        let mut depth = 0usize;
        let in_at = loop {
            match tokens.get(j) {
                None => break None,
                Some(t) if t.is_punct("(") || t.is_punct("[") => depth += 1,
                Some(t) if t.is_punct(")") || t.is_punct("]") => depth = depth.saturating_sub(1),
                Some(t) if depth == 0 && t.is_ident("in") => break Some(j),
                Some(t) if depth == 0 && (t.is_punct("{") || t.is_punct(";")) => break None,
                Some(_) => {}
            }
            j += 1;
        };
        let Some(in_at) = in_at else {
            i += 1;
            continue;
        };
        // Iteration expression: tokens until the body `{` at depth 0.
        let mut k = in_at + 1;
        let mut depth = 0usize;
        let body_open = loop {
            match tokens.get(k) {
                None => break None,
                Some(t) if t.is_punct("(") || t.is_punct("[") => depth += 1,
                Some(t) if t.is_punct(")") || t.is_punct("]") => depth = depth.saturating_sub(1),
                Some(t) if depth == 0 && t.is_punct("{") => break Some(k),
                Some(_) => {}
            }
            k += 1;
        };
        let Some(body_open) = body_open else {
            i = in_at + 1;
            continue;
        };
        let expr = (in_at + 1, body_open);
        if let Some(src_idx) = hash_source(tokens, expr, bindings) {
            for_expr_ranges.push(expr);
            let body_close = match_forward(tokens, body_open);
            let loop_body = (body_open + 1, body_close.min(tokens.len()));
            let kind = if has_float_accumulation(tokens, loop_body, bindings) {
                EventKind::FloatReduction
            } else {
                EventKind::HashIter
            };
            let t = &tokens[src_idx];
            events.push(IterEvent {
                token_idx: src_idx,
                line: t.line,
                col: t.col,
                kind,
            });
        }
        i = body_open + 1;
    }
}

/// If the expression iterates a hash binding (`map`, `&map`, `map.iter()`,
/// `map.keys().…`), returns the token index of the binding.
fn hash_source(tokens: &[Token], expr: (usize, usize), bindings: &[Binding]) -> Option<usize> {
    let mut s = expr.0;
    while tokens
        .get(s)
        .is_some_and(|t| t.is_punct("&") || t.is_ident("mut"))
    {
        s += 1;
    }
    let first = tokens.get(s).filter(|t| t.kind == TokenKind::Ident)?;
    if !is_hash_binding(bindings, &first.text) {
        return None;
    }
    if s + 1 >= expr.1 {
        return Some(s); // bare `map` / `&map`
    }
    if tokens.get(s + 1).is_some_and(|t| t.is_punct(".")) {
        let m = tokens.get(s + 2)?;
        if ITER_METHODS.iter().any(|im| m.is_ident(im)) {
            return Some(s);
        }
        return None; // `.get()`, `.len()`, … — not an iteration
    }
    None
}

/// Finds `map.iter()…`-style chains outside for-loop headers and flags the
/// ones whose terminal is order-sensitive.
fn scan_chains(
    tokens: &[Token],
    f: &FnItem,
    bindings: &[Binding],
    for_expr_ranges: &[(usize, usize)],
    events: &mut Vec<IterEvent>,
) {
    let (start, end) = f.body;
    let mut i = start;
    while i + 2 < end.min(tokens.len()) {
        let t = &tokens[i];
        let starts_chain = t.kind == TokenKind::Ident
            && is_hash_binding(bindings, &t.text)
            && tokens[i + 1].is_punct(".")
            && ITER_METHODS.iter().any(|im| tokens[i + 2].is_ident(im))
            && tokens.get(i + 3).is_some_and(|x| x.is_punct("("));
        if !starts_chain {
            i += 1;
            continue;
        }
        if for_expr_ranges.iter().any(|&(a, b)| i >= a && i < b) {
            i += 1;
            continue; // already reported as the for-loop's source
        }
        let open = i + 3;
        let after_call = match_forward(tokens, open) + 1;
        let (links, chain_end) = walk_chain(tokens, after_call);
        let mut all = vec![(tokens[i + 2].text.clone(), Vec::new())];
        all.extend(links);
        if let Some(kind) = classify_chain(tokens, f, bindings, i, chain_end, &all) {
            events.push(IterEvent {
                token_idx: i,
                line: t.line,
                col: t.col,
                kind,
            });
        }
        i = chain_end.max(i + 1);
    }
}

/// Decides whether a chain leaks iteration order. `None` = compliant.
fn classify_chain(
    tokens: &[Token],
    f: &FnItem,
    bindings: &[Binding],
    chain_start: usize,
    chain_end: usize,
    links: &[(String, Vec<String>)],
) -> Option<EventKind> {
    let (terminal, turbofish) = links.last()?;
    if terminal_is_order_insensitive(terminal, turbofish) {
        return None;
    }
    // Peek at the fold seed (first token inside the terminal's arg list).
    let fold_seed = fold_seed_tokens(tokens, chain_start, chain_end, terminal);
    if terminal_is_float_reduction(terminal, turbofish, fold_seed) {
        return Some(EventKind::FloatReduction);
    }
    if terminal == "collect" {
        // Destination from the turbofish (`collect::<BTreeMap<…>>`) or the
        // enclosing let's classification (`let m: HashMap<…> = …collect()`).
        if turbofish
            .iter()
            .any(|d| ORDERED_COLLECT_TARGETS.contains(&d.as_str()))
        {
            return None;
        }
        let owner = bindings.iter().find(|b| {
            b.init
                .is_some_and(|(a, b)| chain_start >= a && chain_start < b)
        });
        if let Some(b) = owner {
            if b.class == Class::Hash {
                return None; // collected back into a hash/tree container
            }
            let after = b.init.map_or(chain_end, |(_, e)| e);
            if sorted_later(tokens, after, f.body.1, &b.name) {
                return None; // collect-then-sort: deterministic
            }
        }
        return Some(EventKind::HashIter);
    }
    Some(EventKind::HashIter)
}

/// The first token of the terminal call's argument list (the fold seed),
/// found by locating the terminal's `(` scanning back from the chain end.
fn fold_seed_tokens<'t>(
    tokens: &'t [Token],
    chain_start: usize,
    chain_end: usize,
    terminal: &str,
) -> &'t [Token] {
    let hi = chain_end.min(tokens.len());
    for i in (chain_start..hi).rev() {
        if tokens[i].is_ident(terminal) {
            let mut j = i + 1;
            if let Some((_, next)) = parse_turbofish(tokens, j) {
                j = next;
            }
            if tokens.get(j).is_some_and(|t| t.is_punct("(")) && j + 1 < tokens.len() {
                return &tokens[j + 1..hi];
            }
        }
    }
    &[]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn events(src: &str) -> Vec<(u32, EventKind)> {
        let lexed = lex(src);
        let parsed = parse(&lexed.tokens);
        let mut hash_fns = HashFns::default();
        hash_fns.collect_file(&lexed.tokens, &parsed);
        hash_fns.finish();
        hash_iter_events(&lexed.tokens, &parsed, &hash_fns)
            .into_iter()
            .map(|e| (e.line, e.kind))
            .collect()
    }

    #[test]
    fn hash_returning_fn_classifies_callers_binding() {
        // `joint_counts` returns a HashMap; the caller's `let joint = …`
        // binding is classified hash-ordered even with no type annotation —
        // this is the exact shape of the entropy/MI accumulation bug.
        let src = "use std::collections::HashMap;\n\
                   fn joint_counts(xs: &[u32]) -> HashMap<(u32, u32), usize> {\n\
                   let mut m = HashMap::new();\n\
                   for &x in xs { *m.entry((x, x)).or_insert(0) += 1; }\n\
                   m\n}\n\
                   fn mi(xs: &[u32]) -> f64 {\n\
                   let joint = joint_counts(xs);\n\
                   let mut acc = 0.0;\n\
                   for (_, &c) in &joint { acc += c as f64; }\n\
                   acc\n}\n";
        assert_eq!(events(src), vec![(10, EventKind::FloatReduction)]);
    }

    #[test]
    fn lets_inside_block_initializers_are_collected() {
        // The entropy-style shape: the hash binding and the accumulator live
        // inside a `let mi = { … };` block initializer. Linear scanning that
        // skips to the statement's `;` never sees them.
        let src = "use std::collections::HashMap;\n\
                   fn joint_counts(xs: &[u32]) -> HashMap<(u32, u32), usize> {\n\
                   let mut m = HashMap::new();\n\
                   for &x in xs { *m.entry((x, x)).or_insert(0) += 1; }\n\
                   m\n}\n\
                   fn mi(xs: &[u32]) -> f64 {\n\
                   let mi = {\n\
                   let joint = joint_counts(xs);\n\
                   let mut acc = 0.0;\n\
                   for (_, &c) in &joint { acc += c as f64; }\n\
                   acc\n};\n\
                   mi\n}\n";
        assert_eq!(events(src), vec![(11, EventKind::FloatReduction)]);
    }

    #[test]
    fn for_loop_over_hash_map_is_an_event() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
                   let mut out = Vec::new();\n\
                   for (k, _) in m { out.push(*k); }\n\
                   out\n}\n";
        assert_eq!(events(src), vec![(4, EventKind::HashIter)]);
    }

    #[test]
    fn for_loop_with_float_accumulation_is_a_float_reduction() {
        let src = "fn f(m: &std::collections::HashMap<u32, f64>) -> f64 {\n\
                   let mut acc = 0.0;\n\
                   for (_, v) in m.iter() { acc += v; }\n\
                   acc\n}\n";
        assert_eq!(events(src), vec![(3, EventKind::FloatReduction)]);
    }

    #[test]
    fn btree_map_iteration_is_not_an_event() {
        let src = "use std::collections::BTreeMap;\n\
                   fn f(m: &BTreeMap<u32, u32>) -> Vec<u32> {\n\
                   let mut out = Vec::new();\n\
                   for (k, _) in m { out.push(*k); }\n\
                   out\n}\n";
        assert!(events(src).is_empty());
    }

    #[test]
    fn lookups_and_order_insensitive_terminals_are_compliant() {
        let src = "use std::collections::{HashMap, HashSet};\n\
                   fn f(m: &HashMap<u32, u32>, s: &HashSet<u32>) -> usize {\n\
                   let _v = m.get(&1);\n\
                   let has = s.contains(&2);\n\
                   let n = m.iter().count();\n\
                   let any = m.values().any(|v| *v > 3);\n\
                   let total: usize = m.values().sum::<usize>();\n\
                   n + usize::from(has) + usize::from(any) + total\n}\n";
        assert!(events(src).is_empty(), "{:?}", events(src));
    }

    #[test]
    fn float_sum_turbofish_is_a_float_reduction() {
        let src = "fn f(m: &std::collections::HashMap<u32, f64>) -> f64 {\n\
                   m.values().sum::<f64>()\n}\n";
        assert_eq!(events(src), vec![(2, EventKind::FloatReduction)]);
    }

    #[test]
    fn fold_with_float_seed_is_a_float_reduction() {
        let src = "fn f(m: &std::collections::HashMap<u32, f64>) -> f64 {\n\
                   m.values().fold(0.0, |a, v| a + v)\n}\n";
        assert_eq!(events(src), vec![(2, EventKind::FloatReduction)]);
        // Integer fold is still order-flagged (monoid unknown), but not float.
        let src = "fn g(m: &std::collections::HashMap<u32, u64>) -> u64 {\n\
                   m.values().fold(0, |a, v| a + v)\n}\n";
        assert_eq!(events(src), vec![(2, EventKind::HashIter)]);
    }

    #[test]
    fn collect_to_vec_without_sort_is_flagged() {
        let src = "fn f(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {\n\
                   let v: Vec<u32> = m.keys().copied().collect::<Vec<u32>>();\n\
                   v\n}\n";
        assert_eq!(events(src), vec![(2, EventKind::HashIter)]);
    }

    #[test]
    fn collect_then_sort_is_compliant() {
        let src = "fn f(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {\n\
                   let mut v = m.keys().copied().collect::<Vec<u32>>();\n\
                   v.sort_unstable();\n\
                   v\n}\n";
        assert!(events(src).is_empty(), "{:?}", events(src));
    }

    #[test]
    fn collect_into_btree_is_compliant() {
        let src = "use std::collections::{BTreeMap, HashMap};\n\
                   fn f(m: &HashMap<u32, u32>) -> BTreeMap<u32, u32> {\n\
                   m.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<u32, u32>>()\n}\n";
        assert!(events(src).is_empty(), "{:?}", events(src));
    }

    #[test]
    fn aliased_hash_map_is_resolved_through_use() {
        let src = "use std::collections::HashMap as Map;\n\
                   fn f(m: &Map<u32, u32>) -> Vec<u32> {\n\
                   let mut out = Vec::new();\n\
                   for k in m.keys() { out.push(*k); }\n\
                   out\n}\n";
        assert_eq!(events(src), vec![(4, EventKind::HashIter)]);
    }

    #[test]
    fn local_let_hash_map_drain_is_flagged() {
        let src = "fn f(rows: &[u32]) -> Vec<u32> {\n\
                   let mut counts = std::collections::HashMap::new();\n\
                   for &r in rows { *counts.entry(r).or_insert(0u32) += 1; }\n\
                   let mut out = Vec::new();\n\
                   for (k, _) in counts.drain() { out.push(k); }\n\
                   out\n}\n";
        assert_eq!(events(src), vec![(5, EventKind::HashIter)]);
    }

    #[test]
    fn unrelated_bindings_do_not_trigger() {
        let src = "fn f(rows: &[u32]) -> u32 {\n\
                   let mut total = 0u32;\n\
                   for &r in rows { total += r; }\n\
                   total\n}\n";
        assert!(events(src).is_empty());
    }
}
