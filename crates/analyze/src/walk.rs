//! Workspace file discovery and build-context classification.
//!
//! Walks the workspace for `.rs` files, skipping VCS/build directories, and
//! classifies each file as library, binary, or test/bench/example code by a
//! combination of path conventions and the owning crate's manifest (a crate
//! whose `Cargo.toml` declares no `[lib]` target is all-binary, like the
//! CLI crate).

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::FileContext;

/// A discovered source file.
#[derive(Debug, Clone)]
pub struct WorkspaceFile {
    /// Absolute (or root-joined) path on disk.
    pub abs: PathBuf,
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Build context.
    pub context: FileContext,
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", ".claude", "node_modules"];

/// Finds every `.rs` file under `root`, classified. Results are sorted by
/// relative path so downstream output is deterministic.
pub fn discover_files(root: &Path) -> io::Result<Vec<WorkspaceFile>> {
    let mut rs_files = Vec::new();
    let mut manifests: HashMap<PathBuf, bool> = HashMap::new(); // dir -> has [lib]
    walk(root, root, &mut rs_files, &mut manifests)?;
    let mut out: Vec<WorkspaceFile> = rs_files
        .into_iter()
        .map(|abs| {
            let rel = relative_slash(root, &abs);
            let context = classify(&rel, &abs, root, &manifests);
            WorkspaceFile { abs, rel, context }
        })
        .collect();
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn walk(
    root: &Path,
    dir: &Path,
    rs_files: &mut Vec<PathBuf>,
    manifests: &mut HashMap<PathBuf, bool>,
) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, rs_files, manifests)?;
        } else if ty.is_file() {
            if name == "Cargo.toml" {
                let text = fs::read_to_string(&path).unwrap_or_default();
                let has_lib = text.lines().any(|l| l.trim() == "[lib]");
                if let Some(parent) = path.parent() {
                    manifests.insert(parent.to_path_buf(), has_lib);
                }
            } else if name.ends_with(".rs") {
                rs_files.push(path);
            }
        }
    }
    Ok(())
}

fn relative_slash(root: &Path, abs: &Path) -> String {
    let rel = abs.strip_prefix(root).unwrap_or(abs);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

fn classify(rel: &str, abs: &Path, root: &Path, manifests: &HashMap<PathBuf, bool>) -> FileContext {
    let parts: Vec<&str> = rel.split('/').collect();
    // Path conventions first: tests/benches/examples anywhere in the path.
    if parts
        .iter()
        .any(|p| *p == "tests" || *p == "benches" || *p == "examples")
    {
        return FileContext::Test;
    }
    let file = parts.last().copied().unwrap_or_default();
    if file == "main.rs" || file == "build.rs" || parts.windows(2).any(|w| w == ["src", "bin"]) {
        return FileContext::Binary;
    }
    // Crate manifest: nearest ancestor directory holding a Cargo.toml. A
    // crate with no `[lib]` section builds only binaries.
    let mut dir = abs.parent();
    while let Some(d) = dir {
        if let Some(&has_lib) = manifests.get(d) {
            return if has_lib {
                FileContext::Library
            } else {
                FileContext::Binary
            };
        }
        if d == root {
            break;
        }
        dir = d.parent();
    }
    FileContext::Library
}

/// Walks upward from `start` to find the workspace root: the first ancestor
/// whose `Cargo.toml` contains a `[workspace]` section.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    /// Creates a unique scratch workspace for one test.
    pub(crate) fn scratch_workspace(files: &[(&str, &str)]) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let root =
            std::env::temp_dir().join(format!("fdx-analyze-test-{}-{n}", std::process::id()));
        for (rel, contents) in files {
            let path = root.join(rel);
            if let Some(parent) = path.parent() {
                fs::create_dir_all(parent).expect("mkdir");
            }
            fs::write(&path, contents).expect("write fixture");
        }
        root
    }

    fn ws() -> PathBuf {
        scratch_workspace(&[
            ("Cargo.toml", "[workspace]\nmembers = [\"crates/*\"]\n"),
            (
                "crates/liby/Cargo.toml",
                "[package]\nname = \"liby\"\n\n[lib]\nname = \"liby\"\n",
            ),
            ("crates/liby/src/lib.rs", "pub fn f() {}\n"),
            ("crates/liby/src/inner.rs", "pub fn g() {}\n"),
            ("crates/liby/src/bin/tool.rs", "fn main() {}\n"),
            ("crates/liby/tests/it.rs", "#[test]\nfn t() {}\n"),
            ("crates/liby/benches/b.rs", "fn main() {}\n"),
            ("crates/liby/examples/e.rs", "fn main() {}\n"),
            (
                "crates/binonly/Cargo.toml",
                "[package]\nname = \"binonly\"\n\n[[bin]]\nname = \"b\"\npath = \"src/main.rs\"\n",
            ),
            ("crates/binonly/src/main.rs", "fn main() {}\n"),
            ("crates/binonly/src/commands.rs", "pub fn run() {}\n"),
            ("target/debug/generated.rs", "fn ignored() {}\n"),
            (".hidden/x.rs", "fn ignored() {}\n"),
        ])
    }

    fn ctx_of(files: &[WorkspaceFile], rel: &str) -> FileContext {
        files
            .iter()
            .find(|f| f.rel == rel)
            .unwrap_or_else(|| panic!("{rel} not discovered"))
            .context
    }

    #[test]
    fn discovers_and_classifies() {
        let root = ws();
        let files = discover_files(&root).expect("walk");
        assert_eq!(
            ctx_of(&files, "crates/liby/src/lib.rs"),
            FileContext::Library
        );
        assert_eq!(
            ctx_of(&files, "crates/liby/src/inner.rs"),
            FileContext::Library
        );
        assert_eq!(
            ctx_of(&files, "crates/liby/src/bin/tool.rs"),
            FileContext::Binary
        );
        assert_eq!(ctx_of(&files, "crates/liby/tests/it.rs"), FileContext::Test);
        assert_eq!(
            ctx_of(&files, "crates/liby/benches/b.rs"),
            FileContext::Test
        );
        assert_eq!(
            ctx_of(&files, "crates/liby/examples/e.rs"),
            FileContext::Test
        );
        // Module of a bin-only crate is Binary, even without main.rs naming.
        assert_eq!(
            ctx_of(&files, "crates/binonly/src/commands.rs"),
            FileContext::Binary
        );
        // target/ and dot-dirs are never scanned.
        assert!(!files.iter().any(|f| f.rel.starts_with("target/")));
        assert!(!files.iter().any(|f| f.rel.contains(".hidden")));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn output_is_sorted() {
        let root = ws();
        let files = discover_files(&root).expect("walk");
        let rels: Vec<&String> = files.iter().map(|f| &f.rel).collect();
        let mut sorted = rels.clone();
        sorted.sort();
        assert_eq!(rels, sorted);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn finds_workspace_root_from_nested_dir() {
        let root = ws();
        let nested = root.join("crates/liby/src");
        assert_eq!(find_workspace_root(&nested), Some(root.clone()));
        let _ = fs::remove_dir_all(&root);
    }
}
