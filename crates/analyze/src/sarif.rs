//! SARIF 2.1.0 export: the interchange format CI code-scanning uploads
//! consume, so lint findings annotate pull requests inline. Handwritten
//! with the same discipline as [`crate::json`] — deterministic key order,
//! sorted results (the scan already sorts), trailing newline — and
//! self-validated by [`validate`], which re-parses the document and checks
//! the structural invariants the uploader relies on.

use std::fmt::Write as _;

use crate::diag::{Diagnostic, RuleId, Severity};
use crate::json::{self, write_escaped, Value};
use crate::report::ScanReport;

/// The schema URI embedded in every document (and checked by [`validate`]).
pub const SCHEMA_URI: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Tool name reported in `tool.driver.name`.
pub const TOOL_NAME: &str = "fdx-analyze";

fn level(sev: Severity) -> &'static str {
    match sev {
        Severity::Error => "error",
        Severity::Warning => "warning",
    }
}

/// Renders every diagnostic in the scan as a SARIF 2.1.0 document.
/// Suppressed findings carry a SARIF `suppressions` entry
/// (`kind: inSource`) so the fdx-allow audit trail survives the export —
/// code-scanning UIs show them as dismissed rather than dropping them.
pub fn to_sarif(report: &ScanReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"$schema\": ");
    write_escaped(&mut out, SCHEMA_URI);
    out.push_str(",\n  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n          \"name\": ");
    write_escaped(&mut out, TOOL_NAME);
    out.push_str(",\n          \"rules\": [");
    for (i, r) in RuleId::ALL.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("            {\"id\": ");
        write_escaped(&mut out, r.code());
        out.push_str(", \"shortDescription\": {\"text\": ");
        write_escaped(&mut out, r.summary());
        out.push_str("}, \"defaultConfiguration\": {\"level\": ");
        write_escaped(&mut out, level(r.severity()));
        out.push_str("}}");
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("        ");
        write_result(&mut out, d);
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

fn write_result(out: &mut String, d: &Diagnostic) {
    out.push_str("{\"ruleId\": ");
    write_escaped(out, d.rule.code());
    let rule_index = RuleId::ALL
        .iter()
        .position(|r| *r == d.rule)
        .unwrap_or_default();
    let _ = write!(out, ", \"ruleIndex\": {rule_index}, \"level\": ");
    write_escaped(out, level(d.severity));
    out.push_str(", \"message\": {\"text\": ");
    let message = format!("{}: `{}`", d.rule.summary(), d.snippet);
    write_escaped(out, &message);
    out.push_str("}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": {\"uri\": ");
    write_escaped(out, &d.path);
    let _ = write!(
        out,
        "}}, \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]",
        d.line, d.col
    );
    if let Some(reason) = &d.suppressed {
        out.push_str(", \"suppressions\": [{\"kind\": \"inSource\", \"justification\": ");
        write_escaped(out, reason);
        out.push_str("}]");
    }
    out.push('}');
}

/// Structural self-check: re-parses `doc` and verifies the invariants the
/// code-scanning uploader relies on. Returns the first violation found.
pub fn validate(doc: &str) -> Result<(), String> {
    let v = json::parse(doc).map_err(|e| format!("not valid JSON: {e}"))?;
    if v.get("$schema").and_then(Value::as_str) != Some(SCHEMA_URI) {
        return Err("missing or wrong $schema".to_string());
    }
    if v.get("version").and_then(Value::as_str) != Some("2.1.0") {
        return Err("version must be \"2.1.0\"".to_string());
    }
    let runs = v
        .get("runs")
        .and_then(Value::as_arr)
        .ok_or("runs must be an array")?;
    if runs.len() != 1 {
        return Err(format!("expected exactly one run, found {}", runs.len()));
    }
    let run = &runs[0];
    let driver = run
        .get("tool")
        .and_then(|t| t.get("driver"))
        .ok_or("run missing tool.driver")?;
    if driver.get("name").and_then(Value::as_str) != Some(TOOL_NAME) {
        return Err("tool.driver.name mismatch".to_string());
    }
    let rules = driver
        .get("rules")
        .and_then(Value::as_arr)
        .ok_or("driver.rules must be an array")?;
    let rule_ids: Vec<&str> = rules
        .iter()
        .map(|r| r.get("id").and_then(Value::as_str).ok_or("rule missing id"))
        .collect::<Result<_, _>>()?;
    for r in RuleId::ALL {
        if !rule_ids.contains(&r.code()) {
            return Err(format!("driver.rules missing {}", r.code()));
        }
    }
    let results = run
        .get("results")
        .and_then(Value::as_arr)
        .ok_or("run.results must be an array")?;
    for (i, r) in results.iter().enumerate() {
        let rule_id = r
            .get("ruleId")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("result {i} missing ruleId"))?;
        if !rule_ids.contains(&rule_id) {
            return Err(format!("result {i} references unknown rule {rule_id}"));
        }
        let idx = r
            .get("ruleIndex")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("result {i} missing ruleIndex"))?;
        if rule_ids.get(idx as usize) != Some(&rule_id) {
            return Err(format!("result {i} ruleIndex does not match ruleId"));
        }
        match r.get("level").and_then(Value::as_str) {
            Some("error" | "warning" | "note" | "none") => {}
            other => return Err(format!("result {i} has invalid level {other:?}")),
        }
        if r.get("message").and_then(|m| m.get("text")).is_none() {
            return Err(format!("result {i} missing message.text"));
        }
        let locations = r
            .get("locations")
            .and_then(Value::as_arr)
            .filter(|l| !l.is_empty())
            .ok_or_else(|| format!("result {i} missing locations"))?;
        for loc in locations {
            let phys = loc
                .get("physicalLocation")
                .ok_or_else(|| format!("result {i} location missing physicalLocation"))?;
            let uri = phys
                .get("artifactLocation")
                .and_then(|a| a.get("uri"))
                .and_then(Value::as_str)
                .ok_or_else(|| format!("result {i} missing artifactLocation.uri"))?;
            if uri.starts_with('/') || uri.contains('\\') {
                return Err(format!(
                    "result {i} uri must be relative with forward slashes: {uri}"
                ));
            }
            let start_line = phys
                .get("region")
                .and_then(|reg| reg.get("startLine"))
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("result {i} missing region.startLine"))?;
            if start_line == 0 {
                return Err(format!("result {i} startLine must be 1-based"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: RuleId, path: &str, line: u32, suppressed: Option<&str>) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.to_string(),
            line,
            col: 5,
            snippet: "for (k, v) in &map {".to_string(),
            severity: rule.severity(),
            suppressed: suppressed.map(str::to_string),
        }
    }

    fn sample() -> ScanReport {
        ScanReport {
            files_scanned: 2,
            diagnostics: vec![
                diag(RuleId::L009, "crates/a/src/lib.rs", 10, None),
                diag(RuleId::L010, "crates/b/src/lib.rs", 20, None),
                diag(RuleId::L001, "crates/c/src/lib.rs", 30, Some("startup")),
            ],
            ratchet: None,
        }
    }

    #[test]
    fn sarif_output_validates_against_self_check() {
        let doc = to_sarif(&sample());
        validate(&doc).expect("valid SARIF");
        // Determinism: byte-identical across renders.
        assert_eq!(doc, to_sarif(&sample()));
        assert!(doc.ends_with('\n'));
    }

    #[test]
    fn empty_report_is_still_valid() {
        let doc = to_sarif(&ScanReport {
            files_scanned: 0,
            diagnostics: Vec::new(),
            ratchet: None,
        });
        validate(&doc).expect("valid SARIF");
    }

    #[test]
    fn results_carry_levels_positions_and_suppressions() {
        let doc = to_sarif(&sample());
        let v = json::parse(&doc).unwrap();
        let results = v.get("runs").and_then(Value::as_arr).unwrap()[0]
            .get("results")
            .and_then(Value::as_arr)
            .unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(
            results[0].get("ruleId").and_then(Value::as_str),
            Some("FDX-L009")
        );
        assert_eq!(
            results[0].get("level").and_then(Value::as_str),
            Some("error")
        );
        // L010 is the warning-severity audit rule.
        assert_eq!(
            results[1].get("level").and_then(Value::as_str),
            Some("warning")
        );
        let region = results[0].get("locations").and_then(Value::as_arr).unwrap()[0]
            .get("physicalLocation")
            .and_then(|p| p.get("region"))
            .unwrap();
        assert_eq!(region.get("startLine").and_then(Value::as_u64), Some(10));
        assert_eq!(region.get("startColumn").and_then(Value::as_u64), Some(5));
        // The fdx-allow audit trail survives as a SARIF suppression.
        let sup = results[2].get("suppressions").and_then(Value::as_arr);
        assert_eq!(
            sup.and_then(|s| s[0].get("justification"))
                .and_then(Value::as_str),
            Some("startup")
        );
        assert!(results[0].get("suppressions").is_none());
    }

    #[test]
    fn validate_rejects_structural_damage() {
        assert!(validate("{}").is_err());
        assert!(validate("not json").is_err());
        let good = to_sarif(&sample());
        // Wrong version.
        assert!(validate(&good.replace("\"2.1.0\"", "\"2.0.0\"")).is_err());
        // A result referencing a rule the driver does not declare.
        assert!(
            validate(&good.replace("\"ruleId\": \"FDX-L009\"", "\"ruleId\": \"FDX-L099\""))
                .is_err()
        );
        // 0-based line numbers.
        assert!(validate(&good.replace("\"startLine\": 10", "\"startLine\": 0")).is_err());
    }
}
