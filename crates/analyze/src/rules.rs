//! The rule pack: token-pattern rules (FDX-L001–L008) plus semantic rules
//! over the [`crate::parse`]/[`crate::sema`] layer (FDX-L009–L013, and
//! the atomic-write rule FDX-L015), context-aware (library vs.
//! test/bench/bin code, `#[cfg(test)]` regions), with
//! `// fdx-allow: <rule> <reason>` suppression and a suppression-hygiene
//! rule (FDX-L014) auditing the allows themselves.

use crate::diag::{Diagnostic, RuleId};
use crate::lexer::{lex, LexedFile, Token, TokenKind};
use crate::parse::{match_forward, parse, ParsedFile};
use crate::sema::{self, EventKind, HashFns};

/// How a file participates in the build — decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileContext {
    /// Part of a `[lib]` target: full rule pack.
    Library,
    /// Binary, build script, or a crate with no `[lib]` target.
    Binary,
    /// Test, bench, or example code.
    Test,
}

/// A file ready for analysis.
#[derive(Debug)]
pub struct SourceFile<'a> {
    /// Workspace-relative path, forward slashes.
    pub rel_path: &'a str,
    /// File contents.
    pub source: &'a str,
    /// Build context of the whole file.
    pub context: FileContext,
}

/// Kernel crates in scope for FDX-L005 (lossy casts corrupt Θ-estimation
/// long before they overflow in anything user-visible).
const KERNEL_PREFIXES: &[&str] = &["crates/linalg/", "crates/glasso/", "crates/stats/"];

/// Narrow numeric targets for FDX-L005. Widths ≥ 64 bits (and `usize`)
/// are accepted: on every supported target they preserve the index- and
/// count-typed values the kernels cast.
const LOSSY_CAST_TARGETS: &[&str] = &["f32", "u8", "u16", "u32", "i8", "i16", "i32"];

/// The canonical metric-name registry for FDX-L008, parsed out of
/// `crates/obs/src/metrics.rs`: every plain `"fdx.*"` string literal in
/// that file is a registered name. Parsing the source (rather than linking
/// against `fdx-obs`) keeps the analyzer dependency-free and means the lint
/// always checks against the committed registry, not a stale build.
#[derive(Debug, Clone, Default)]
pub struct MetricNames {
    /// Sorted, deduplicated registered names.
    names: Vec<String>,
}

impl MetricNames {
    /// Collects every `fdx.*` string literal in the registry source.
    pub fn parse(source: &str) -> MetricNames {
        let lexed = lex(source);
        let mut names: Vec<String> = lexed
            .tokens
            .iter()
            .filter_map(str_literal)
            .filter(|s| s.starts_with("fdx."))
            .map(str::to_string)
            .collect();
        names.sort();
        names.dedup();
        MetricNames { names }
    }

    /// Number of registered names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the registry parsed to nothing (rule should not run).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.names
            .binary_search_by(|n| n.as_str().cmp(name))
            .is_ok()
    }
}

/// The quoted content of a plain `"…"` string-literal token. Raw and byte
/// strings return `None` — metric names at call sites are always plain.
fn str_literal(t: &Token) -> Option<&str> {
    if t.kind != TokenKind::Str {
        return None;
    }
    t.text.strip_prefix('"')?.strip_suffix('"')
}

/// Analyzes one file: runs every rule, applies suppressions, returns all
/// diagnostics (suppressed ones carry `suppressed: Some(reason)`).
/// Equivalent to [`check_file_with`] without a metric-name registry, so
/// FDX-L008 does not run.
pub fn check_file(file: &SourceFile<'_>) -> Vec<Diagnostic> {
    check_file_with(file, None)
}

/// [`check_file`] plus FDX-L008 when a parsed metric-name registry is
/// supplied (the workspace scanner loads it once from
/// `crates/obs/src/metrics.rs` and threads it through). Lexes and parses
/// the file itself; hash-returning fns are taken from this file only.
pub fn check_file_with(file: &SourceFile<'_>, metrics: Option<&MetricNames>) -> Vec<Diagnostic> {
    let lexed = lex(file.source);
    let parsed = parse(&lexed.tokens);
    let mut hash_fns = HashFns::default();
    hash_fns.collect_file(&lexed.tokens, &parsed);
    hash_fns.finish();
    check_parsed(file, &lexed, &parsed, metrics, &hash_fns)
}

/// The full rule pipeline over pre-lexed, pre-parsed input. The workspace
/// scanner calls this directly so the lex/parse work is done once per file
/// and `hash_fns` carries workspace-wide return-type knowledge.
pub fn check_parsed(
    file: &SourceFile<'_>,
    lexed: &LexedFile,
    parsed: &ParsedFile,
    metrics: Option<&MetricNames>,
    hash_fns: &HashFns,
) -> Vec<Diagnostic> {
    let test_mask = cfg_test_mask(&lexed.tokens);
    let lines: Vec<&str> = file.source.lines().collect();
    let mut hits: Vec<(RuleId, u32, u32)> = Vec::new();

    rule_unwrap_expect(file, lexed, &test_mask, &mut hits);
    rule_float_eq(file, lexed, &test_mask, &mut hits);
    rule_instant_now(file, lexed, &mut hits);
    rule_panic_family(file, lexed, &test_mask, &mut hits);
    rule_lossy_cast(file, lexed, &test_mask, &mut hits);
    rule_unsafe_without_safety(lexed, &mut hits);
    rule_catch_unwind(file, lexed, &mut hits);
    if let Some(metrics) = metrics {
        rule_metric_names(file, lexed, &test_mask, metrics, &mut hits);
    }
    rule_hash_iteration(file, lexed, parsed, hash_fns, &test_mask, &mut hits);
    rule_atomic_ordering(file, lexed, &test_mask, &mut hits);
    rule_thread_creation(file, lexed, &test_mask, &mut hits);
    rule_wallclock_and_env(file, lexed, &test_mask, &mut hits);
    rule_persistent_write(file, lexed, &test_mask, &mut hits);

    let allows = suppression_map(lexed);
    rule_allow_without_reason(&allows, &mut hits);
    let mut out: Vec<Diagnostic> = hits
        .into_iter()
        .map(|(rule, line, col)| {
            let snippet = lines
                .get(line as usize - 1)
                .map(|l| truncate(l.trim()))
                .unwrap_or_default();
            // Suppression hygiene itself cannot be waived: an fdx-allow
            // listing L014 would otherwise excuse its own missing reason.
            let suppressed = if rule == RuleId::L014 {
                None
            } else {
                find_allow(&allows, rule, line)
            };
            Diagnostic {
                rule,
                path: file.rel_path.to_string(),
                line,
                col,
                snippet,
                severity: rule.severity(),
                suppressed,
            }
        })
        .collect();
    out.sort_by_key(|d| d.sort_key());
    out
}

fn truncate(s: &str) -> String {
    if s.chars().count() > 120 {
        let cut: String = s.chars().take(117).collect();
        format!("{cut}...")
    } else {
        s.to_string()
    }
}

/// One parsed `fdx-allow` comment: the rules it waives and the reason.
struct Allow {
    line: u32,
    rules: Vec<RuleId>,
    reason: String,
}

/// Parses every `fdx-allow: <rules> <reason>` comment in the file.
fn suppression_map(lexed: &LexedFile) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("fdx-allow:") else {
            continue;
        };
        // Leading words that parse as rule ids are the waived rules; the
        // first word that does not parse starts the free-form reason.
        let mut rules = Vec::new();
        let mut tail = rest;
        loop {
            let trimmed = tail.trim_start_matches(|ch: char| ch.is_whitespace() || ch == ',');
            if trimmed.is_empty() {
                tail = trimmed;
                break;
            }
            let end = trimmed
                .find(|ch: char| ch.is_whitespace() || ch == ',')
                .unwrap_or(trimmed.len());
            match RuleId::parse(&trimmed[..end]) {
                Some(r) => {
                    rules.push(r);
                    tail = &trimmed[end..];
                }
                None => {
                    tail = trimmed;
                    break;
                }
            }
        }
        let reason = tail.trim().to_string();
        if !rules.is_empty() {
            out.push(Allow {
                line: c.line,
                rules,
                reason,
            });
        }
    }
    out
}

/// A diagnostic at `line` is waived by an allow on the same line (trailing
/// comment) or on the immediately preceding line (comment above).
fn find_allow(allows: &[Allow], rule: RuleId, line: u32) -> Option<String> {
    allows
        .iter()
        .find(|a| a.rules.contains(&rule) && (a.line == line || a.line + 1 == line))
        .map(|a| {
            if a.reason.is_empty() {
                "(no reason given)".to_string()
            } else {
                a.reason.clone()
            }
        })
}

/// Marks token index ranges covered by `#[cfg(test)]` items (typically the
/// `mod tests { … }` block): returns a bool per token.
fn cfg_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))) {
            i += 1;
            continue;
        }
        // Collect the attribute tokens up to the matching `]`.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut saw_cfg = false;
        let mut saw_test = false;
        while j < tokens.len() && depth > 0 {
            let t = &tokens[j];
            if t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("]") {
                depth -= 1;
            } else if t.is_ident("cfg") {
                saw_cfg = true;
            } else if t.is_ident("test") {
                saw_test = true;
            }
            j += 1;
        }
        if !(saw_cfg && saw_test) {
            i = j;
            continue;
        }
        // The attribute covers the next item: scan to its end — either a
        // `;` (e.g. `#[cfg(test)] mod tests;`) or a balanced `{ … }` block.
        let mut k = j;
        let mut brace_depth = 0usize;
        let mut entered = false;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.is_punct("{") {
                brace_depth += 1;
                entered = true;
            } else if t.is_punct("}") {
                brace_depth = brace_depth.saturating_sub(1);
                if entered && brace_depth == 0 {
                    break;
                }
            } else if t.is_punct(";") && !entered {
                break;
            }
            k += 1;
        }
        for m in mask.iter_mut().take((k + 1).min(tokens.len())).skip(i) {
            *m = true;
        }
        i = k + 1;
    }
    mask
}

fn in_library_code(file: &SourceFile<'_>, test_mask: &[bool], idx: usize) -> bool {
    file.context == FileContext::Library && !test_mask.get(idx).copied().unwrap_or(false)
}

/// FDX-L001: `.unwrap()` / `.expect(` in library code.
fn rule_unwrap_expect(
    file: &SourceFile<'_>,
    lexed: &LexedFile,
    test_mask: &[bool],
    hits: &mut Vec<(RuleId, u32, u32)>,
) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if !in_library_code(file, test_mask, i) {
            continue;
        }
        let [Some(dot), Some(name), Some(open)] = [toks.get(i), toks.get(i + 1), toks.get(i + 2)]
        else {
            continue;
        };
        if dot.is_punct(".")
            && (name.is_ident("unwrap") || name.is_ident("expect"))
            && open.is_punct("(")
        {
            hits.push((RuleId::L001, name.line, name.col));
        }
    }
}

/// FDX-L002: `==`/`!=` with a float-literal operand in library code. The
/// lexer has no types, so the rule keys on the one case that is always
/// decidable — and always wrong outside a documented exact-zero guard.
fn rule_float_eq(
    file: &SourceFile<'_>,
    lexed: &LexedFile,
    test_mask: &[bool],
    hits: &mut Vec<(RuleId, u32, u32)>,
) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !in_library_code(file, test_mask, i) {
            continue;
        }
        if !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        let float_neighbor = |idx: Option<usize>| {
            idx.and_then(|k| toks.get(k))
                .is_some_and(|n| n.kind == TokenKind::Float)
        };
        // Left operand end, or right operand start (possibly negated).
        let left = float_neighbor(i.checked_sub(1));
        let right = if toks.get(i + 1).is_some_and(|n| n.is_punct("-")) {
            float_neighbor(Some(i + 2))
        } else {
            float_neighbor(Some(i + 1))
        };
        if left || right {
            hits.push((RuleId::L002, t.line, t.col));
        }
    }
}

/// FDX-L003: `Instant::now()` anywhere outside `crates/obs` — all timing
/// flows through obs spans so traces and metrics stay complete. Applies to
/// tests and binaries too (they are exactly where ad-hoc timers accrete).
fn rule_instant_now(file: &SourceFile<'_>, lexed: &LexedFile, hits: &mut Vec<(RuleId, u32, u32)>) {
    if file.rel_path.starts_with("crates/obs/") {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let [Some(a), Some(b), Some(c)] = [toks.get(i), toks.get(i + 1), toks.get(i + 2)] else {
            continue;
        };
        if a.is_ident("Instant") && b.is_punct("::") && c.is_ident("now") {
            hits.push((RuleId::L003, a.line, a.col));
        }
    }
}

/// FDX-L004: `panic!` / `todo!` / `unimplemented!` in library code.
fn rule_panic_family(
    file: &SourceFile<'_>,
    lexed: &LexedFile,
    test_mask: &[bool],
    hits: &mut Vec<(RuleId, u32, u32)>,
) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if !in_library_code(file, test_mask, i) {
            continue;
        }
        let [Some(name), Some(bang)] = [toks.get(i), toks.get(i + 1)] else {
            continue;
        };
        if bang.is_punct("!")
            && (name.is_ident("panic") || name.is_ident("todo") || name.is_ident("unimplemented"))
        {
            hits.push((RuleId::L004, name.line, name.col));
        }
    }
}

/// FDX-L005: `as <narrow numeric type>` in the linalg/glasso/stats kernels.
fn rule_lossy_cast(
    file: &SourceFile<'_>,
    lexed: &LexedFile,
    test_mask: &[bool],
    hits: &mut Vec<(RuleId, u32, u32)>,
) {
    if !KERNEL_PREFIXES.iter().any(|p| file.rel_path.starts_with(p)) {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if !in_library_code(file, test_mask, i) {
            continue;
        }
        let [Some(kw), Some(ty)] = [toks.get(i), toks.get(i + 1)] else {
            continue;
        };
        if kw.is_ident("as") && LOSSY_CAST_TARGETS.iter().any(|t| ty.is_ident(t)) {
            hits.push((RuleId::L005, kw.line, kw.col));
        }
    }
}

/// FDX-L006: `unsafe` (any context) without a `SAFETY:` comment on the same
/// line or within the three preceding lines.
fn rule_unsafe_without_safety(lexed: &LexedFile, hits: &mut Vec<(RuleId, u32, u32)>) {
    for t in &lexed.tokens {
        if !t.is_ident("unsafe") {
            continue;
        }
        let documented = lexed.comments.iter().any(|c| {
            c.text.contains("SAFETY:") && c.end_line <= t.line && c.end_line + 3 >= t.line
        });
        if !documented {
            hits.push((RuleId::L006, t.line, t.col));
        }
    }
}

/// Crates allowed to call `catch_unwind` for FDX-L007: the serve request
/// boundary and the parallel runtime's worker re-raise path. Everywhere
/// else, swallowing a panic hides corruption instead of containing it.
const UNWIND_BOUNDARY_PREFIXES: &[&str] = &["crates/serve/", "crates/par/"];

/// FDX-L007: `catch_unwind` outside the panic-isolation boundary crates.
/// Applies to tests and binaries too — a test that swallows panics asserts
/// nothing, and ad-hoc containment in binaries belongs behind the serve
/// boundary.
fn rule_catch_unwind(file: &SourceFile<'_>, lexed: &LexedFile, hits: &mut Vec<(RuleId, u32, u32)>) {
    if UNWIND_BOUNDARY_PREFIXES
        .iter()
        .any(|p| file.rel_path.starts_with(p))
    {
        return;
    }
    for t in &lexed.tokens {
        if t.is_ident("catch_unwind") {
            hits.push((RuleId::L007, t.line, t.col));
        }
    }
}

/// The registry source file itself — the one place `fdx.*` literals are
/// definitionally registered.
const METRIC_REGISTRY_PATH: &str = "crates/obs/src/metrics.rs";

/// Obs entry points whose first argument is a metric/span name. Lookup
/// helpers (`counter`, `gauge`, `histogram_summary`) are included: reading
/// an unregistered name is the same typo bug as recording one.
const METRIC_NAME_IDENTS: &[&str] = &[
    "counter",
    "counter_add",
    "enter",
    "enter_named",
    "event",
    "gauge",
    "gauge_set",
    "histogram",
    "histogram_summary",
    "observe",
];

/// FDX-L008: an `fdx.*` string literal passed to an obs recording or lookup
/// entry point that is not listed in the canonical registry constant
/// (`crates/obs/src/metrics.rs`). Library and binary code only — tests
/// exercise deliberately unregistered names.
fn rule_metric_names(
    file: &SourceFile<'_>,
    lexed: &LexedFile,
    test_mask: &[bool],
    metrics: &MetricNames,
    hits: &mut Vec<(RuleId, u32, u32)>,
) {
    if metrics.is_empty()
        || file.rel_path == METRIC_REGISTRY_PATH
        || file.context == FileContext::Test
    {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let [Some(name), Some(open), Some(lit)] = [toks.get(i), toks.get(i + 1), toks.get(i + 2)]
        else {
            continue;
        };
        if !METRIC_NAME_IDENTS.iter().any(|id| name.is_ident(id)) || !open.is_punct("(") {
            continue;
        }
        let Some(metric) = str_literal(lit).filter(|s| s.starts_with("fdx.")) else {
            continue;
        };
        if !metrics.contains(metric) {
            hits.push((RuleId::L008, lit.line, lit.col));
        }
    }
}

/// FDX-L009 / FDX-L012: hash-ordered iteration reaching a result path.
/// The [`crate::sema`] pass finds the events; this rule maps them to
/// rules by context. A float reduction inside a numerical kernel crate is
/// the sharper FDX-L012 (the *rounding* becomes order-dependent, which
/// poisons cached Θ-estimates and λ-path stability scores); everything
/// else is FDX-L009. Library and binary code only — tests that iterate a
/// hash map to assert set-membership are fine.
fn rule_hash_iteration(
    file: &SourceFile<'_>,
    lexed: &LexedFile,
    parsed: &ParsedFile,
    hash_fns: &HashFns,
    test_mask: &[bool],
    hits: &mut Vec<(RuleId, u32, u32)>,
) {
    if file.context == FileContext::Test {
        return;
    }
    let in_kernel = KERNEL_PREFIXES.iter().any(|p| file.rel_path.starts_with(p));
    for ev in sema::hash_iter_events(&lexed.tokens, parsed, hash_fns) {
        if test_mask.get(ev.token_idx).copied().unwrap_or(false) {
            continue;
        }
        let rule = match ev.kind {
            EventKind::FloatReduction if in_kernel => RuleId::L012,
            EventKind::FloatReduction | EventKind::HashIter => RuleId::L009,
        };
        hits.push((rule, ev.line, ev.col));
    }
}

/// Atomic read-modify-write methods for FDX-L010: the ones where `Relaxed`
/// gives no happens-before edge for the value being modified.
const RMW_METHODS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "swap",
];

/// The one crate whose `Relaxed` fast paths are documented and audited:
/// obs counters are monotonic and read only for reporting.
const RELAXED_FAST_PATH_PREFIX: &str = "crates/obs/";

/// FDX-L010 (warning): the atomic-ordering audit. Two triggers:
/// `Ordering::Relaxed` as an argument of a read-modify-write call outside
/// crates/obs (obs counters are the documented fast path), and *any*
/// `Ordering::SeqCst` (this workspace has no algorithm that needs a total
/// order; SeqCst is almost always a guess that hides a reasoning gap).
fn rule_atomic_ordering(
    file: &SourceFile<'_>,
    lexed: &LexedFile,
    test_mask: &[bool],
    hits: &mut Vec<(RuleId, u32, u32)>,
) {
    if file.context == FileContext::Test {
        return;
    }
    let toks = &lexed.tokens;
    let obs_fast_path = file.rel_path.starts_with(RELAXED_FAST_PATH_PREFIX);
    for i in 0..toks.len() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let [Some(a), Some(b), Some(c)] = [toks.get(i), toks.get(i + 1), toks.get(i + 2)] else {
            continue;
        };
        if a.is_ident("Ordering") && b.is_punct("::") && c.is_ident("SeqCst") {
            hits.push((RuleId::L010, a.line, a.col));
            continue;
        }
        if obs_fast_path {
            continue;
        }
        // `.fetch_add(…)` etc.: scan the argument list for `Relaxed`.
        if a.is_punct(".") && RMW_METHODS.iter().any(|m| b.is_ident(m)) && c.is_punct("(") {
            let close = match_forward(toks, i + 2);
            let relaxed = toks[i + 3..close.min(toks.len())]
                .iter()
                .any(|t| t.is_ident("Relaxed"));
            if relaxed {
                hits.push((RuleId::L010, b.line, b.col));
            }
        }
    }
}

/// Crates allowed to create threads for FDX-L011: the deterministic
/// parallel runtime and the serve accept/worker loop. Everywhere else,
/// ad-hoc threads bypass fdx-par's index-ordered reduction and make thread
/// count (and thus float summation order) leak into results.
const THREAD_BOUNDARY_PREFIXES: &[&str] = &["crates/par/", "crates/serve/"];

/// FDX-L011: thread creation (`thread::spawn`, `thread::Builder`,
/// `thread::scope`) outside the parallel-runtime boundary crates.
/// `thread::sleep`/`thread::yield_now` are deliberately not flagged —
/// they schedule, they do not create concurrency.
fn rule_thread_creation(
    file: &SourceFile<'_>,
    lexed: &LexedFile,
    test_mask: &[bool],
    hits: &mut Vec<(RuleId, u32, u32)>,
) {
    if file.context == FileContext::Test
        || THREAD_BOUNDARY_PREFIXES
            .iter()
            .any(|p| file.rel_path.starts_with(p))
    {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let [Some(a), Some(b), Some(c)] = [toks.get(i), toks.get(i + 1), toks.get(i + 2)] else {
            continue;
        };
        if a.is_ident("thread")
            && b.is_punct("::")
            && (c.is_ident("spawn") || c.is_ident("Builder") || c.is_ident("scope"))
        {
            hits.push((RuleId::L011, a.line, a.col));
        }
    }
}

/// Crates exempt from FDX-L013: fdx-par reads `FDX_THREADS` by contract
/// (the documented thread-resolution order), and the bench harness
/// timestamps its own reports.
const TIME_ENV_EXEMPT_PREFIXES: &[&str] = &["crates/par/", "crates/bench/"];

/// FDX-L013: wall-clock or environment leaking into result paths.
/// `SystemTime::now()` is flagged in library and binary code (results must
/// be a function of dataset and config, never of when they ran);
/// `env::var`-family reads are flagged in library code only — binaries own
/// their process environment, libraries must take config as arguments.
fn rule_wallclock_and_env(
    file: &SourceFile<'_>,
    lexed: &LexedFile,
    test_mask: &[bool],
    hits: &mut Vec<(RuleId, u32, u32)>,
) {
    if file.context == FileContext::Test
        || TIME_ENV_EXEMPT_PREFIXES
            .iter()
            .any(|p| file.rel_path.starts_with(p))
    {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let [Some(a), Some(b), Some(c)] = [toks.get(i), toks.get(i + 1), toks.get(i + 2)] else {
            continue;
        };
        if !b.is_punct("::") {
            continue;
        }
        if a.is_ident("SystemTime") && c.is_ident("now") {
            hits.push((RuleId::L013, a.line, a.col));
        } else if file.context == FileContext::Library
            && a.is_ident("env")
            && (c.is_ident("var")
                || c.is_ident("var_os")
                || c.is_ident("vars")
                || c.is_ident("vars_os"))
        {
            hits.push((RuleId::L013, a.line, a.col));
        }
    }
}

/// The one file allowed to open files for writing directly:
/// `fdx_obs::write_atomic`'s own implementation (it must write the temp
/// file it later renames).
const ATOMIC_WRITE_IMPL: &str = "crates/obs/src/export.rs";

/// FDX-L015: persistent file writes in library code must go through
/// `fdx_obs::write_atomic` (temp file + fsync + rename). A direct
/// `fs::write` / `File::create` / `OpenOptions` open leaves a torn,
/// half-written file when the process is killed mid-write — exactly the
/// corruption the snapshot store's recovery scan exists to quarantine.
/// Streams that are append-only by design (quarantine logs) carry a
/// reasoned `fdx-allow`.
fn rule_persistent_write(
    file: &SourceFile<'_>,
    lexed: &LexedFile,
    test_mask: &[bool],
    hits: &mut Vec<(RuleId, u32, u32)>,
) {
    if file.context != FileContext::Library || file.rel_path == ATOMIC_WRITE_IMPL {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let [Some(a), Some(b), Some(c)] = [toks.get(i), toks.get(i + 1), toks.get(i + 2)] else {
            continue;
        };
        if !b.is_punct("::") {
            continue;
        }
        if (a.is_ident("fs") && c.is_ident("write"))
            || (a.is_ident("File") && c.is_ident("create"))
            || (a.is_ident("OpenOptions") && c.is_ident("new"))
        {
            hits.push((RuleId::L015, a.line, a.col));
        }
    }
}

/// FDX-L014: every `fdx-allow` must carry a reason. A waiver that does not
/// say *why* cannot be re-audited when the code around it changes, so a
/// reasonless allow is itself a violation — reported at the allow comment
/// and not waivable (see the pipeline's L014 special case).
fn rule_allow_without_reason(allows: &[Allow], hits: &mut Vec<(RuleId, u32, u32)>) {
    for a in allows {
        if a.reason.is_empty() {
            hits.push((RuleId::L014, a.line, 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(rel_path: &str, context: FileContext, source: &str) -> Vec<Diagnostic> {
        check_file(&SourceFile {
            rel_path,
            source,
            context,
        })
    }

    fn lib(source: &str) -> Vec<Diagnostic> {
        check("crates/x/src/lib.rs", FileContext::Library, source)
    }

    fn active(diags: &[Diagnostic]) -> Vec<(RuleId, u32)> {
        diags
            .iter()
            .filter(|d| d.suppressed.is_none())
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn l001_flags_unwrap_and_expect_in_library() {
        let d = lib("fn f() {\n    x.unwrap();\n    y.expect(\"m\");\n}\n");
        assert_eq!(active(&d), vec![(RuleId::L001, 2), (RuleId::L001, 3)]);
        assert_eq!(d[0].severity.label(), "error");
        assert!(d[0].snippet.contains("x.unwrap()"));
    }

    #[test]
    fn l001_ignores_lookalikes_and_nonlibrary() {
        // unwrap_or / unwrap_or_else / field named unwrap are not calls to
        // `.unwrap()`.
        let d = lib("fn f() { x.unwrap_or(0); y.unwrap_or_else(g); }");
        assert!(active(&d).is_empty());
        let d = check(
            "crates/x/src/main.rs",
            FileContext::Binary,
            "fn main() { x.unwrap(); }",
        );
        assert!(active(&d).is_empty());
        let d = check(
            "crates/x/tests/t.rs",
            FileContext::Test,
            "fn t() { x.unwrap(); }",
        );
        assert!(active(&d).is_empty());
    }

    #[test]
    fn l001_exempts_cfg_test_modules() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\n";
        assert!(active(&lib(src)).is_empty());
        // …but code *before* the test module is still checked.
        let src = "pub fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {}\n";
        assert_eq!(active(&lib(src)), vec![(RuleId::L001, 1)]);
    }

    #[test]
    fn l001_not_fooled_by_strings_or_comments() {
        let d = lib("fn f() { let s = \".unwrap()\"; } // .unwrap()\n/* .unwrap() */\n");
        assert!(active(&d).is_empty());
    }

    #[test]
    fn l002_flags_float_literal_comparisons() {
        let d = lib("fn f(v: f64) -> bool { v == 0.0 }\nfn g(v: f64) -> bool { 1.5 != v }\n");
        assert_eq!(active(&d), vec![(RuleId::L002, 1), (RuleId::L002, 2)]);
    }

    #[test]
    fn l002_flags_negated_float_rhs() {
        let d = lib("fn f(v: f64) -> bool { v == -1.0 }");
        assert_eq!(active(&d), vec![(RuleId::L002, 1)]);
    }

    #[test]
    fn l002_ignores_int_comparisons_and_ranges() {
        let d = lib("fn f(v: usize) -> bool { v == 0 && v != 10 }\nfn g() { for _ in 0..2 {} }");
        assert!(active(&d).is_empty());
    }

    #[test]
    fn l003_applies_everywhere_except_obs() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(active(&lib(src)), vec![(RuleId::L003, 1)]);
        // Also in tests and binaries.
        let d = check("crates/x/tests/t.rs", FileContext::Test, src);
        assert_eq!(active(&d), vec![(RuleId::L003, 1)]);
        // But not inside the obs crate itself.
        let d = check("crates/obs/src/span.rs", FileContext::Library, src);
        assert!(active(&d).is_empty());
        // Fully qualified form still has the Instant::now tail.
        let d = lib("fn f() { let t = std::time::Instant::now(); }");
        assert_eq!(active(&d), vec![(RuleId::L003, 1)]);
    }

    #[test]
    fn l004_flags_panic_family_in_library_only() {
        let d =
            lib("fn f() { panic!(\"boom\"); }\nfn g() { todo!() }\nfn h() { unimplemented!() }");
        assert_eq!(
            active(&d),
            vec![(RuleId::L004, 1), (RuleId::L004, 2), (RuleId::L004, 3)]
        );
        let d = check(
            "crates/x/src/main.rs",
            FileContext::Binary,
            "fn main() { panic!(); }",
        );
        assert!(active(&d).is_empty());
        // assert!/debug_assert! are fine.
        let d = lib("fn f(x: bool) { assert!(x); debug_assert!(x); }");
        assert!(active(&d).is_empty());
    }

    #[test]
    fn l005_flags_lossy_casts_in_kernels_only() {
        let src = "fn f(n: usize) -> u32 { n as u32 }\nfn g(x: f64) -> f32 { x as f32 }\nfn h(n: usize) -> u64 { n as u64 }";
        let d = check("crates/linalg/src/matrix.rs", FileContext::Library, src);
        assert_eq!(active(&d), vec![(RuleId::L005, 1), (RuleId::L005, 2)]);
        assert_eq!(d[0].severity.label(), "warning");
        // Same code outside a kernel crate: silent.
        let d = check("crates/data/src/csv.rs", FileContext::Library, src);
        assert!(active(&d).is_empty());
        // Widening casts are fine everywhere.
        let d = check(
            "crates/stats/src/chi2.rs",
            FileContext::Library,
            "fn f(n: u32) -> f64 { n as f64 }",
        );
        assert!(active(&d).is_empty());
    }

    #[test]
    fn l006_requires_safety_comment() {
        let d = lib("fn f(p: *const u8) { unsafe { p.read(); } }");
        assert_eq!(active(&d), vec![(RuleId::L006, 1)]);
        let d = lib("// SAFETY: p is valid for reads per the caller contract.\nfn f(p: *const u8) { unsafe { p.read(); } }");
        assert!(active(&d).is_empty());
        // A SAFETY comment too far above does not count.
        let d = lib("// SAFETY: stale\n\n\n\n\nfn f(p: *const u8) { unsafe { p.read(); } }");
        assert_eq!(active(&d), vec![(RuleId::L006, 6)]);
        // Applies in tests too.
        let d = check(
            "crates/x/tests/t.rs",
            FileContext::Test,
            "fn t() { unsafe { x(); } }",
        );
        assert_eq!(active(&d), vec![(RuleId::L006, 1)]);
    }

    #[test]
    fn l007_flags_catch_unwind_outside_boundary_crates() {
        let src = "use std::panic;\nfn f() { let _ = panic::catch_unwind(|| g()); }";
        assert_eq!(active(&lib(src)), vec![(RuleId::L007, 2)]);
        // Applies to tests and binaries too.
        let d = check("crates/x/tests/t.rs", FileContext::Test, src);
        assert_eq!(active(&d), vec![(RuleId::L007, 2)]);
        // The isolation-boundary crates are exempt.
        let d = check("crates/serve/src/server.rs", FileContext::Library, src);
        assert!(active(&d).is_empty());
        let d = check("crates/par/src/lib.rs", FileContext::Library, src);
        assert!(active(&d).is_empty());
        // Mentions in strings or comments do not count.
        let d = lib("// catch_unwind is banned here\nfn f() { let s = \"catch_unwind\"; }");
        assert!(active(&d).is_empty());
    }

    const REGISTRY: &str = "pub const METRIC_NAMES: &[&str] = &[\n    \
         \"fdx.discover\",\n    \"fdx.serve.requests\",\n];\n";

    fn check_metrics(rel_path: &str, context: FileContext, source: &str) -> Vec<Diagnostic> {
        let metrics = MetricNames::parse(REGISTRY);
        check_file_with(
            &SourceFile {
                rel_path,
                source,
                context,
            },
            Some(&metrics),
        )
    }

    #[test]
    fn metric_names_parse_collects_sorted_fdx_literals() {
        let m = MetricNames::parse(REGISTRY);
        assert_eq!(m.len(), 2);
        assert!(m.contains("fdx.discover"));
        assert!(m.contains("fdx.serve.requests"));
        assert!(!m.contains("fdx.typo"));
        // Non-fdx literals in the registry source are not names.
        let m = MetricNames::parse("const X: &str = \"other.name\";");
        assert!(m.is_empty());
    }

    #[test]
    fn l008_flags_unregistered_names_at_recording_sites() {
        let src = "fn f() {\n    counter_add(\"fdx.serve.requests\", 1);\n    \
             counter_add(\"fdx.serve.requsets\", 1);\n    \
             gauge_set(\"fdx.typo\", 0.0);\n    \
             observe(\"fdx.discover\", 1);\n}\n";
        let d = check_metrics("crates/x/src/lib.rs", FileContext::Library, src);
        assert_eq!(active(&d), vec![(RuleId::L008, 3), (RuleId::L008, 4)]);
        assert_eq!(d[0].severity.label(), "error");
    }

    #[test]
    fn l008_covers_span_enter_and_event() {
        let src = "fn f() {\n    let _s = Span::enter(\"fdx.unknown_span\");\n    \
             fdx_obs::event(\"fdx.unknown_event\", &[]);\n}\n";
        let d = check_metrics("crates/x/src/lib.rs", FileContext::Library, src);
        assert_eq!(active(&d), vec![(RuleId::L008, 2), (RuleId::L008, 3)]);
        // Non-fdx span names (serve.drain, tane.discover) are out of scope.
        let src = "fn f() { let _s = Span::enter(\"serve.drain\"); }";
        let d = check_metrics("crates/x/src/lib.rs", FileContext::Library, src);
        assert!(active(&d).is_empty());
    }

    #[test]
    fn l008_exempts_registry_tests_and_cfg_test() {
        let src = "fn f() { counter_add(\"fdx.typo\", 1); }";
        // The registry file itself is definitionally registered.
        let d = check_metrics("crates/obs/src/metrics.rs", FileContext::Library, src);
        assert!(active(&d).is_empty());
        // Test files exercise deliberately unregistered names.
        let d = check_metrics("crates/x/tests/t.rs", FileContext::Test, src);
        assert!(active(&d).is_empty());
        // …and so do `#[cfg(test)]` modules inside library code.
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    \
             fn t() { counter_add(\"fdx.typo\", 1); }\n}\n";
        let d = check_metrics("crates/x/src/lib.rs", FileContext::Library, src);
        assert!(active(&d).is_empty());
        // Binaries are NOT exempt: their recordings land in the registry.
        let src = "fn main() { counter_add(\"fdx.typo\", 1); }";
        let d = check_metrics("crates/x/src/main.rs", FileContext::Binary, src);
        assert_eq!(active(&d), vec![(RuleId::L008, 1)]);
    }

    #[test]
    fn l008_requires_a_registry_and_honors_fdx_allow() {
        // Without a registry (plain check_file), the rule does not run.
        let src = "fn f() { counter_add(\"fdx.typo\", 1); }";
        let d = check("crates/x/src/lib.rs", FileContext::Library, src);
        assert!(active(&d).is_empty());
        // fdx-allow waives it like any other rule.
        let src = "fn f() { counter_add(\"fdx.typo\", 1); } // fdx-allow: L008 staging a rename\n";
        let d = check_metrics("crates/x/src/lib.rs", FileContext::Library, src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].suppressed.as_deref(), Some("staging a rename"));
    }

    #[test]
    fn fdx_allow_suppresses_same_line_and_line_above() {
        let src = "fn f() { x.unwrap(); } // fdx-allow: L001 startup path, cannot fail\n";
        let d = lib(src);
        assert_eq!(d.len(), 1);
        assert_eq!(
            d[0].suppressed.as_deref(),
            Some("startup path, cannot fail")
        );
        let src = "// fdx-allow: L001 checked above\nfn f() { x.unwrap(); }\n";
        let d = lib(src);
        assert_eq!(d[0].suppressed.as_deref(), Some("checked above"));
    }

    #[test]
    fn fdx_allow_is_rule_specific() {
        // An allow for L002 does not waive the L001 on the same line.
        let src = "fn f() { x.unwrap(); } // fdx-allow: L002 wrong rule\n";
        let d = lib(src);
        assert_eq!(active(&d), vec![(RuleId::L001, 1)]);
    }

    #[test]
    fn fdx_allow_multiple_rules_and_missing_reason() {
        let src = "fn f(v: f64) { if v == 0.0 { x.unwrap(); } } // fdx-allow: L001, L002\n";
        let d = lib(src);
        // The L001 and L002 are waived (audit trail says no reason was
        // given) — and the reasonless allow itself is an L014 violation.
        assert_eq!(d.len(), 3);
        assert!(d
            .iter()
            .filter(|x| x.rule != RuleId::L014)
            .all(|x| x.suppressed.as_deref() == Some("(no reason given)")));
        assert_eq!(active(&d), vec![(RuleId::L014, 1)]);
    }

    #[test]
    fn fdx_allow_two_lines_above_does_not_apply() {
        let src = "// fdx-allow: L001 too far\n\nfn f() { x.unwrap(); }\n";
        let d = lib(src);
        assert_eq!(active(&d), vec![(RuleId::L001, 3)]);
    }

    #[test]
    fn diagnostics_are_sorted_and_positions_exact() {
        let src = "fn f() { b.unwrap(); a.unwrap(); }\n";
        let d = lib(src);
        assert_eq!(d.len(), 2);
        assert!(d[0].col < d[1].col);
        assert_eq!(d[0].line, 1);
        assert_eq!(d[0].col, 12); // `unwrap` of b.unwrap()
    }

    #[test]
    fn l009_flags_hash_iteration_reaching_results() {
        // Seeded true positive: for-loop over a HashMap param feeds a Vec.
        let src = "use std::collections::HashMap;\n\
             pub fn attrs(m: &HashMap<u32, u32>) -> Vec<u32> {\n    \
             let mut out = Vec::new();\n    \
             for (k, _) in m { out.push(*k); }\n    \
             out\n}\n";
        assert_eq!(active(&lib(src)), vec![(RuleId::L009, 4)]);
        // Binary code is in scope too (binaries print results).
        let d = check("crates/x/src/main.rs", FileContext::Binary, src);
        assert_eq!(active(&d), vec![(RuleId::L009, 4)]);
        // Test code is not.
        let d = check("crates/x/tests/t.rs", FileContext::Test, src);
        assert!(active(&d).is_empty());
    }

    #[test]
    fn l009_compliant_patterns_are_silent() {
        // BTreeMap iteration, lookups, and collect-then-sort all pass.
        let src = "use std::collections::{BTreeMap, HashMap};\n\
             pub fn f(b: &BTreeMap<u32, u32>, h: &HashMap<u32, u32>) -> Vec<u32> {\n    \
             let mut v: Vec<u32> = h.keys().copied().collect::<Vec<u32>>();\n    \
             v.sort_unstable();\n    \
             for (k, _) in b { v.push(*k); }\n    \
             let _ = h.get(&1);\n    \
             v\n}\n";
        assert!(active(&lib(src)).is_empty(), "{:?}", active(&lib(src)));
    }

    #[test]
    fn l009_honors_cfg_test_and_fdx_allow() {
        let src = "pub fn f() {}\n\
             #[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    \
             fn t(m: &HashMap<u32, u32>) -> Vec<u32> {\n        \
             let mut out = Vec::new();\n        \
             for (k, _) in m { out.push(*k); }\n        \
             out\n    }\n}\n";
        assert!(active(&lib(src)).is_empty());
        let src = "use std::collections::HashMap;\n\
             pub fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n    \
             let mut out = Vec::new();\n    \
             // fdx-allow: L009 order-insensitive count fixup, values all equal\n    \
             for (k, _) in m { out.push(*k); }\n    \
             out\n}\n";
        let d = lib(src);
        assert_eq!(d.len(), 1);
        assert!(d[0].suppressed.is_some());
    }

    #[test]
    fn l012_float_reduction_in_kernel_crate() {
        // Seeded true positive: MI-style float accumulation over a hash map
        // inside crates/stats — exactly the entropy.rs bug class.
        let src = "use std::collections::HashMap;\n\
             pub fn mi(joint: &HashMap<(u32, u32), usize>) -> f64 {\n    \
             let mut acc = 0.0;\n    \
             for (_, &c) in joint { acc += c as f64; }\n    \
             acc\n}\n";
        let d = check("crates/stats/src/entropy.rs", FileContext::Library, src);
        assert_eq!(active(&d), vec![(RuleId::L012, 4)]);
        // The same shape outside a kernel crate is the generic L009.
        assert_eq!(active(&lib(src)), vec![(RuleId::L009, 4)]);
        // Turbofish float sums are L012 in kernels too.
        let src = "use std::collections::HashMap;\n\
             pub fn total(m: &HashMap<u32, f64>) -> f64 { m.values().sum::<f64>() }\n";
        let d = check("crates/glasso/src/lib.rs", FileContext::Library, src);
        assert_eq!(active(&d), vec![(RuleId::L012, 2)]);
    }

    #[test]
    fn l012_integer_reductions_are_compliant() {
        // Integer sums commute exactly: no rounding, no order dependence.
        let src = "use std::collections::HashMap;\n\
             pub fn total(m: &HashMap<u32, usize>) -> usize { m.values().sum::<usize>() }\n";
        let d = check("crates/stats/src/groups.rs", FileContext::Library, src);
        assert!(active(&d).is_empty(), "{:?}", active(&d));
    }

    #[test]
    fn l010_flags_relaxed_rmw_outside_obs() {
        let src = "use std::sync::atomic::{AtomicUsize, Ordering};\n\
             pub fn bump(n: &AtomicUsize) -> usize {\n    \
             n.fetch_add(1, Ordering::Relaxed)\n}\n";
        let d = lib(src);
        assert_eq!(active(&d), vec![(RuleId::L010, 3)]);
        assert_eq!(d[0].severity.label(), "warning");
        // The obs counter fast path is the documented exemption.
        let d = check("crates/obs/src/metrics.rs", FileContext::Library, src);
        assert!(active(&d).is_empty());
        // Relaxed *loads* are not read-modify-writes.
        let src = "use std::sync::atomic::{AtomicUsize, Ordering};\n\
             pub fn read(n: &AtomicUsize) -> usize { n.load(Ordering::Relaxed) }\n";
        assert!(active(&lib(src)).is_empty());
        // Acquire/Release RMWs carry their ordering honestly.
        let src = "use std::sync::atomic::{AtomicUsize, Ordering};\n\
             pub fn bump(n: &AtomicUsize) -> usize { n.fetch_add(1, Ordering::AcqRel) }\n";
        assert!(active(&lib(src)).is_empty());
    }

    #[test]
    fn l010_flags_seqcst_everywhere() {
        let src = "use std::sync::atomic::{AtomicUsize, Ordering};\n\
             pub fn read(n: &AtomicUsize) -> usize { n.load(Ordering::SeqCst) }\n";
        assert_eq!(active(&lib(src)), vec![(RuleId::L010, 2)]);
        // Even inside obs: the fast-path exemption covers Relaxed, not SeqCst.
        let d = check("crates/obs/src/metrics.rs", FileContext::Library, src);
        assert_eq!(active(&d), vec![(RuleId::L010, 2)]);
    }

    #[test]
    fn l011_flags_thread_creation_outside_boundary_crates() {
        let src = "use std::thread;\n\
             pub fn f() {\n    \
             let h = thread::spawn(|| 1);\n    \
             let _ = h.join();\n}\n";
        assert_eq!(active(&lib(src)), vec![(RuleId::L011, 3)]);
        // Builder and scope are creation forms too.
        let src = "pub fn f() { let _ = std::thread::Builder::new(); }\n\
             pub fn g() { std::thread::scope(|_| {}); }\n";
        assert_eq!(
            active(&lib(src)),
            vec![(RuleId::L011, 1), (RuleId::L011, 2)]
        );
    }

    #[test]
    fn l011_exempts_boundary_crates_tests_and_sleep() {
        let src = "use std::thread;\npub fn f() { let _ = thread::spawn(|| 1); }\n";
        let d = check("crates/par/src/lib.rs", FileContext::Library, src);
        assert!(active(&d).is_empty());
        let d = check("crates/serve/src/server.rs", FileContext::Library, src);
        assert!(active(&d).is_empty());
        let d = check("crates/x/tests/t.rs", FileContext::Test, src);
        assert!(active(&d).is_empty());
        // sleep/yield_now schedule, they do not create concurrency.
        let src = "use std::thread;\npub fn f() { thread::sleep(std::time::Duration::from_millis(1)); }\n";
        assert!(active(&lib(src)).is_empty());
    }

    #[test]
    fn l013_flags_wallclock_and_library_env_reads() {
        let src = "use std::time::SystemTime;\n\
             pub fn stamp() -> SystemTime { SystemTime::now() }\n";
        assert_eq!(active(&lib(src)), vec![(RuleId::L013, 2)]);
        // Binaries may not wall-clock results either.
        let d = check("crates/x/src/main.rs", FileContext::Binary, src);
        assert_eq!(active(&d), vec![(RuleId::L013, 2)]);
        let src = "pub fn threads() -> usize {\n    \
             std::env::var(\"FDX_THREADS\").ok().and_then(|v| v.parse().ok()).unwrap_or(1)\n}\n";
        assert_eq!(active(&lib(src)), vec![(RuleId::L013, 2)]);
    }

    #[test]
    fn l013_exempts_par_bench_binaries_and_tests() {
        let env_src = "pub fn threads() -> usize {\n    \
             std::env::var(\"FDX_THREADS\").map_or(1, |v| v.len())\n}\n";
        // fdx-par owns the FDX_THREADS contract; bench stamps its reports.
        let d = check("crates/par/src/lib.rs", FileContext::Library, env_src);
        assert!(active(&d).is_empty());
        let time_src = "pub fn f() { let _ = std::time::SystemTime::now(); }";
        let d = check("crates/bench/src/report.rs", FileContext::Library, time_src);
        assert!(active(&d).is_empty());
        // Binaries own their process environment.
        let d = check("crates/x/src/main.rs", FileContext::Binary, env_src);
        assert!(active(&d).is_empty());
        let d = check("crates/x/tests/t.rs", FileContext::Test, time_src);
        assert!(active(&d).is_empty());
    }

    #[test]
    fn l014_reasonless_allow_is_a_violation_and_cannot_waive_itself() {
        let src = "fn f() { x.unwrap(); } // fdx-allow: L001\n";
        let d = lib(src);
        assert_eq!(active(&d), vec![(RuleId::L014, 1)]);
        // Listing L014 in the reasonless allow does not excuse it.
        let src = "fn f() { x.unwrap(); } // fdx-allow: L001 L014\n";
        let d = lib(src);
        assert_eq!(active(&d), vec![(RuleId::L014, 1)]);
        // A reasoned allow produces no L014.
        let src = "fn f() { x.unwrap(); } // fdx-allow: L001 startup path, cannot fail\n";
        assert!(active(&lib(src)).is_empty());
    }

    #[test]
    fn l015_flags_library_writes_outside_write_atomic() {
        let src = "pub fn save(p: &std::path::Path, s: &str) {\n    \
             let _ = std::fs::write(p, s);\n}\n";
        assert_eq!(active(&lib(src)), vec![(RuleId::L015, 2)]);
        let src = "pub fn open(p: &std::path::Path) {\n    \
             let _ = std::fs::File::create(p);\n}\n";
        assert_eq!(active(&lib(src)), vec![(RuleId::L015, 2)]);
        let src = "pub fn append(p: &std::path::Path) {\n    \
             let _ = std::fs::OpenOptions::new().append(true).open(p);\n}\n";
        assert_eq!(active(&lib(src)), vec![(RuleId::L015, 2)]);
    }

    #[test]
    fn l015_exempts_write_atomic_impl_tests_binaries_and_reasoned_allows() {
        let src = "pub fn save(p: &std::path::Path, s: &str) {\n    \
             let _ = std::fs::write(p, s);\n}\n";
        // The write_atomic implementation must write its temp file.
        let d = check("crates/obs/src/export.rs", FileContext::Library, src);
        assert!(active(&d).is_empty());
        // Binaries and tests own their outputs.
        let d = check("crates/x/src/main.rs", FileContext::Binary, src);
        assert!(active(&d).is_empty());
        let d = check("crates/x/tests/t.rs", FileContext::Test, src);
        assert!(active(&d).is_empty());
        // An append-only stream with a reasoned allow is waived (and the
        // waiver is recorded, not dropped).
        let src = "pub fn append(p: &std::path::Path) {\n    \
             // fdx-allow: L015 append-only quarantine stream, rename would lose rows\n    \
             let _ = std::fs::OpenOptions::new().append(true).open(p);\n}\n";
        let d = lib(src);
        assert!(active(&d).is_empty());
        assert!(d.iter().any(|x| x.suppressed.is_some()));
        // Reads are not writes.
        let src = "pub fn load(p: &std::path::Path) { let _ = std::fs::read(p); }\n";
        assert!(active(&lib(src)).is_empty());
    }
}
