//! Per-rule documentation: rationale, an offending example, and the
//! compliant rewrite. This module is the *single source* for rule prose —
//! `fdx lint --explain <rule>` renders it, and the README's rule table is
//! generated from the same [`crate::diag::RuleId`] metadata (an anti-drift
//! test asserts the README contains exactly the rows [`readme_table`]
//! produces).

use std::fmt::Write as _;

use crate::diag::RuleId;

/// Documentation for one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleDoc {
    /// Why the rule exists — the invariant it protects.
    pub rationale: &'static str,
    /// A minimal offending example.
    pub bad: &'static str,
    /// The compliant rewrite of the same code.
    pub good: &'static str,
}

/// The documentation for `rule`.
pub fn doc(rule: RuleId) -> RuleDoc {
    match rule {
        RuleId::L001 => RuleDoc {
            rationale: "Library code is reached through the serve boundary and the \
                 CLI; a stray `.unwrap()` turns a recoverable data problem into a \
                 worker panic. Errors must flow out as `Result` so callers choose \
                 the failure policy.",
            bad: "let sigma = cov.get(&key).unwrap();",
            good: "let sigma = cov.get(&key).ok_or(FdxError::MissingCovariance)?;",
        },
        RuleId::L002 => RuleDoc {
            rationale: "Float equality is a rounding-mode lottery: two \
                 mathematically equal expressions routinely differ in the last \
                 ulp. Comparisons must state their tolerance explicitly.",
            bad: "if lambda == 0.0 { return Graph::empty(); }",
            good: "if lambda.abs() < TOL { return Graph::empty(); }",
        },
        RuleId::L003 => RuleDoc {
            rationale: "All timing flows through obs spans so traces, metrics, \
                 and the request journal agree. An ad-hoc `Instant::now()` is a \
                 measurement the observability stack cannot see.",
            bad: "let t0 = Instant::now(); run(); log(t0.elapsed());",
            good: "let _span = obs::enter(\"fdx.discover\"); run();",
        },
        RuleId::L004 => RuleDoc {
            rationale: "A panic in library code tears down the serve worker that \
                 hosts it. `todo!`/`unimplemented!` are stubs that must not ship; \
                 `panic!` on bad data belongs to the caller as an error value.",
            bad: "if cols == 0 { panic!(\"empty dataset\"); }",
            good: "if cols == 0 { return Err(FdxError::EmptyDataset); }",
        },
        RuleId::L005 => RuleDoc {
            rationale: "Inside the linalg/glasso/stats kernels a narrowing `as` \
                 cast silently truncates counts and indices, corrupting \
                 Θ-estimation long before anything overflows visibly.",
            bad: "let n = rows.len() as u32;",
            good: "let n = u32::try_from(rows.len()).map_err(|_| FdxError::TooManyRows)?;",
        },
        RuleId::L006 => RuleDoc {
            rationale: "Every `unsafe` block is a proof obligation. The `// \
                 SAFETY:` comment records the argument so the next editor can \
                 re-check it instead of guessing.",
            bad: "unsafe { slice.get_unchecked(i) }",
            good: "// SAFETY: i < slice.len() is checked by the loop bound above.\n\
                 unsafe { slice.get_unchecked(i) }",
        },
        RuleId::L007 => RuleDoc {
            rationale: "Panic containment lives at exactly two places: the serve \
                 request boundary and the parallel runtime's worker re-raise \
                 path. Anywhere else, `catch_unwind` hides corruption instead of \
                 containing it.",
            bad: "let r = std::panic::catch_unwind(|| kernel(x));",
            good: "let r = kernel(x); // let the serve boundary isolate panics",
        },
        RuleId::L008 => RuleDoc {
            rationale: "Metric names are looked up by dashboards and the stats \
                 op; a typo records into a parallel series nobody reads. The \
                 registry constant in crates/obs/src/metrics.rs is the single \
                 namespace.",
            bad: "counter_add(\"fdx.serve.requsets\", 1);",
            good: "counter_add(\"fdx.serve.requests\", 1); // listed in METRIC_NAMES",
        },
        RuleId::L009 => RuleDoc {
            rationale: "std's HashMap/HashSet iteration order is randomized per \
                 process. When that order reaches a result path — a Vec of FDs, a \
                 serialized report — identical inputs produce different outputs \
                 across runs, which poisons the result cache (keyed by dataset \
                 hash + config fingerprint) and makes regressions undiagnosable.",
            bad: "for (attr, count) in &counts { out.push((attr, count)); }",
            good: "let mut pairs: Vec<_> = counts.iter().collect();\n\
                 pairs.sort_unstable();\n\
                 for (attr, count) in pairs { out.push((attr, count)); }",
        },
        RuleId::L010 => RuleDoc {
            rationale: "`Ordering::Relaxed` on a read-modify-write gives no \
                 happens-before edge; outside the audited obs counter fast paths \
                 that is usually a latent race. `SeqCst` is the opposite smell — \
                 a total order nothing here needs, papering over a reasoning gap. \
                 Say what you mean: `AcqRel`/`Acquire`/`Release` with a comment.",
            bad: "queue_head.fetch_add(1, Ordering::Relaxed);",
            good: "// fdx-allow: L010 index handout only needs atomicity, \
                 reduction is index-ordered\n\
                 queue_head.fetch_add(1, Ordering::Relaxed);",
        },
        RuleId::L011 => RuleDoc {
            rationale: "fdx-par guarantees bit-identical results at any thread \
                 count via index-ordered reduction. A raw `thread::spawn` \
                 bypasses that contract, letting scheduling (and thus float \
                 summation order) leak into results.",
            bad: "let h = std::thread::spawn(move || estimate(block));",
            good: "let results = fdx_par::par_map_indexed(blocks, estimate);",
        },
        RuleId::L012 => RuleDoc {
            rationale: "Float addition does not commute in rounding: summing the \
                 same values in a different order gives a different last ulp. A \
                 reduction over a hash-ordered source inside a numerical kernel \
                 makes Θ-estimates and λ-path stability scores run-dependent.",
            bad: "let h: f64 = joint.values().map(|&c| plogp(c)).sum::<f64>();",
            good: "let mut terms: Vec<_> = joint.iter().collect();\n\
                 terms.sort_unstable();\n\
                 let h: f64 = terms.into_iter().map(|(_, &c)| plogp(c)).sum::<f64>();",
        },
        RuleId::L013 => RuleDoc {
            rationale: "Results must be a function of the dataset and the \
                 config, never of when or where they ran. Wall-clock reads and \
                 env-dependent branches in result paths break replayability and \
                 cache correctness; configuration enters through arguments.",
            bad: "let seed = SystemTime::now().duration_since(UNIX_EPOCH)?.as_nanos();",
            good: "let seed = config.seed; // explicit, recorded in the run summary",
        },
        RuleId::L014 => RuleDoc {
            rationale: "A suppression without a reason cannot be re-audited when \
                 the surrounding code changes — nobody knows what argument it \
                 froze. Every `fdx-allow` must say why the violation is safe.",
            bad: "// fdx-allow: L001",
            good: "// fdx-allow: L001 startup config parse; missing file is fatal by design",
        },
        RuleId::L015 => RuleDoc {
            rationale: "A process killed halfway through `fs::write` leaves a \
                 torn file that a later reader half-parses — the exact \
                 corruption the snapshot store's recovery scan quarantines. \
                 `fdx_obs::write_atomic` writes a temp file, fsyncs, and \
                 renames, so readers only ever see old-complete or \
                 new-complete bytes. Append-only streams that cannot be \
                 renamed without losing rows carry a reasoned allow.",
            bad: "std::fs::write(&path, &snapshot_bytes)?;",
            good: "fdx_obs::write_atomic_bytes(&path, &snapshot_bytes)?;",
        },
    }
}

/// Renders the `fdx lint --explain <rule>` page.
pub fn explain(rule: RuleId) -> String {
    let d = doc(rule);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} [{}] — {}",
        rule.code(),
        rule.severity().label(),
        rule.summary()
    );
    let _ = writeln!(out, "\nwhy:\n  {}", d.rationale);
    let _ = writeln!(out, "\noffending:");
    for line in d.bad.lines() {
        let _ = writeln!(out, "    {line}");
    }
    let _ = writeln!(out, "\ncompliant:");
    for line in d.good.lines() {
        let _ = writeln!(out, "    {line}");
    }
    let _ = writeln!(
        out,
        "\nwaiving:\n  // fdx-allow: {} <reason> — same line or the line above; \
         the reason is mandatory (FDX-L014).",
        rule.short()
    );
    out
}

/// The markdown rule-table rows the README must contain, generated from
/// the same metadata `--list-rules` and the SARIF driver use. One row per
/// rule: `| `FDX-LXXX` | severity | summary |`.
pub fn readme_table() -> String {
    let mut out = String::new();
    for r in RuleId::ALL {
        let _ = writeln!(
            out,
            "| `{}` | {} | {} |",
            r.code(),
            r.severity().label(),
            r.summary()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::find_workspace_root;

    #[test]
    fn every_rule_has_nonempty_docs() {
        for r in RuleId::ALL {
            let d = doc(r);
            assert!(!d.rationale.is_empty(), "{} rationale", r.code());
            assert!(!d.bad.is_empty(), "{} bad example", r.code());
            assert!(!d.good.is_empty(), "{} good example", r.code());
            let page = explain(r);
            assert!(page.contains(r.code()));
            assert!(page.contains("why:"));
            assert!(page.contains("offending:"));
            assert!(page.contains("compliant:"));
        }
    }

    #[test]
    fn readme_table_has_one_row_per_rule() {
        let table = readme_table();
        assert_eq!(table.lines().count(), RuleId::ALL.len());
        for r in RuleId::ALL {
            assert!(table.contains(&format!("| `{}` |", r.code())));
        }
    }

    /// Anti-drift: the committed README's rule table must contain exactly
    /// the generated rows — edit `RuleId::summary()` / `severity()`, not
    /// the markdown. Skipped when the crate is built out of tree.
    #[test]
    fn readme_rule_table_matches_generated_rows() {
        let Some(root) = std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
        else {
            return;
        };
        let Ok(readme) = std::fs::read_to_string(root.join("README.md")) else {
            return;
        };
        for row in readme_table().lines() {
            assert!(
                readme.contains(row),
                "README.md rule table is missing or stale for row:\n{row}\n\
                 regenerate it from explain::readme_table()"
            );
        }
    }
}
